#!/bin/sh
# Full offline CI gate: formatting, lints, build, tests.
# Everything runs with default features and no network access.
set -e

echo "=== cargo fmt --check ==="
cargo fmt --all -- --check

echo "=== cargo clippy --all-targets -- -D warnings ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo build --release ==="
cargo build --release

echo "=== cargo test -q ==="
cargo test -q

echo "=== cargo test --workspace -q ==="
cargo test --workspace -q

echo "=== bench smoke: tiny sweep through osprey-exec ==="
cargo build --release -p osprey-cli
rm -f results/BENCH_sweep.json
./target/release/osprey sweep --benchmarks du,iperf --scale 0.05 --jobs 2
test -s results/BENCH_sweep.json
# Well-formedness: every schema field present, braces/brackets balanced.
for key in '"bench"' '"workers"' '"jobs"' '"wall_ms"' \
           '"serial_estimate_ms"' '"parallel_wall_ms"' '"speedup"'; do
    grep -q "$key" results/BENCH_sweep.json
done
awk 'BEGIN { b = 0; k = 0 }
     { n = split($0, ch, "")
       for (i = 1; i <= n; i++) {
           if (ch[i] == "{") b++; if (ch[i] == "}") b--
           if (ch[i] == "[") k++; if (ch[i] == "]") k--
       } }
     END { exit (b != 0 || k != 0) }' results/BENCH_sweep.json
echo "results/BENCH_sweep.json written and well-formed."

echo "CI green."

#!/bin/sh
# Full offline CI gate: formatting, lints, build, tests.
# Everything runs with default features and no network access.
set -e

echo "=== cargo fmt --check ==="
cargo fmt --all -- --check

echo "=== cargo clippy --all-targets -- -D warnings ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo build --release ==="
cargo build --release

echo "=== cargo test -q ==="
cargo test -q

echo "=== cargo test --workspace -q ==="
cargo test --workspace -q

echo "CI green."

#!/bin/sh
# Full offline CI gate: formatting, lints, build, tests.
# Everything runs with default features and no network access.
set -e

echo "=== cargo fmt --check ==="
cargo fmt --all -- --check

echo "=== cargo clippy --all-targets -- -D warnings ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo build --release ==="
cargo build --release

echo "=== cargo test -q ==="
cargo test -q

echo "=== cargo test --workspace -q ==="
cargo test --workspace -q

echo "=== bench smoke: tiny sweep through osprey-exec ==="
cargo build --release -p osprey-cli
rm -f results/BENCH_sweep.json
./target/release/osprey sweep --benchmarks du,iperf --scale 0.05 --jobs 2
test -s results/BENCH_sweep.json
# Well-formedness: every schema field present, braces/brackets balanced.
for key in '"bench"' '"workers"' '"jobs"' '"wall_ms"' \
           '"serial_estimate_ms"' '"parallel_wall_ms"' '"speedup"'; do
    grep -q "$key" results/BENCH_sweep.json
done
awk 'BEGIN { b = 0; k = 0 }
     { n = split($0, ch, "")
       for (i = 1; i <= n; i++) {
           if (ch[i] == "{") b++; if (ch[i] == "}") b--
           if (ch[i] == "[") k++; if (ch[i] == "]") k--
       } }
     END { exit (b != 0 || k != 0) }' results/BENCH_sweep.json
echo "results/BENCH_sweep.json written and well-formed."

echo "=== hotpath smoke: fused-path equivalence + perf gate ==="
# `--check` re-proves fused/unfused equivalence on every stream, schema-
# validates the committed results/BENCH_hotpath.json, and fails on a
# >15% geomean-speedup regression against it. Stream construction fans
# out across $OSPREY_JOBS workers; the timed runs stay serial.
cargo build --release -p osprey-bench --bin hotpath
./target/release/hotpath --check

echo "=== trace smoke: record -> replay -> verify ==="
TRACE=results/traces/ci_smoke.ospt
mkdir -p results/traces
rm -f "$TRACE"
./target/release/osprey record --benchmark du --scale 0.05 --seed 3 \
    --out "$TRACE" > results/traces/ci_record.out
test -s "$TRACE"
# The evaluation section `record` printed comes from the replay engine,
# so replaying the trace live must reproduce it byte for byte (the first
# line of record output is the "recorded ... -> ..." banner).
./target/release/osprey replay --trace "$TRACE" --jobs 2 \
    > results/traces/ci_replay.out
tail -n +2 results/traces/ci_record.out \
    | diff - results/traces/ci_replay.out
# Structural checks pass and trace-info exits 0 on an honest recording.
./target/release/osprey trace-info --trace "$TRACE" > /dev/null
./target/release/osprey verify --trace "$TRACE" > /dev/null
echo "record -> replay byte-identical; trace-info and verify clean."

echo "CI green."

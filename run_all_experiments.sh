#!/bin/sh
# Regenerates every paper table and figure into results/.
# Usage: ./run_all_experiments.sh [scale]   (default scale 1.0)
# Run ./ci.sh first for the full lint/build/test gate.
set -e
SCALE=${1:-1.0}
mkdir -p results
for bin in fig01_fullsys_vs_apponly fig02_l2_speedup_ratio fig03_service_profiles \
           fig04_sysread_timeline fig05_sysread_bubbles fig06_cluster_cv \
           fig07_learning_window fig08_prediction_accuracy fig09_missrate_accuracy \
           fig10_pred_l2_speedup fig11_strategies fig12_l2_sensitivity \
           table1_mode_slowdowns table2_speedups \
           ablation_cluster_range ablation_pmin ablation_delayed_start ablation_pollution \
           ablation_signature; do
  echo "=== $bin (scale $SCALE) ==="
  cargo run --release -q -p osprey-bench --bin "$bin" -- "$SCALE" | tee "results/$bin.txt"
  echo
done

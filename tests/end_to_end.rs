//! Cross-crate integration tests: the full pipeline from workload
//! generation through detailed simulation, acceleration, and reporting.

use osprey::core::accel::{AccelConfig, AcceleratedSim};
use osprey::core::RelearnStrategy;
use osprey::isa::ServiceId;
use osprey::sim::{CoreModel, FullSystemSim, OsMode, SimConfig};
use osprey::workloads::Benchmark;

fn quick(b: Benchmark, scale: f64) -> SimConfig {
    SimConfig::new(b).with_scale(scale).with_seed(11)
}

#[test]
fn accelerated_and_detailed_execute_identical_instruction_streams() {
    for b in [Benchmark::Iperf, Benchmark::Du] {
        let detailed = FullSystemSim::new(quick(b, 0.05)).run_to_completion();
        let accel = AcceleratedSim::new(quick(b, 0.05), AccelConfig::default()).run();
        assert_eq!(
            detailed.total_instructions, accel.report.total_instructions,
            "{b}: emulation must preserve the functional instruction stream"
        );
        assert_eq!(
            detailed.os_instructions, accel.report.os_instructions,
            "{b}"
        );
    }
}

#[test]
fn accelerated_cycles_stay_close_to_detailed() {
    let detailed = FullSystemSim::new(quick(Benchmark::Iperf, 0.25)).run_to_completion();
    let accel = AcceleratedSim::new(quick(Benchmark::Iperf, 0.25), AccelConfig::default()).run();
    let err = (accel.report.total_cycles as f64 - detailed.total_cycles as f64).abs()
        / detailed.total_cycles as f64;
    assert!(err < 0.20, "execution-time error {err}");
}

#[test]
fn os_intensive_benchmarks_have_high_os_fraction() {
    // The paper reports 67-99% of instructions from the OS.
    for b in Benchmark::OS_INTENSIVE {
        let report = FullSystemSim::new(quick(b, 0.04)).run_to_completion();
        assert!(
            report.os_fraction() > 0.6,
            "{b}: OS fraction {:.2}",
            report.os_fraction()
        );
    }
}

#[test]
fn spec_benchmarks_have_negligible_os_fraction() {
    for b in [Benchmark::Gzip, Benchmark::Swim] {
        let report = FullSystemSim::new(quick(b, 0.05)).run_to_completion();
        assert!(
            report.os_fraction() < 0.05,
            "{b}: OS fraction {:.3}",
            report.os_fraction()
        );
    }
}

#[test]
fn app_only_underestimates_execution_time() {
    let full = FullSystemSim::new(quick(Benchmark::AbRand, 0.04)).run_to_completion();
    let app = FullSystemSim::new(quick(Benchmark::AbRand, 0.04).with_os_mode(OsMode::AppOnly))
        .run_to_completion();
    assert!(full.total_cycles > 3 * app.total_cycles);
    assert!(full.l2_misses() > 10 * app.l2_misses().max(1));
}

#[test]
fn smaller_l2_is_slower_under_full_simulation() {
    let small = FullSystemSim::new(quick(Benchmark::Iperf, 0.15).with_l2_bytes(512 * 1024))
        .run_to_completion();
    let large = FullSystemSim::new(quick(Benchmark::Iperf, 0.15).with_l2_bytes(1024 * 1024))
        .run_to_completion();
    assert!(
        small.total_cycles > large.total_cycles,
        "512K {} vs 1M {}",
        small.total_cycles,
        large.total_cycles
    );
}

#[test]
fn coverage_ordering_matches_paper_fig11() {
    // Best-Match never re-learns, so its coverage bounds every other
    // strategy's from above; Eager's bounds from below.
    let run = |s: RelearnStrategy| {
        AcceleratedSim::new(quick(Benchmark::FindOd, 0.4), AccelConfig::with_strategy(s)).run()
    };
    let best = run(RelearnStrategy::BestMatch);
    let eager = run(RelearnStrategy::Eager);
    let statistical = run(RelearnStrategy::Statistical {
        p_min: 0.03,
        alpha: 0.05,
        min_epos: 4,
    });
    assert!(best.coverage() >= statistical.coverage());
    assert!(statistical.coverage() >= eager.coverage());
    assert_eq!(best.stats.relearn_events(), 0);
}

#[test]
fn every_core_model_completes_a_run() {
    for model in CoreModel::TABLE1 {
        let report =
            FullSystemSim::new(quick(Benchmark::Du, 0.02).with_core(model)).run_to_completion();
        assert!(report.total_instructions > 0, "{model}");
        assert!(report.total_cycles > 0, "{model}");
    }
    // Emulation has no cycles at all.
    let report = FullSystemSim::new(quick(Benchmark::Du, 0.02).with_core(CoreModel::Emulation))
        .run_to_completion();
    assert_eq!(report.total_cycles, 0);
}

#[test]
fn interval_records_are_consistent() {
    let report = FullSystemSim::new(quick(Benchmark::AbSeq, 0.03)).run_to_completion();
    assert!(!report.intervals.is_empty());
    let mut last_seq = None;
    for r in &report.intervals {
        // Sequence numbers strictly increase.
        if let Some(prev) = last_seq {
            assert!(r.seq > prev);
        }
        last_seq = Some(r.seq);
        assert!(r.instructions > 0);
        assert!(r.cycles > 0);
        // OS intervals only contain kernel-owner cache activity.
        assert_eq!(r.caches.l1d.app_accesses, 0);
        assert_eq!(r.caches.l1i.app_accesses, 0);
    }
    let os_cycles: u64 = report.intervals.iter().map(|r| r.cycles).sum();
    assert!(os_cycles <= report.total_cycles);
}

#[test]
fn sys_read_exhibits_multiple_behavior_points() {
    let report = FullSystemSim::new(quick(Benchmark::AbRand, 0.08)).run_to_completion();
    let mut sigs: Vec<u64> = report
        .intervals
        .iter()
        .filter(|r| r.service == ServiceId::SysRead)
        .map(|r| r.instructions)
        .collect();
    assert!(sigs.len() > 20);
    sigs.sort_unstable();
    let spread = *sigs.last().unwrap() as f64 / *sigs.first().unwrap() as f64;
    assert!(
        spread > 1.5,
        "sys_read instruction counts must spread across behavior points"
    );
}

#[test]
fn reports_are_reproducible_across_runs() {
    let a = FullSystemSim::new(quick(Benchmark::AbSeq, 0.03)).run_to_completion();
    let b = FullSystemSim::new(quick(Benchmark::AbSeq, 0.03)).run_to_completion();
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.caches, b.caches);
    assert_eq!(a.intervals.len(), b.intervals.len());

    let c = AcceleratedSim::new(quick(Benchmark::AbSeq, 0.03), AccelConfig::default()).run();
    let d = AcceleratedSim::new(quick(Benchmark::AbSeq, 0.03), AccelConfig::default()).run();
    assert_eq!(c.report.total_cycles, d.report.total_cycles);
    assert_eq!(c.coverage(), d.coverage());
}

#[test]
fn pollution_ablation_changes_results() {
    let with = AcceleratedSim::new(quick(Benchmark::AbRand, 0.05), AccelConfig::default()).run();
    let without = AcceleratedSim::new(
        quick(Benchmark::AbRand, 0.05),
        AccelConfig {
            pollution: false,
            ..AccelConfig::default()
        },
    )
    .run();
    assert_ne!(
        with.report.total_cycles, without.report.total_cycles,
        "disabling pollution must be observable"
    );
}

//! Workspace-level roundtrip properties for the `osprey-trace` format.
//!
//! Every benchmark in the suite must record to a byte stream that
//! decodes back to exactly the live run's intervals, passes structural
//! verification, and replays to the live instruction totals. Corrupted
//! streams — truncation anywhere, a bumped version byte, a flipped
//! payload byte — must fail with typed `OSPT0xx` diagnostics, never a
//! panic and never silently-wrong data.

use osprey::core::accel::AccelConfig;
use osprey::sim::SimConfig;
use osprey::trace::{record_bytes, verify_trace, ReplaySim, TraceReader};
use osprey::workloads::Benchmark;

/// Small scale keeps the full 9-benchmark sweep fast while still
/// producing multi-interval traces for every workload.
const SCALE: f64 = 0.02;
const SEED: u64 = 7;
const SNAPSHOT_EVERY: u64 = 64;

fn cfg(benchmark: Benchmark) -> SimConfig {
    SimConfig::new(benchmark).with_scale(SCALE).with_seed(SEED)
}

#[test]
fn every_benchmark_roundtrips_through_the_wire_format() {
    for benchmark in Benchmark::ALL {
        let name = benchmark.name();
        let (bytes, live) = record_bytes(&cfg(benchmark), SNAPSHOT_EVERY);
        let trace = TraceReader::from_bytes(&bytes)
            .unwrap_or_else(|d| panic!("{name}: just-recorded trace must decode: {d:?}"));

        // The decoded trace mirrors the live run exactly.
        assert_eq!(trace.meta.benchmark, benchmark, "{name}");
        assert_eq!(trace.meta.seed, SEED, "{name}");
        assert_eq!(trace.meta.snapshot_every, SNAPSHOT_EVERY, "{name}");
        assert!(trace.is_detailed(), "{name}: recordings are detailed");
        let summary = trace
            .summary
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: completed recording has a summary"));
        assert_eq!(summary.total_cycles, live.total_cycles, "{name}");
        assert_eq!(
            summary.total_instructions, live.total_instructions,
            "{name}"
        );
        assert_eq!(trace.intervals().count(), live.intervals.len(), "{name}");
        for (recorded, lived) in trace.intervals().zip(&live.intervals) {
            assert_eq!(recorded, lived, "{name}");
        }

        // Structural verification finds nothing wrong with an honest
        // recording.
        let errors: Vec<_> = verify_trace(&trace)
            .into_iter()
            .filter(|d| d.is_error())
            .collect();
        assert!(errors.is_empty(), "{name}: {errors:?}");

        // Replay reconstructs the live run's totals offline.
        let outcome = ReplaySim::new(&trace, AccelConfig::default())
            .unwrap_or_else(|d| panic!("{name}: detailed trace must replay: {d:?}"))
            .run();
        assert_eq!(
            outcome.report.total_instructions, live.total_instructions,
            "{name}: replay must preserve the instruction stream"
        );

        // Recording the same configuration again is byte-identical.
        let (again, _) = record_bytes(&cfg(benchmark), SNAPSHOT_EVERY);
        assert_eq!(bytes, again, "{name}: recording must be deterministic");
    }
}

#[test]
fn truncated_streams_fail_with_typed_diagnostics() {
    let (bytes, _) = record_bytes(&cfg(Benchmark::Du), SNAPSHOT_EVERY);
    // Cut the stream at a spread of prefix lengths, including the empty
    // stream, mid-header, mid-payload, and one-byte-short.
    let cuts = [
        0,
        1,
        3,
        5,
        13,
        bytes.len() / 3,
        bytes.len() / 2,
        bytes.len() - 1,
    ];
    for keep in cuts {
        let err = TraceReader::from_bytes(&bytes[..keep])
            .err()
            .unwrap_or_else(|| panic!("keep={keep}: truncated stream must not decode"));
        assert!(
            matches!(err.code, "OSPT001" | "OSPT002" | "OSPT003"),
            "keep={keep} gave {} ({})",
            err.code,
            err.message
        );
    }
}

#[test]
fn bumped_version_byte_fails_with_version_skew() {
    let (bytes, _) = record_bytes(&cfg(Benchmark::Du), SNAPSHOT_EVERY);
    // The u16 version lives at offsets 4..6, right after the magic.
    for offset in [4usize, 5] {
        let mut skewed = bytes.clone();
        skewed[offset] = skewed[offset].wrapping_add(1);
        let err = TraceReader::from_bytes(&skewed).expect_err("version skew must not decode");
        assert_eq!(err.code, "OSPT004", "offset {offset}: {}", err.message);
    }
}

#[test]
fn flipped_payload_bytes_fail_the_checksum() {
    let (bytes, _) = record_bytes(&cfg(Benchmark::Du), SNAPSHOT_EVERY);
    for fraction in [3, 5, 7] {
        let mut corrupt = bytes.clone();
        let at = corrupt.len() * (fraction - 1) / fraction;
        corrupt[at] ^= 0x10;
        let err = TraceReader::from_bytes(&corrupt).expect_err("corrupted payload must not decode");
        assert_eq!(err.code, "OSPT003", "byte {at}: {}", err.message);
    }
}

//! Golden-trace regression test: pins the on-disk `OSPT` v1 format.
//!
//! `tests/golden/du_seed3.ospt` is a committed recording of `du` at
//! scale 0.02, seed 3, snapshot cadence 64. The tests assert that
//! today's build still decodes it, that structural verification stays
//! clean, and that re-recording the same configuration reproduces the
//! fixture byte for byte — any format or simulator drift fails loudly
//! here instead of silently invalidating archived traces.
//!
//! Regenerate (only after an *intentional* format bump, alongside a
//! `wire::VERSION` increment) with:
//!
//! ```text
//! OSPREY_REGEN_GOLDEN=1 cargo test --test golden_trace
//! ```

use std::path::PathBuf;

use osprey::sim::SimConfig;
use osprey::trace::{record_bytes, verify_trace, TraceReader};
use osprey::workloads::Benchmark;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/du_seed3.ospt")
}

fn golden_config() -> SimConfig {
    SimConfig::new(Benchmark::Du).with_scale(0.02).with_seed(3)
}

const SNAPSHOT_EVERY: u64 = 64;

fn golden_bytes() -> Vec<u8> {
    std::fs::read(golden_path()).expect(
        "tests/golden/du_seed3.ospt is missing — regenerate with \
         OSPREY_REGEN_GOLDEN=1 cargo test --test golden_trace",
    )
}

/// Writes the fixture when `OSPREY_REGEN_GOLDEN` is set; a no-op (and a
/// pass) otherwise, so the regeneration recipe lives next to the checks.
#[test]
fn regenerate_golden_fixture_when_asked() {
    if std::env::var("OSPREY_REGEN_GOLDEN").is_err() {
        return;
    }
    let (bytes, _) = record_bytes(&golden_config(), SNAPSHOT_EVERY);
    let path = golden_path();
    std::fs::create_dir_all(path.parent().expect("fixture has a parent dir"))
        .expect("create tests/golden");
    std::fs::write(&path, &bytes).expect("write golden fixture");
}

#[test]
fn golden_fixture_decodes_and_verifies_clean() {
    let trace = TraceReader::from_bytes(&golden_bytes()).expect("golden fixture decodes");
    assert_eq!(trace.meta.benchmark, Benchmark::Du);
    assert_eq!(trace.meta.seed, 3);
    assert_eq!(trace.meta.snapshot_every, SNAPSHOT_EVERY);
    assert!(trace.is_detailed());
    assert!(trace.summary.is_some(), "fixture is a completed recording");
    assert!(trace.intervals().count() > 0);
    let errors: Vec<_> = verify_trace(&trace)
        .into_iter()
        .filter(|d| d.is_error())
        .collect();
    assert!(errors.is_empty(), "{errors:?}");
}

#[test]
fn todays_recorder_reproduces_the_golden_bytes() {
    let (bytes, _) = record_bytes(&golden_config(), SNAPSHOT_EVERY);
    let golden = golden_bytes();
    assert_eq!(
        bytes, golden,
        "re-recording du/scale 0.02/seed 3 no longer matches the \
         committed fixture: either revert the behavioral change or bump \
         wire::VERSION and regenerate the fixture"
    );
}

//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use osprey::core::{Plt, ScaledCluster};
use osprey::isa::Privilege;
use osprey::isa::{BlockSpec, InstrMix, MemPattern};
use osprey::mem::{Cache, CacheConfig};
use osprey::stats::{
    capture_probability, learning_window, upper_confidence_bound, Streaming,
};

proptest! {
    // ---------- statistics ----------

    #[test]
    fn streaming_matches_batch_mean(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Streaming::from_iter(values.iter().copied());
        let batch = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean() - batch).abs() <= 1e-6 * (1.0 + batch.abs()));
        prop_assert_eq!(s.count(), values.len() as u64);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min().unwrap(), min);
        prop_assert_eq!(s.max().unwrap(), max);
    }

    #[test]
    fn streaming_merge_is_order_independent(
        a in prop::collection::vec(-1e4f64..1e4, 0..100),
        b in prop::collection::vec(-1e4f64..1e4, 0..100),
    ) {
        let mut left = Streaming::from_iter(a.iter().copied());
        left.merge(&Streaming::from_iter(b.iter().copied()));
        let mut right = Streaming::from_iter(b.iter().copied());
        right.merge(&Streaming::from_iter(a.iter().copied()));
        prop_assert_eq!(left.count(), right.count());
        prop_assert!((left.mean() - right.mean()).abs() < 1e-6);
        prop_assert!((left.sample_variance() - right.sample_variance()).abs() < 1e-4);
    }

    #[test]
    fn learning_window_is_sufficient_and_minimal(
        p in 0.005f64..0.5,
        doc in 0.5f64..0.999,
    ) {
        let n = learning_window(p, doc).unwrap();
        prop_assert!(capture_probability(p, n) >= doc);
        if n > 1 {
            prop_assert!(capture_probability(p, n - 1) < doc);
        }
    }

    #[test]
    fn confidence_bound_is_at_least_the_mean(
        samples in prop::collection::vec(0.0f64..1.0, 2..30),
    ) {
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let bound = upper_confidence_bound(&samples, 0.05).unwrap();
        prop_assert!(bound >= mean - 1e-12);
    }

    // ---------- scaled clusters and PLT ----------

    #[test]
    fn cluster_centroid_stays_within_member_range(
        members in prop::collection::vec(1_000u64..1_000_000, 1..50),
    ) {
        let mut c = ScaledCluster::seed(members[0], 1, Default::default(), 0.05);
        for &m in &members[1..] {
            c.add(m, 1, &Default::default());
        }
        let min = *members.iter().min().unwrap() as f64;
        let max = *members.iter().max().unwrap() as f64;
        prop_assert!(c.centroid() >= min - 1e-9);
        prop_assert!(c.centroid() <= max + 1e-9);
        prop_assert_eq!(c.members(), members.len() as u64);
    }

    #[test]
    fn cluster_match_respects_the_scaled_range(
        centroid in 1_000u64..1_000_000,
        delta_frac in -0.2f64..0.2,
    ) {
        let c = ScaledCluster::seed(centroid, 1, Default::default(), 0.05);
        let probe = ((centroid as f64) * (1.0 + delta_frac)).max(1.0) as u64;
        let within = (probe as f64 - centroid as f64).abs() <= 0.05 * centroid as f64;
        prop_assert_eq!(c.matches(probe), within);
    }

    #[test]
    fn plt_lookup_agrees_with_closest_on_matches(
        sigs in prop::collection::vec(1_000u64..100_000, 1..40),
        probe in 1_000u64..100_000,
    ) {
        let mut plt = Plt::new(0.05);
        for &s in &sigs {
            plt.learn(s, s * 2, &Default::default());
        }
        // Whenever lookup matches, the closest-centroid prediction must be
        // the same cluster's (lookup picks the closest among matches, and
        // anything closer would also match).
        if let Some(a) = plt.lookup(probe) {
            let b = plt.closest(probe).unwrap();
            prop_assert_eq!(a, b);
        }
        // Learning never loses instances.
        let total: u64 = plt.clusters().iter().map(|c| c.members()).sum();
        prop_assert_eq!(total, sigs.len() as u64);
    }

    // ---------- caches ----------

    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        addrs in prop::collection::vec(0u64..1_000_000, 1..500),
    ) {
        let mut cache = Cache::new(CacheConfig {
            size: 2048,
            assoc: 4,
            line: 64,
            hit_latency: 1,
        });
        for &a in &addrs {
            cache.access(a, a % 3 == 0, Privilege::User);
            prop_assert!(cache.valid_lines() <= 32);
        }
        prop_assert_eq!(cache.stats().accesses(), addrs.len() as u64);
        prop_assert!(cache.stats().misses() <= cache.stats().accesses());
    }

    #[test]
    fn access_makes_line_resident(addr in 0u64..1_000_000) {
        let mut cache = Cache::new(CacheConfig::l1d());
        cache.access(addr, false, Privilege::Kernel);
        prop_assert!(cache.probe(addr));
        // Same line, different byte: still resident.
        prop_assert!(cache.probe(addr ^ 0x3f));
    }

    #[test]
    fn pollution_preserves_occupancy_bounds(
        misses in 0u64..200,
        seed in 0u64..1_000,
    ) {
        use rand::SeedableRng;
        let mut cache = Cache::new(CacheConfig {
            size: 4096,
            assoc: 4,
            line: 64,
            hit_latency: 1,
        });
        for i in 0..64u64 {
            cache.access(i * 64, false, Privilege::User);
        }
        let app_before = cache.owned_lines(Privilege::User);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let displaced = cache.pollute(misses * 2, misses, &mut rng);
        prop_assert!(displaced <= misses);
        prop_assert_eq!(cache.owned_lines(Privilege::User), app_before - displaced);
        prop_assert!(cache.valid_lines() <= 64);
    }

    // ---------- instruction generation ----------

    #[test]
    fn blockgen_is_deterministic_and_exact(
        instrs in 1u64..5_000,
        seed in 0u64..1_000,
        footprint in 64u64..16_384,
    ) {
        let spec = BlockSpec::new(0x40_0000, instrs)
            .with_code_footprint(footprint)
            .with_mix(InstrMix::kernel_control())
            .with_mem(MemPattern::random(0x1000_0000, 32 * 1024));
        let a: Vec<_> = spec.generate(seed).collect();
        let b: Vec<_> = spec.generate(seed).collect();
        prop_assert_eq!(a.len() as u64, instrs);
        prop_assert_eq!(&a, &b);
        for instr in &a {
            prop_assert!(instr.pc >= spec.base_pc);
            prop_assert!(instr.pc < spec.base_pc + spec.code_footprint);
            if let Some(addr) = instr.mem_addr {
                prop_assert!(addr >= spec.mem.base);
                prop_assert!(addr < spec.mem.base + spec.mem.footprint);
            }
        }
    }

    #[test]
    fn kernel_handling_is_a_pure_function_of_history(
        reqs in prop::collection::vec((0u64..4, 0u64..16, 1u64..32_768), 1..60),
    ) {
        use osprey::os::{Kernel, ServiceRequest};
        let mut a = Kernel::new(3);
        let mut b = Kernel::new(3);
        for (i, &(file, page, size)) in reqs.iter().enumerate() {
            let req = ServiceRequest::read(file, page * 4096, size);
            let now = i as u64 * 10_000;
            prop_assert_eq!(a.handle(&req, now), b.handle(&req, now));
        }
    }
}

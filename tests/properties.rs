//! Property-based tests over the core data structures and invariants.
//!
//! Previously written against `proptest`; rewritten over the workspace's
//! own deterministic generator (`osprey_stats::rng`) so the suite runs
//! with no external dependencies. Each property is exercised across many
//! seeded pseudo-random cases; failures report the offending case index
//! so the exact inputs can be regenerated.

use osprey::core::{Plt, ScaledCluster};
use osprey::isa::Privilege;
use osprey::isa::{BlockSpec, InstrMix, MemPattern};
use osprey::mem::{Cache, CacheConfig};
use osprey::stats::rng::SmallRng;
use osprey::stats::{capture_probability, learning_window, upper_confidence_bound, Streaming};

/// Number of pseudo-random cases per property.
const CASES: u64 = 64;

/// Seeded generators for each case of a property, tagged by a
/// property-unique salt so different properties see different inputs.
fn cases(salt: u64) -> impl Iterator<Item = (u64, SmallRng)> {
    (0..CASES).map(move |i| (i, SmallRng::seed_from_u64(salt ^ (i * 0x9e37_79b9))))
}

fn f64_in(rng: &mut SmallRng, lo: f64, hi: f64) -> f64 {
    lo + rng.random::<f64>() * (hi - lo)
}

fn vec_f64(rng: &mut SmallRng, lo: f64, hi: f64, len_range: std::ops::Range<usize>) -> Vec<f64> {
    let len = rng.random_range(len_range);
    (0..len).map(|_| f64_in(rng, lo, hi)).collect()
}

// ---------- statistics ----------

#[test]
fn streaming_matches_batch_mean() {
    for (case, mut rng) in cases(0x51a7) {
        let values = vec_f64(&mut rng, -1e6, 1e6, 1..200);
        let s = Streaming::from_iter(values.iter().copied());
        let batch = values.iter().sum::<f64>() / values.len() as f64;
        assert!(
            (s.mean() - batch).abs() <= 1e-6 * (1.0 + batch.abs()),
            "case {case}"
        );
        assert_eq!(s.count(), values.len() as u64, "case {case}");
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.min(), Some(min), "case {case}");
        assert_eq!(s.max(), Some(max), "case {case}");
    }
}

#[test]
fn streaming_merge_is_order_independent() {
    for (case, mut rng) in cases(0x6d65) {
        let a = vec_f64(&mut rng, -1e4, 1e4, 0..100);
        let b = vec_f64(&mut rng, -1e4, 1e4, 0..100);
        let mut left = Streaming::from_iter(a.iter().copied());
        left.merge(&Streaming::from_iter(b.iter().copied()));
        let mut right = Streaming::from_iter(b.iter().copied());
        right.merge(&Streaming::from_iter(a.iter().copied()));
        assert_eq!(left.count(), right.count(), "case {case}");
        assert!((left.mean() - right.mean()).abs() < 1e-6, "case {case}");
        assert!(
            (left.sample_variance() - right.sample_variance()).abs() < 1e-4,
            "case {case}"
        );
    }
}

#[test]
fn learning_window_is_sufficient_and_minimal() {
    for (case, mut rng) in cases(0x77f1) {
        let p = f64_in(&mut rng, 0.005, 0.5);
        let doc = f64_in(&mut rng, 0.5, 0.999);
        let n = learning_window(p, doc).expect("valid parameters");
        assert!(capture_probability(p, n) >= doc, "case {case}");
        if n > 1 {
            assert!(capture_probability(p, n - 1) < doc, "case {case}");
        }
    }
}

#[test]
fn confidence_bound_is_at_least_the_mean() {
    for (case, mut rng) in cases(0xc0f1) {
        let samples = vec_f64(&mut rng, 0.0, 1.0, 2..30);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let bound = upper_confidence_bound(&samples, 0.05).expect("enough samples");
        assert!(bound >= mean - 1e-12, "case {case}");
    }
}

// ---------- scaled clusters and PLT ----------

#[test]
fn cluster_centroid_stays_within_member_range() {
    for (case, mut rng) in cases(0xc105) {
        let len = rng.random_range(1..50usize);
        let members: Vec<u64> = (0..len)
            .map(|_| rng.random_range(1_000u64..1_000_000))
            .collect();
        let mut c = ScaledCluster::seed(members[0], 1, Default::default(), 0.05);
        for &m in &members[1..] {
            c.add(m, 1, &Default::default());
        }
        let min = *members.iter().min().expect("non-empty") as f64;
        let max = *members.iter().max().expect("non-empty") as f64;
        assert!(c.centroid() >= min - 1e-9, "case {case}");
        assert!(c.centroid() <= max + 1e-9, "case {case}");
        assert_eq!(c.members(), members.len() as u64, "case {case}");
    }
}

#[test]
fn cluster_match_respects_the_scaled_range() {
    for (case, mut rng) in cases(0x5ca1) {
        let centroid = rng.random_range(1_000u64..1_000_000);
        let delta_frac = f64_in(&mut rng, -0.2, 0.2);
        let c = ScaledCluster::seed(centroid, 1, Default::default(), 0.05);
        let probe = ((centroid as f64) * (1.0 + delta_frac)).max(1.0) as u64;
        let within = (probe as f64 - centroid as f64).abs() <= 0.05 * centroid as f64;
        assert_eq!(c.matches(probe), within, "case {case}");
    }
}

#[test]
fn plt_lookup_agrees_with_closest_on_matches() {
    for (case, mut rng) in cases(0x9717) {
        let len = rng.random_range(1..40usize);
        let sigs: Vec<u64> = (0..len)
            .map(|_| rng.random_range(1_000u64..100_000))
            .collect();
        let probe = rng.random_range(1_000u64..100_000);
        let mut plt = Plt::new(0.05);
        for &s in &sigs {
            plt.learn(s, s * 2, &Default::default());
        }
        // Whenever lookup matches, the closest-centroid prediction must be
        // the same cluster's (lookup picks the closest among matches, and
        // anything closer would also match).
        if let Some(a) = plt.lookup(probe) {
            let b = plt.closest(probe).expect("non-empty PLT");
            assert_eq!(a, b, "case {case}");
        }
        // Learning never loses instances.
        let total: u64 = plt.clusters().iter().map(|c| c.members()).sum();
        assert_eq!(total, sigs.len() as u64, "case {case}");
    }
}

// ---------- caches ----------

#[test]
fn cache_occupancy_never_exceeds_capacity() {
    for (case, mut rng) in cases(0xcac4) {
        let len = rng.random_range(1..500usize);
        let addrs: Vec<u64> = (0..len)
            .map(|_| rng.random_range(0u64..1_000_000))
            .collect();
        let mut cache = Cache::new(CacheConfig {
            size: 2048,
            assoc: 4,
            line: 64,
            hit_latency: 1,
        });
        for &a in &addrs {
            cache.access(a, a % 3 == 0, Privilege::User);
            assert!(cache.valid_lines() <= 32, "case {case}");
        }
        assert_eq!(cache.stats().accesses(), addrs.len() as u64, "case {case}");
        assert!(
            cache.stats().misses() <= cache.stats().accesses(),
            "case {case}"
        );
    }
}

#[test]
fn access_makes_line_resident() {
    for (case, mut rng) in cases(0x4e51) {
        let addr = rng.random_range(0u64..1_000_000);
        let mut cache = Cache::new(CacheConfig::l1d());
        cache.access(addr, false, Privilege::Kernel);
        assert!(cache.probe(addr), "case {case}");
        // Same line, different byte: still resident.
        assert!(cache.probe(addr ^ 0x3f), "case {case}");
    }
}

#[test]
fn pollution_preserves_occupancy_bounds() {
    for (case, mut rng) in cases(0x9011) {
        let misses = rng.random_range(0u64..200);
        let seed = rng.random_range(0u64..1_000);
        let mut cache = Cache::new(CacheConfig {
            size: 4096,
            assoc: 4,
            line: 64,
            hit_latency: 1,
        });
        for i in 0..64u64 {
            cache.access(i * 64, false, Privilege::User);
        }
        let app_before = cache.owned_lines(Privilege::User);
        let mut prng = SmallRng::seed_from_u64(seed);
        let displaced = cache.pollute(misses * 2, misses, &mut prng);
        assert!(displaced <= misses, "case {case}");
        assert_eq!(
            cache.owned_lines(Privilege::User),
            app_before - displaced,
            "case {case}"
        );
        assert!(cache.valid_lines() <= 64, "case {case}");
    }
}

// ---------- instruction generation ----------

#[test]
fn blockgen_is_deterministic_and_exact() {
    for (case, mut rng) in cases(0xb10c) {
        let instrs = rng.random_range(1u64..5_000);
        let seed = rng.random_range(0u64..1_000);
        let footprint = rng.random_range(64u64..16_384);
        let spec = BlockSpec::new(0x40_0000, instrs)
            .with_code_footprint(footprint)
            .with_mix(InstrMix::kernel_control())
            .with_mem(MemPattern::random(0x1000_0000, 32 * 1024));
        let a: Vec<_> = spec.generate(seed).collect();
        let b: Vec<_> = spec.generate(seed).collect();
        assert_eq!(a.len() as u64, instrs, "case {case}");
        assert_eq!(a, b, "case {case}");
        for instr in &a {
            assert!(instr.pc >= spec.base_pc, "case {case}");
            assert!(instr.pc < spec.base_pc + spec.code_footprint, "case {case}");
            if let Some(addr) = instr.mem_addr {
                assert!(addr >= spec.mem.base, "case {case}");
                assert!(addr < spec.mem.base + spec.mem.footprint, "case {case}");
            }
        }
    }
}

#[test]
fn kernel_handling_is_a_pure_function_of_history() {
    use osprey::os::{Kernel, ServiceRequest};
    for (case, mut rng) in cases(0x6e71) {
        let len = rng.random_range(1..60usize);
        let reqs: Vec<(u64, u64, u64)> = (0..len)
            .map(|_| {
                (
                    rng.random_range(0u64..4),
                    rng.random_range(0u64..16),
                    rng.random_range(1u64..32_768),
                )
            })
            .collect();
        let mut a = Kernel::new(3);
        let mut b = Kernel::new(3);
        for (i, &(file, page, size)) in reqs.iter().enumerate() {
            let req = ServiceRequest::read(file, page * 4096, size);
            let now = i as u64 * 10_000;
            assert_eq!(a.handle(&req, now), b.handle(&req, now), "case {case}");
        }
    }
}

//! Osprey facade crate: re-exports the whole workspace public API.
//!
//! See the README for an overview and `examples/` for runnable scenarios.

pub use osprey_core as core;
pub use osprey_cpu as cpu;
pub use osprey_exec as exec;
pub use osprey_isa as isa;
pub use osprey_mem as mem;
pub use osprey_os as os;
pub use osprey_report as report;
pub use osprey_sim as sim;
pub use osprey_stats as stats;
pub use osprey_trace as trace;
pub use osprey_verify as verify;
pub use osprey_workloads as workloads;

//! The expanded form of one OS service interval.

use osprey_isa::{BlockSpec, ServiceId};

/// One OS service interval, fully expanded into executable blocks.
///
/// Produced by [`crate::Kernel::handle`] (system calls / faults) and
/// [`crate::Kernel::raise`] (interrupts). The expansion happens *before*
/// the simulator decides whether to run the blocks through a detailed
/// timing core or merely count them in emulation mode — which is why the
/// dynamic instruction count (the paper's behavior signature) is
/// observable in both modes.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServiceInvocation {
    /// The service type, which keys the Performance Lookup Table.
    pub service: ServiceId,
    /// Label of the execution path the handler chose (for diagnostics and
    /// tests; the predictor never sees this — it must rediscover paths
    /// from instruction counts).
    pub path: &'static str,
    /// Kernel code blocks to execute, in order.
    pub blocks: Vec<BlockSpec>,
    /// Seed the blocks should be generated with.
    pub seed: u64,
}

impl ServiceInvocation {
    /// Total dynamic instructions across all blocks.
    pub fn instr_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.instr_count).sum()
    }

    /// Convenience accessor mirroring [`ServiceInvocation::instr_count`]
    /// as a field-style name used in older call sites.
    #[doc(hidden)]
    pub fn total_instructions(&self) -> u64 {
        self.instr_count()
    }

    /// Iterates the invocation's blocks paired with the per-block
    /// generation seed (`seed + i` for block `i`, so blocks differ while
    /// the whole invocation stays deterministic).
    ///
    /// This is the allocation-free unit the simulator's block-batched
    /// hot path consumes: each `(spec, seed)` pair goes through one
    /// `Core::step_block` call.
    pub fn block_seeds(&self) -> impl Iterator<Item = (&BlockSpec, u64)> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .map(move |(i, b)| (b, self.seed.wrapping_add(i as u64)))
    }

    /// Iterates the concrete instructions of this invocation, expanding
    /// each block of [`ServiceInvocation::block_seeds`] in order. The
    /// iterator is allocation-free; generation state lives inline.
    pub fn instructions(&self) -> impl Iterator<Item = osprey_isa::Instruction> + '_ {
        self.block_seeds().flat_map(|(b, seed)| b.generate(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osprey_isa::BlockSpec;

    #[test]
    fn instr_count_sums_blocks() {
        let inv = ServiceInvocation {
            service: ServiceId::SysRead,
            path: "buffer_hit",
            blocks: vec![BlockSpec::new(0x1000, 500), BlockSpec::new(0x2000, 700)],
            seed: 3,
        };
        assert_eq!(inv.instr_count(), 1200);
        assert_eq!(inv.instructions().count(), 1200);
    }

    #[test]
    fn block_seeds_pair_blocks_with_offset_seeds() {
        let inv = ServiceInvocation {
            service: ServiceId::SysRead,
            path: "buffer_hit",
            blocks: vec![BlockSpec::new(0x1000, 500), BlockSpec::new(0x2000, 700)],
            seed: 3,
        };
        let pairs: Vec<_> = inv.block_seeds().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (&inv.blocks[0], 3));
        assert_eq!(pairs[1], (&inv.blocks[1], 4));
    }

    #[test]
    fn instruction_stream_is_deterministic() {
        let inv = ServiceInvocation {
            service: ServiceId::SysPoll,
            path: "scan",
            blocks: vec![BlockSpec::new(0x1000, 300)],
            seed: 9,
        };
        let a: Vec<_> = inv.instructions().collect();
        let b: Vec<_> = inv.instructions().collect();
        assert_eq!(a, b);
    }
}

//! Application-side requests for OS services.

use osprey_isa::ServiceId;

/// A system-call request as issued by a workload.
///
/// The argument meaning depends on the service; the named constructors
/// document the convention. Asynchronous services (interrupts) are not
/// requested by applications — the kernel raises them itself.
///
/// # Examples
///
/// ```
/// use osprey_isa::ServiceId;
/// use osprey_os::ServiceRequest;
///
/// let req = ServiceRequest::read(3, 8192, 65536);
/// assert_eq!(req.id, ServiceId::SysRead);
/// assert_eq!(req.size, 65536);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServiceRequest {
    /// The service being invoked.
    pub id: ServiceId,
    /// Primary argument: file id, path id, socket id, directory id, or
    /// descriptor count, depending on the service.
    pub a: u64,
    /// Secondary argument: byte offset for I/O, operation code for
    /// multiplexed calls.
    pub b: u64,
    /// Transfer size in bytes where meaningful.
    pub size: u64,
}

impl ServiceRequest {
    /// `sys_read(file, offset, size)`.
    pub fn read(file: u64, offset: u64, size: u64) -> Self {
        Self {
            id: ServiceId::SysRead,
            a: file,
            b: offset,
            size,
        }
    }

    /// `sys_write(file, offset, size)`.
    pub fn write(file: u64, offset: u64, size: u64) -> Self {
        Self {
            id: ServiceId::SysWrite,
            a: file,
            b: offset,
            size,
        }
    }

    /// `sys_writev(socket, size)` — gathered socket write.
    pub fn writev(socket: u64, size: u64) -> Self {
        Self {
            id: ServiceId::SysWritev,
            a: socket,
            b: 0,
            size,
        }
    }

    /// `sys_open(path_id)`.
    pub fn open(path_id: u64) -> Self {
        Self {
            id: ServiceId::SysOpen,
            a: path_id,
            b: 0,
            size: 0,
        }
    }

    /// `sys_close(fd)`.
    pub fn close(fd: u64) -> Self {
        Self {
            id: ServiceId::SysClose,
            a: fd,
            b: 0,
            size: 0,
        }
    }

    /// `sys_poll(nfds)`.
    pub fn poll(nfds: u64) -> Self {
        Self {
            id: ServiceId::SysPoll,
            a: nfds,
            b: 0,
            size: 0,
        }
    }

    /// `sys_socketcall(socket, op, size)` — `op` 0 = accept, 1 = recv,
    /// 2 = send.
    pub fn socketcall(socket: u64, op: u64, size: u64) -> Self {
        Self {
            id: ServiceId::SysSocketcall,
            a: socket,
            b: op,
            size,
        }
    }

    /// `sys_stat64(path_id)`.
    pub fn stat(path_id: u64) -> Self {
        Self {
            id: ServiceId::SysStat64,
            a: path_id,
            b: 0,
            size: 0,
        }
    }

    /// `sys_lstat64(path_id)`.
    pub fn lstat(path_id: u64) -> Self {
        Self {
            id: ServiceId::SysLstat64,
            a: path_id,
            b: 0,
            size: 0,
        }
    }

    /// `sys_fstat64(fd)`.
    pub fn fstat(fd: u64) -> Self {
        Self {
            id: ServiceId::SysFstat64,
            a: fd,
            b: 0,
            size: 0,
        }
    }

    /// `sys_fcntl64(fd, cmd)`.
    pub fn fcntl(fd: u64, cmd: u64) -> Self {
        Self {
            id: ServiceId::SysFcntl64,
            a: fd,
            b: cmd,
            size: 0,
        }
    }

    /// `sys_gettimeofday()`.
    pub fn gettimeofday() -> Self {
        Self {
            id: ServiceId::SysGettimeofday,
            a: 0,
            b: 0,
            size: 0,
        }
    }

    /// `sys_ipc(key, op)`.
    pub fn ipc(key: u64, op: u64) -> Self {
        Self {
            id: ServiceId::SysIpc,
            a: key,
            b: op,
            size: 0,
        }
    }

    /// `sys_getdents64(dir_id, entries)`.
    pub fn getdents(dir_id: u64, entries: u64) -> Self {
        Self {
            id: ServiceId::SysGetdents64,
            a: dir_id,
            b: entries,
            size: 0,
        }
    }

    /// `sys_execve(binary_id)`.
    pub fn execve(binary_id: u64) -> Self {
        Self {
            id: ServiceId::SysExecve,
            a: binary_id,
            b: 0,
            size: 0,
        }
    }

    /// `sys_brk(bytes)`.
    pub fn brk(bytes: u64) -> Self {
        Self {
            id: ServiceId::SysBrk,
            a: 0,
            b: 0,
            size: bytes,
        }
    }

    /// `sys_mmap(bytes)`.
    pub fn mmap(bytes: u64) -> Self {
        Self {
            id: ServiceId::SysMmap,
            a: 0,
            b: 0,
            size: bytes,
        }
    }

    /// A page fault at application address `addr`.
    pub fn page_fault(addr: u64) -> Self {
        Self {
            id: ServiceId::PageFault,
            a: addr,
            b: 0,
            size: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_service_ids() {
        assert_eq!(ServiceRequest::read(0, 0, 1).id, ServiceId::SysRead);
        assert_eq!(ServiceRequest::write(0, 0, 1).id, ServiceId::SysWrite);
        assert_eq!(ServiceRequest::writev(0, 1).id, ServiceId::SysWritev);
        assert_eq!(ServiceRequest::open(0).id, ServiceId::SysOpen);
        assert_eq!(ServiceRequest::close(0).id, ServiceId::SysClose);
        assert_eq!(ServiceRequest::poll(1).id, ServiceId::SysPoll);
        assert_eq!(
            ServiceRequest::socketcall(0, 0, 0).id,
            ServiceId::SysSocketcall
        );
        assert_eq!(ServiceRequest::stat(0).id, ServiceId::SysStat64);
        assert_eq!(ServiceRequest::lstat(0).id, ServiceId::SysLstat64);
        assert_eq!(ServiceRequest::fstat(0).id, ServiceId::SysFstat64);
        assert_eq!(ServiceRequest::fcntl(0, 0).id, ServiceId::SysFcntl64);
        assert_eq!(
            ServiceRequest::gettimeofday().id,
            ServiceId::SysGettimeofday
        );
        assert_eq!(ServiceRequest::ipc(0, 0).id, ServiceId::SysIpc);
        assert_eq!(ServiceRequest::getdents(0, 4).id, ServiceId::SysGetdents64);
        assert_eq!(ServiceRequest::execve(0).id, ServiceId::SysExecve);
        assert_eq!(ServiceRequest::brk(4096).id, ServiceId::SysBrk);
        assert_eq!(ServiceRequest::mmap(4096).id, ServiceId::SysMmap);
        assert_eq!(ServiceRequest::page_fault(0x1000).id, ServiceId::PageFault);
    }

    #[test]
    fn arguments_are_carried_through() {
        let r = ServiceRequest::socketcall(7, 2, 8192);
        assert_eq!((r.a, r.b, r.size), (7, 2, 8192));
    }
}

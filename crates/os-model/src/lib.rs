//! Synthetic operating-system model for the Osprey full-system simulator.
//!
//! The paper runs Linux 2.6.13 under Simics; Osprey substitutes a
//! *synthetic kernel* that preserves the structural properties the
//! acceleration scheme depends on (paper §3):
//!
//! * each OS service has **multiple execution paths** — a fast path, slow
//!   paths, and rare paths — selected by the parameters the application
//!   passes, by **kernel state** accumulated across invocations (buffer
//!   cache, dentry cache, socket buffers), and by environmental factors;
//! * each path executes a characteristic number of instructions with a
//!   characteristic memory/branch behavior, so a path manifests as a
//!   *behavior point* identifiable by its dynamic instruction count;
//! * occurrence patterns are application-driven and irregular.
//!
//! The kernel expands every [`ServiceRequest`] into a
//! [`ServiceInvocation`] — a list of [`osprey_isa::BlockSpec`]s — *before*
//! execution, so the functional path (and hence the signature) is
//! identical whether the simulator then runs the blocks through a detailed
//! timing core or a fast emulation core. Handlers may also schedule
//! asynchronous interrupts (disk completions, NIC activity), and a
//! periodic timer fires [`osprey_isa::ServiceId::IntTimer`] — the paper's
//! `Int_239`.
//!
//! # Examples
//!
//! ```
//! use osprey_isa::ServiceId;
//! use osprey_os::{Kernel, ServiceRequest};
//!
//! let mut kernel = Kernel::new(42);
//! let inv = kernel.handle(&ServiceRequest::read(0, 0, 16 * 1024), 0);
//! assert_eq!(inv.service, ServiceId::SysRead);
//! assert!(inv.instr_count() > 1_000);
//! // Re-reading the same pages now hits the buffer cache: a different,
//! // cheaper path.
//! let again = kernel.handle(&ServiceRequest::read(0, 0, 16 * 1024), 0);
//! assert!(again.instr_count() < inv.instr_count());
//! ```

pub mod invocation;
pub mod kernel;
pub mod layout;
pub mod request;
pub mod state;

pub use invocation::ServiceInvocation;
pub use kernel::{Kernel, KernelConfig};
pub use request::ServiceRequest;
pub use state::{LruCache, SocketBuffer};

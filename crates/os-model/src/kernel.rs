//! The synthetic kernel: service handlers, interrupt sources, and the
//! state that couples invocations together.
//!
//! Every handler picks an execution *path* from its request arguments,
//! kernel state, and (rarely) environmental randomness, then expands that
//! path into instruction blocks. Path instruction counts are
//! size-dependent and jittered by ±1 %, so instances of one path form a
//! tight signature cluster while different paths are well separated —
//! the structure the paper observes for Linux services (§3, Fig. 4–5).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use osprey_isa::{BlockSpec, InstrMix, MemPattern, ServiceId};
use osprey_stats::rng::SmallRng;

use crate::invocation::ServiceInvocation;
use crate::layout::{self, PAGE_SIZE};
use crate::request::ServiceRequest;
use crate::state::{LruCache, SocketBuffer};

/// Tunables of the synthetic kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KernelConfig {
    /// Page-cache capacity in 4 KiB pages. The default (192 pages =
    /// 768 KiB) is deliberately smaller than the web workloads' file set
    /// so that `sys_read` keeps exercising both its hit and miss paths.
    pub page_cache_pages: usize,
    /// Dentry-cache capacity in entries.
    pub dentry_capacity: usize,
    /// Per-socket send-buffer capacity in bytes.
    pub socket_buf_bytes: u64,
    /// Instructions between timer interrupts (the paper's `Int_239`).
    pub timer_period: u64,
    /// Instruction delay until a scheduled disk completion (`Int_121`).
    pub disk_latency_instr: u64,
    /// Instruction delay until scheduled NIC activity (`Int_49`).
    pub nic_delay_instr: u64,
    /// Dirty bytes that trigger a write-back flush inside `sys_write`.
    pub dirty_flush_bytes: u64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            page_cache_pages: 192,
            dentry_capacity: 512,
            socket_buf_bytes: 64 * 1024,
            timer_period: 400_000,
            disk_latency_instr: 150_000,
            nic_delay_instr: 60_000,
            dirty_flush_bytes: 256 * 1024,
        }
    }
}

/// Entry in the pending-interrupt queue.
type Pending = Reverse<(u64, u8)>;

fn interrupt_code(id: ServiceId) -> u8 {
    match id {
        ServiceId::IntDisk => 0,
        ServiceId::IntNic => 1,
        _ => unreachable!("only disk/NIC interrupts are queued"),
    }
}

fn interrupt_from_code(code: u8) -> ServiceId {
    match code {
        0 => ServiceId::IntDisk,
        1 => ServiceId::IntNic,
        _ => unreachable!(),
    }
}

/// The synthetic kernel.
///
/// See the [crate docs](crate) for the modeling rationale and an example.
#[derive(Debug, Clone)]
pub struct Kernel {
    cfg: KernelConfig,
    page_cache: LruCache,
    dentry_cache: LruCache,
    exec_cache: LruCache,
    sockets: HashMap<u64, SocketBuffer>,
    dirty_bytes: u64,
    pending: BinaryHeap<Pending>,
    next_timer: u64,
    ticks: u64,
    pending_disk_pages: u64,
    nic_backlog: u64,
    sock_ring_off: u64,
    invocations: u64,
    rng: SmallRng,
}

impl Kernel {
    /// Boots a kernel with default configuration and the given seed for
    /// its environmental randomness.
    pub fn new(seed: u64) -> Self {
        Self::with_config(KernelConfig::default(), seed)
    }

    /// Boots a kernel with an explicit configuration.
    pub fn with_config(cfg: KernelConfig, seed: u64) -> Self {
        Self {
            cfg,
            page_cache: LruCache::new(cfg.page_cache_pages),
            dentry_cache: LruCache::new(cfg.dentry_capacity),
            exec_cache: LruCache::new(16),
            sockets: HashMap::new(),
            dirty_bytes: 0,
            pending: BinaryHeap::new(),
            next_timer: cfg.timer_period,
            ticks: 0,
            pending_disk_pages: 0,
            nic_backlog: 0,
            sock_ring_off: 0,
            invocations: 0,
            rng: SmallRng::seed_from_u64(seed ^ 0x6b65_726e_656c_3432),
        }
    }

    /// The configuration this kernel was booted with.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// Total service invocations handled (including interrupts).
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// ±1 % multiplicative jitter, modeling run-to-run variation of a
    /// path's instruction count (lock retries, list lengths, ...). Small
    /// enough to stay inside one ±5 % scaled cluster.
    fn jitter(&mut self, n: u64) -> u64 {
        let f = 1.0 + (self.rng.random::<f64>() - 0.5) * 0.02;
        ((n as f64) * f).max(1.0) as u64
    }

    /// A control-flow-heavy kernel block for `(service, path)`.
    fn ctrl(&self, service: ServiceId, path: u64, instrs: u64, data_span: u64) -> BlockSpec {
        BlockSpec::new(layout::path_code_base(service, path), instrs)
            .with_mix(InstrMix::kernel_control())
            .with_code_footprint((instrs * 4).clamp(512, 12 * 1024))
            .with_mem(MemPattern::random(
                layout::service_data_base(service),
                data_span.max(1024),
            ))
            .with_branch_predictability(0.85)
    }

    /// A bulk-copy block walking cached file pages.
    fn copy(&self, service: ServiceId, path: u64, instrs: u64, src: u64, span: u64) -> BlockSpec {
        BlockSpec::new(layout::path_code_base(service, path) + 0x8000, instrs)
            .with_mix(InstrMix::memory_copy())
            .with_code_footprint(768)
            .with_mem(MemPattern::sequential(src, span.max(64), 8))
            .with_branch_predictability(0.98)
    }

    fn finish(
        &mut self,
        service: ServiceId,
        path: &'static str,
        blocks: Vec<BlockSpec>,
    ) -> ServiceInvocation {
        self.invocations += 1;
        // The block seed is a function of (service, path), not of the
        // invocation: a kernel path is the same machine code every time
        // it runs, so its instruction/address sequence should repeat.
        // Per-invocation variation still enters through the jittered
        // instruction counts and through cache/predictor state.
        let mut seed = 0xcbf2_9ce4_8422_2325u64 ^ (service.index() as u64);
        for b in path.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x1_0000_01b3);
        }
        ServiceInvocation {
            service,
            path,
            blocks,
            seed,
        }
    }

    /// Schedules an asynchronous interrupt `delta` instructions from `now`.
    fn schedule(&mut self, id: ServiceId, now: u64, delta: u64) {
        self.pending
            .push(Reverse((now + delta, interrupt_code(id))));
    }

    /// Returns the next interrupt due at or before instruction count
    /// `now`, if any. Timer interrupts take priority; scheduled disk/NIC
    /// events follow. Call repeatedly until `None` to drain.
    pub fn due_interrupt(&mut self, now: u64) -> Option<ServiceId> {
        if now >= self.next_timer {
            self.next_timer = now + self.cfg.timer_period;
            return Some(ServiceId::IntTimer);
        }
        if let Some(&Reverse((due, code))) = self.pending.peek() {
            if due <= now {
                self.pending.pop();
                return Some(interrupt_from_code(code));
            }
        }
        None
    }

    /// Instruction count at which the next interrupt (timer or scheduled)
    /// becomes due.
    pub fn next_interrupt_at(&self) -> u64 {
        let scheduled = self
            .pending
            .peek()
            .map(|&Reverse((due, _))| due)
            .unwrap_or(u64::MAX);
        self.next_timer.min(scheduled)
    }

    /// Expands an interrupt service (asynchronous OS service).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an interrupt.
    pub fn raise(&mut self, id: ServiceId, _now: u64) -> ServiceInvocation {
        assert!(id.is_interrupt(), "raise() takes interrupts only");
        match id {
            ServiceId::IntTimer => {
                self.ticks += 1;
                if self.ticks.is_multiple_of(8) {
                    let n = self.jitter(8_800);
                    let b = self.ctrl(id, 1, n, 32 * 1024);
                    self.finish(id, "rebalance", vec![b])
                } else {
                    let n = self.jitter(2_600);
                    let b = self.ctrl(id, 0, n, 24 * 1024);
                    self.finish(id, "tick", vec![b])
                }
            }
            ServiceId::IntDisk => {
                let batch = self.pending_disk_pages.min(16);
                self.pending_disk_pages = 0;
                let n = self.jitter(3_800 + 900 * batch);
                let b = self.ctrl(id, 0, n, 24 * 1024);
                self.finish(id, "disk_complete", vec![b])
            }
            ServiceId::IntNic => {
                let batch = self.nic_backlog.min(24);
                self.nic_backlog = 0;
                let n = self.jitter(2_800 + 700 * batch);
                let b = self.ctrl(id, 0, n, 24 * 1024);
                self.finish(id, "nic_rx_tx", vec![b])
            }
            _ => unreachable!(),
        }
    }

    /// Handles a synchronous service request issued at instruction count
    /// `now`, mutating kernel state and possibly scheduling interrupts.
    pub fn handle(&mut self, req: &ServiceRequest, now: u64) -> ServiceInvocation {
        let id = req.id;
        match id {
            ServiceId::SysRead => self.sys_read(req, now),
            ServiceId::SysWrite => self.sys_write(req, now),
            ServiceId::SysWritev => self.sys_writev(req, now),
            ServiceId::SysOpen => {
                let hit = self.dentry_cache.touch(req.a);
                if hit {
                    let n = self.jitter(2_400);
                    let b = self.ctrl(id, 0, n, 32 * 1024);
                    self.finish(id, "dentry_hit", vec![b])
                } else {
                    let n = self.jitter(10_500);
                    let b = self.ctrl(id, 1, n, 40 * 1024);
                    self.finish(id, "lookup_slow", vec![b])
                }
            }
            ServiceId::SysClose => {
                let n = self.jitter(750);
                let b = self.ctrl(id, 0, n, 8 * 1024);
                self.finish(id, "fast", vec![b])
            }
            ServiceId::SysPoll => {
                let nfds = req.a.max(1);
                if self.rng.random::<f64>() < 0.12 {
                    let n = self.jitter(1_400 + 260 * nfds + 3_600);
                    let b = self.ctrl(id, 1, n, 24 * 1024);
                    self.finish(id, "block_wait", vec![b])
                } else {
                    let n = self.jitter(1_400 + 260 * nfds);
                    let b = self.ctrl(id, 0, n, 16 * 1024);
                    self.finish(id, "scan", vec![b])
                }
            }
            ServiceId::SysSocketcall => self.sys_socketcall(req, now),
            ServiceId::SysStat64 | ServiceId::SysLstat64 => {
                let hit = self.dentry_cache.touch(req.a);
                if hit {
                    let n = self.jitter(1_700);
                    let b = self.ctrl(id, 0, n, 24 * 1024);
                    self.finish(id, "dentry_hit", vec![b])
                } else {
                    let n = self.jitter(8_800);
                    let b = self.ctrl(id, 1, n, 32 * 1024);
                    self.finish(id, "lookup_slow", vec![b])
                }
            }
            ServiceId::SysFstat64 => {
                let n = self.jitter(850);
                let b = self.ctrl(id, 0, n, 8 * 1024);
                self.finish(id, "fast", vec![b])
            }
            ServiceId::SysFcntl64 => {
                let n = self.jitter(600);
                let b = self.ctrl(id, 0, n, 4 * 1024);
                self.finish(id, "fast", vec![b])
            }
            ServiceId::SysGettimeofday => {
                let n = self.jitter(420);
                let b = self.ctrl(id, 0, n, 1024);
                self.finish(id, "fast", vec![b])
            }
            ServiceId::SysIpc => {
                if self.rng.random::<f64>() < 0.08 {
                    let n = self.jitter(5_600);
                    let b = self.ctrl(id, 1, n, 32 * 1024);
                    self.finish(id, "contended", vec![b])
                } else {
                    let n = self.jitter(2_100);
                    let b = self.ctrl(id, 0, n, 16 * 1024);
                    self.finish(id, "semop", vec![b])
                }
            }
            ServiceId::SysGetdents64 => {
                let entries = req.b.max(1);
                let hit = self.dentry_cache.touch(0x8000_0000 | req.a);
                if hit {
                    let n = self.jitter(1_300 + 140 * entries);
                    let b = self.ctrl(id, 0, n, 32 * 1024);
                    self.finish(id, "warm_dir", vec![b])
                } else {
                    let n = self.jitter(1_300 + 140 * entries + 7_500);
                    let b = self.ctrl(id, 1, n, 40 * 1024);
                    self.finish(id, "cold_dir", vec![b])
                }
            }
            ServiceId::SysExecve => {
                let hit = self.exec_cache.touch(req.a);
                if hit {
                    let n = self.jitter(120_000);
                    let b = self.ctrl(id, 0, n, 96 * 1024);
                    self.finish(id, "warm_exec", vec![b])
                } else {
                    self.pending_disk_pages += 8;
                    self.schedule(ServiceId::IntDisk, now, self.cfg.disk_latency_instr);
                    let n = self.jitter(260_000);
                    let b = self.ctrl(id, 1, n, 160 * 1024);
                    self.finish(id, "cold_exec", vec![b])
                }
            }
            ServiceId::SysBrk => {
                if req.size <= 64 * 1024 {
                    let n = self.jitter(1_100);
                    let b = self.ctrl(id, 0, n, 8 * 1024);
                    self.finish(id, "fast", vec![b])
                } else {
                    let n = self.jitter(5_200);
                    let b = self.ctrl(id, 1, n, 64 * 1024);
                    self.finish(id, "expand", vec![b])
                }
            }
            ServiceId::SysMmap => {
                if req.size > 1024 * 1024 {
                    let n = self.jitter(14_000);
                    let b = self.ctrl(id, 1, n, 48 * 1024);
                    self.finish(id, "populate", vec![b])
                } else {
                    let n = self.jitter(2_900);
                    let b = self.ctrl(id, 0, n, 32 * 1024);
                    self.finish(id, "map", vec![b])
                }
            }
            ServiceId::PageFault => {
                let key = 0x4000_0000 | (req.a >> 12);
                let resident = self.page_cache.touch(key);
                if resident {
                    let n = self.jitter(2_300);
                    let b = self.ctrl(id, 0, n, 32 * 1024);
                    self.finish(id, "minor", vec![b])
                } else {
                    self.pending_disk_pages += 1;
                    self.schedule(ServiceId::IntDisk, now, self.cfg.disk_latency_instr);
                    let n = self.jitter(24_000);
                    let b = self.ctrl(id, 1, n, 48 * 1024);
                    self.finish(id, "major", vec![b])
                }
            }
            ServiceId::IntNic | ServiceId::IntDisk | ServiceId::IntTimer => {
                panic!("interrupts are raised by the kernel, not requested: {id}")
            }
            // `ServiceId` is non-exhaustive.
            other => {
                let n = self.jitter(1_000);
                let b = self.ctrl(other, 0, n, 8 * 1024);
                self.finish(other, "generic", vec![b])
            }
        }
    }

    fn sys_read(&mut self, req: &ServiceRequest, now: u64) -> ServiceInvocation {
        let id = ServiceId::SysRead;
        let (file, offset, size) = (req.a, req.b, req.size.max(1));
        let first_page = offset / PAGE_SIZE;
        let last_page = (offset + size - 1) / PAGE_SIZE;
        let mut missing = 0u64;
        for page in first_page..=last_page {
            if !self.page_cache.touch(file * 1024 + page) {
                missing += 1;
            }
        }
        // copy_to_user: ~3 instructions per 8 bytes.
        let copy_instrs = self.jitter(600 + size * 3 / 8);
        let copy = self.copy(
            id,
            0,
            copy_instrs,
            layout::page_addr(file, first_page) + offset % PAGE_SIZE,
            size,
        );
        if missing == 0 {
            let setup = self.jitter(1_200);
            let b = self.ctrl(id, 0, setup, 24 * 1024);
            self.finish(id, "page_cache_hit", vec![b, copy])
        } else {
            self.pending_disk_pages += missing;
            self.schedule(ServiceId::IntDisk, now, self.cfg.disk_latency_instr);
            let setup = self.jitter(2_600 + 1_800 * missing);
            let b = self.ctrl(id, 1, setup, 32 * 1024);
            self.finish(id, "disk_read", vec![b, copy])
        }
    }

    fn sys_write(&mut self, req: &ServiceRequest, now: u64) -> ServiceInvocation {
        let id = ServiceId::SysWrite;
        let (file, offset, size) = (req.a, req.b, req.size.max(1));
        let first_page = offset / PAGE_SIZE;
        let last_page = (offset + size - 1) / PAGE_SIZE;
        for page in first_page..=last_page {
            self.page_cache.touch(file * 1024 + page);
        }
        self.dirty_bytes += size;
        let copy_instrs = self.jitter(500 + size * 3 / 8);
        let copy = self.copy(
            id,
            0,
            copy_instrs,
            layout::page_addr(file, first_page) + offset % PAGE_SIZE,
            size,
        );
        if self.dirty_bytes >= self.cfg.dirty_flush_bytes {
            self.dirty_bytes = 0;
            self.pending_disk_pages += 8;
            self.schedule(ServiceId::IntDisk, now, self.cfg.disk_latency_instr);
            let setup = self.jitter(800 + 9_000);
            let b = self.ctrl(id, 1, setup, 40 * 1024);
            self.finish(id, "writeback_flush", vec![b, copy])
        } else {
            let setup = self.jitter(800);
            let b = self.ctrl(id, 0, setup, 24 * 1024);
            self.finish(id, "buffered", vec![b, copy])
        }
    }

    fn sys_writev(&mut self, req: &ServiceRequest, now: u64) -> ServiceInvocation {
        let id = ServiceId::SysWritev;
        let (socket, size) = (req.a, req.size.max(1));
        let cap = self.cfg.socket_buf_bytes;
        let (fits, drained) = {
            let sb = self
                .sockets
                .entry(socket)
                .or_insert_with(|| SocketBuffer::new(cap));
            if sb.offer(size) {
                (true, 0)
            } else {
                let drained = sb.flush();
                sb.offer(size.min(cap));
                (false, drained)
            }
        };
        let copy_instrs = 700 + size * 3 / 8;
        if fits {
            let n = self.jitter(copy_instrs);
            let copy = self.copy(id, 0, n, layout::service_data_base(id) + 0x1_0000, size);
            let setup = self.jitter(900);
            let b = self.ctrl(id, 0, setup, 16 * 1024);
            self.finish(id, "buffered", vec![b, copy])
        } else {
            self.nic_backlog += drained / 1_500 + 1;
            self.schedule(ServiceId::IntNic, now, self.cfg.nic_delay_instr);
            let n = self.jitter(copy_instrs);
            let copy = self.copy(id, 1, n, layout::service_data_base(id) + 0x1_0000, size);
            let setup = self.jitter(900 + 5_200);
            let b = self.ctrl(id, 1, setup, 32 * 1024);
            self.finish(id, "tx_flush", vec![b, copy])
        }
    }

    fn sys_socketcall(&mut self, req: &ServiceRequest, now: u64) -> ServiceInvocation {
        let id = ServiceId::SysSocketcall;
        let (socket, op, size) = (req.a, req.b, req.size.max(1));
        match op {
            // accept
            0 => {
                let n = self.jitter(6_800);
                let b = self.ctrl(id, 0, n, 32 * 1024);
                self.finish(id, "accept", vec![b])
            }
            // recv
            1 => {
                if self.nic_backlog == 0 && self.rng.random::<f64>() < 0.25 {
                    let n = self.jitter(1_300 + size * 3 / 8 + 4_200);
                    let b = self.ctrl(id, 2, n, 24 * 1024);
                    self.finish(id, "recv_wait", vec![b])
                } else {
                    self.nic_backlog = self.nic_backlog.saturating_sub(1);
                    let setup = self.jitter(1_300);
                    let b = self.ctrl(id, 1, setup, 24 * 1024);
                    let n = self.jitter(size * 3 / 8);
                    let copy = self.copy(
                        id,
                        1,
                        n.max(64),
                        layout::service_data_base(id) + 0x2_0000,
                        size,
                    );
                    self.finish(id, "recv", vec![b, copy])
                }
            }
            // send (same buffering discipline as writev)
            _ => {
                let cap = self.cfg.socket_buf_bytes;
                let (fits, drained) = {
                    let sb = self
                        .sockets
                        .entry(socket)
                        .or_insert_with(|| SocketBuffer::new(cap));
                    if sb.offer(size) {
                        (true, 0)
                    } else {
                        let drained = sb.flush();
                        sb.offer(size.min(cap));
                        (false, drained)
                    }
                };
                // Payloads are staged into the NIC packet ring; the ring
                // wraps every PACKET_RING_BYTES so sustained senders keep
                // an L2-capacity-sized kernel working set live.
                let ring_src = layout::PACKET_RING_BASE + self.sock_ring_off;
                self.sock_ring_off = (self.sock_ring_off + size) % layout::PACKET_RING_BYTES;
                let copy_instrs = self.jitter(size * 3 / 8);
                let copy = self.copy(id, 3, copy_instrs.max(64), ring_src, size);
                if fits {
                    let n = self.jitter(1_100);
                    let b = self.ctrl(id, 3, n, 24 * 1024);
                    self.finish(id, "send_buffered", vec![b, copy])
                } else {
                    self.nic_backlog += drained / 1_500 + 1;
                    self.schedule(ServiceId::IntNic, now, self.cfg.nic_delay_instr);
                    let n = self.jitter(1_100 + 4_800);
                    let b = self.ctrl(id, 4, n, 32 * 1024);
                    self.finish(id, "send_flush", vec![b, copy])
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Kernel {
        Kernel::new(7)
    }

    #[test]
    fn read_miss_then_hit_paths() {
        let mut k = kernel();
        let cold = k.handle(&ServiceRequest::read(0, 0, 16 * 1024), 0);
        assert_eq!(cold.path, "disk_read");
        let warm = k.handle(&ServiceRequest::read(0, 0, 16 * 1024), 10_000);
        assert_eq!(warm.path, "page_cache_hit");
        assert!(warm.instr_count() < cold.instr_count());
    }

    #[test]
    fn read_instr_count_scales_with_size() {
        let mut k = kernel();
        // Warm both extents first so both take the hit path.
        k.handle(&ServiceRequest::read(1, 0, 64 * 1024), 0);
        k.handle(&ServiceRequest::read(1, 0, 64 * 1024), 0);
        let small = k.handle(&ServiceRequest::read(1, 0, 4 * 1024), 0);
        let large = k.handle(&ServiceRequest::read(1, 0, 64 * 1024), 0);
        assert_eq!(small.path, "page_cache_hit");
        assert_eq!(large.path, "page_cache_hit");
        assert!(large.instr_count() > small.instr_count() * 4);
    }

    #[test]
    fn page_cache_evictions_reintroduce_misses() {
        let cfg = KernelConfig {
            page_cache_pages: 8,
            ..KernelConfig::default()
        };
        let mut k = Kernel::with_config(cfg, 1);
        k.handle(&ServiceRequest::read(0, 0, 8 * PAGE_SIZE), 0);
        // Reading a second file evicts file 0's pages.
        k.handle(&ServiceRequest::read(1, 0, 8 * PAGE_SIZE), 0);
        let third = k.handle(&ServiceRequest::read(0, 0, 8 * PAGE_SIZE), 0);
        assert_eq!(third.path, "disk_read");
    }

    #[test]
    fn disk_reads_schedule_disk_interrupts() {
        let mut k = kernel();
        assert_eq!(k.due_interrupt(0), None);
        k.handle(&ServiceRequest::read(0, 0, 4096), 0);
        let due_at = k.cfg.disk_latency_instr;
        assert_eq!(k.due_interrupt(due_at - 1), None);
        assert_eq!(k.due_interrupt(due_at), Some(ServiceId::IntDisk));
        assert_eq!(k.due_interrupt(due_at), None, "drained");
    }

    #[test]
    fn timer_fires_periodically() {
        let mut k = kernel();
        let p = k.cfg.timer_period;
        assert_eq!(k.due_interrupt(p - 1), None);
        assert_eq!(k.due_interrupt(p), Some(ServiceId::IntTimer));
        // Re-armed relative to the current instruction count.
        assert_eq!(k.due_interrupt(p + 1), None);
        assert_eq!(k.due_interrupt(2 * p + 1), Some(ServiceId::IntTimer));
    }

    #[test]
    fn timer_has_two_behavior_points() {
        let mut k = kernel();
        let mut paths = std::collections::HashSet::new();
        for _ in 0..16 {
            let inv = k.raise(ServiceId::IntTimer, 0);
            paths.insert(inv.path);
        }
        assert!(paths.contains("tick"));
        assert!(paths.contains("rebalance"));
    }

    #[test]
    fn writev_flushes_when_socket_buffer_fills() {
        let mut k = kernel();
        let mut flushed = 0;
        let mut buffered = 0;
        for i in 0..32 {
            let inv = k.handle(&ServiceRequest::writev(1, 12 * 1024), i * 50_000);
            match inv.path {
                "tx_flush" => flushed += 1,
                "buffered" => buffered += 1,
                other => panic!("unexpected path {other}"),
            }
        }
        assert!(flushed > 0, "64 KiB buffer must overflow on 12 KiB writes");
        assert!(buffered > flushed, "most writes fit");
    }

    #[test]
    fn nic_flush_schedules_nic_interrupt() {
        let mut k = kernel();
        for i in 0..12 {
            k.handle(&ServiceRequest::writev(1, 12 * 1024), i * 1_000);
        }
        let due = k.next_interrupt_at();
        assert!(due < u64::MAX);
        let int = k.due_interrupt(due);
        assert!(matches!(
            int,
            Some(ServiceId::IntNic) | Some(ServiceId::IntTimer)
        ));
    }

    #[test]
    fn dentry_cache_separates_open_paths() {
        let mut k = kernel();
        let cold = k.handle(&ServiceRequest::open(42), 0);
        let warm = k.handle(&ServiceRequest::open(42), 0);
        assert_eq!(cold.path, "lookup_slow");
        assert_eq!(warm.path, "dentry_hit");
        assert!(cold.instr_count() > warm.instr_count() * 2);
    }

    #[test]
    fn execve_warm_vs_cold() {
        let mut k = kernel();
        let cold = k.handle(&ServiceRequest::execve(3), 0);
        let warm = k.handle(&ServiceRequest::execve(3), 0);
        assert_eq!(cold.path, "cold_exec");
        assert_eq!(warm.path, "warm_exec");
        assert!(cold.instr_count() > 200_000);
        assert!(warm.instr_count() > 100_000);
    }

    #[test]
    fn write_flush_path_after_enough_dirty_bytes() {
        let mut k = kernel();
        let mut saw_flush = false;
        for i in 0..8 {
            let inv = k.handle(&ServiceRequest::write(2, i * 65_536, 64 * 1024), 0);
            if inv.path == "writeback_flush" {
                saw_flush = true;
            }
        }
        assert!(saw_flush, "256 KiB dirty threshold must trigger");
    }

    #[test]
    fn jitter_keeps_paths_within_cluster_range() {
        let mut k = kernel();
        // Warm the dentry.
        k.handle(&ServiceRequest::open(9), 0);
        let counts: Vec<u64> = (0..50)
            .map(|_| k.handle(&ServiceRequest::open(9), 0).instr_count())
            .collect();
        let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        for &c in &counts {
            let dev = ((c as f64 - mean) / mean).abs();
            assert!(dev < 0.05, "jitter must stay within ±5%: {dev}");
        }
    }

    #[test]
    fn service_invocation_counts_are_in_paper_range() {
        // Paper Fig. 3: a few thousand to a few tens of thousands of
        // instructions per OS service.
        let mut k = kernel();
        let inv = k.handle(&ServiceRequest::read(0, 0, 64 * 1024), 0);
        assert!(
            (10_000..120_000).contains(&inv.instr_count()),
            "64 KiB read = {}",
            inv.instr_count()
        );
        let tod = k.handle(&ServiceRequest::gettimeofday(), 0);
        assert!((300..700).contains(&tod.instr_count()));
    }

    #[test]
    #[should_panic(expected = "interrupts are raised")]
    fn handle_rejects_interrupt_requests() {
        let mut k = kernel();
        let bogus = ServiceRequest {
            id: ServiceId::IntTimer,
            a: 0,
            b: 0,
            size: 0,
        };
        k.handle(&bogus, 0);
    }

    #[test]
    #[should_panic(expected = "interrupts only")]
    fn raise_rejects_syscalls() {
        let mut k = kernel();
        k.raise(ServiceId::SysRead, 0);
    }

    #[test]
    fn identical_seeds_produce_identical_histories() {
        let mut a = Kernel::new(5);
        let mut b = Kernel::new(5);
        for i in 0..50 {
            let req = ServiceRequest::read(i % 3, (i * 4096) % 65_536, 8 * 1024);
            let x = a.handle(&req, i * 10_000);
            let y = b.handle(&req, i * 10_000);
            assert_eq!(x, y);
        }
    }

    #[test]
    fn page_fault_minor_vs_major() {
        let mut k = kernel();
        let cold = k.handle(&ServiceRequest::page_fault(0x1234_5000), 0);
        assert_eq!(cold.path, "major");
        let warm = k.handle(&ServiceRequest::page_fault(0x1234_5008), 0);
        assert_eq!(warm.path, "minor", "same page is now resident");
        assert!(cold.instr_count() > warm.instr_count() * 5);
    }

    #[test]
    fn brk_and_mmap_paths_split_on_size() {
        let mut k = kernel();
        assert_eq!(k.handle(&ServiceRequest::brk(4 * 1024), 0).path, "fast");
        assert_eq!(
            k.handle(&ServiceRequest::brk(1024 * 1024), 0).path,
            "expand"
        );
        assert_eq!(k.handle(&ServiceRequest::mmap(64 * 1024), 0).path, "map");
        assert_eq!(
            k.handle(&ServiceRequest::mmap(4 * 1024 * 1024), 0).path,
            "populate"
        );
    }

    #[test]
    fn disk_completion_batches_are_capped() {
        let mut k = kernel();
        // Queue far more pending pages than one completion can retire.
        for i in 0..40 {
            k.handle(&ServiceRequest::read(i, 0, 4096), 0);
        }
        let inv = k.raise(ServiceId::IntDisk, 0);
        // 3_800 + 900 * min(pending, 16), plus <=1% jitter.
        assert!(inv.instr_count() <= (3_800 + 900 * 16) * 101 / 100);
    }

    #[test]
    fn next_interrupt_reports_earliest_event() {
        let mut k = kernel();
        let timer_due = k.next_interrupt_at();
        assert_eq!(timer_due, k.cfg.timer_period);
        // A disk read scheduled now is due before the first timer tick.
        k.handle(&ServiceRequest::read(0, 0, 4096), 0);
        assert_eq!(k.next_interrupt_at(), k.cfg.disk_latency_instr);
        assert!(k.next_interrupt_at() < timer_due);
    }

    #[test]
    fn getdents_scales_with_entry_count() {
        let mut k = kernel();
        // Warm the directory dentries first.
        k.handle(&ServiceRequest::getdents(7, 1), 0);
        let small = k.handle(&ServiceRequest::getdents(7, 2), 0);
        let large = k.handle(&ServiceRequest::getdents(7, 40), 0);
        assert_eq!(small.path, "warm_dir");
        assert_eq!(large.path, "warm_dir");
        assert!(large.instr_count() > small.instr_count() + 4_000);
    }

    #[test]
    fn socketcall_ops_select_distinct_paths() {
        let mut k = kernel();
        assert_eq!(
            k.handle(&ServiceRequest::socketcall(1, 0, 0), 0).path,
            "accept"
        );
        let recv = k.handle(&ServiceRequest::socketcall(1, 1, 4096), 0);
        assert!(recv.path == "recv" || recv.path == "recv_wait");
        let send = k.handle(&ServiceRequest::socketcall(1, 2, 4096), 0);
        assert!(send.path == "send_buffered" || send.path == "send_flush");
    }

    #[test]
    fn invocation_count_increments_per_service() {
        let mut k = kernel();
        assert_eq!(k.invocations(), 0);
        k.handle(&ServiceRequest::gettimeofday(), 0);
        k.handle(&ServiceRequest::close(1), 0);
        k.raise(ServiceId::IntTimer, 0);
        assert_eq!(k.invocations(), 3);
    }

    #[test]
    fn send_ring_wraps_within_the_packet_ring() {
        use crate::layout::{PACKET_RING_BASE, PACKET_RING_BYTES};
        let mut k = kernel();
        for i in 0..200u64 {
            let inv = k.handle(&ServiceRequest::socketcall(3, 2, 8 * 1024), i * 1_000);
            for block in &inv.blocks {
                if block.mix == osprey_isa::InstrMix::memory_copy() {
                    assert!(block.mem.base >= PACKET_RING_BASE);
                    assert!(block.mem.base < PACKET_RING_BASE + PACKET_RING_BYTES);
                }
            }
        }
    }
}

//! Stateful kernel subsystems.
//!
//! These are what make OS-service behavior *history dependent*: whether
//! `sys_read` takes its buffer-hit or disk path depends on what earlier
//! invocations left in the page cache, whether `sys_open` is cheap depends
//! on the dentry cache, and whether a socket write flushes depends on how
//! full the socket buffer is (paper §3: "the behavior of an OS service is
//! not only determined by the parameters passed by the application, but
//! also by the state of the service handler itself and by the
//! environment").

use std::collections::HashMap;

/// A capacity-bounded LRU cache over `u64` keys — the shape of the
/// synthetic page cache and dentry cache.
///
/// # Examples
///
/// ```
/// use osprey_os::LruCache;
///
/// let mut c = LruCache::new(2);
/// assert!(!c.touch(1)); // miss, inserted
/// assert!(!c.touch(2));
/// assert!(c.touch(1));  // hit
/// c.touch(3);           // evicts 2 (the LRU key)
/// assert!(!c.contains(2));
/// assert!(c.contains(1));
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LruCache {
    capacity: usize,
    /// key -> last-use stamp.
    entries: HashMap<u64, u64>,
    clock: u64,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            entries: HashMap::with_capacity(capacity + 1),
            clock: 0,
        }
    }

    /// Looks up `key`, inserting it if absent; returns whether it was
    /// already present (a hit). Inserting into a full cache evicts the
    /// least-recently used key.
    pub fn touch(&mut self, key: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(stamp) = self.entries.get_mut(&key) {
            *stamp = clock;
            return true;
        }
        if self.entries.len() >= self.capacity {
            if let Some((&lru, _)) = self.entries.iter().min_by_key(|(_, &stamp)| stamp) {
                self.entries.remove(&lru);
            }
        }
        self.entries.insert(key, clock);
        false
    }

    /// Whether `key` is resident (no LRU update).
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Current number of resident keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of resident keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// A bounded socket send buffer.
///
/// Writes accumulate until the buffer cannot accept the next payload, at
/// which point the kernel takes the flush path (and raises NIC activity).
///
/// # Examples
///
/// ```
/// use osprey_os::SocketBuffer;
///
/// let mut sb = SocketBuffer::new(16 * 1024);
/// assert!(sb.offer(8 * 1024));   // buffered
/// assert!(!sb.offer(12 * 1024)); // would overflow: flush needed
/// sb.flush();
/// assert!(sb.offer(12 * 1024));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SocketBuffer {
    capacity: u64,
    used: u64,
}

impl SocketBuffer {
    /// Creates a buffer with the given capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self { capacity, used: 0 }
    }

    /// Tries to buffer `bytes`; returns `false` when the write does not
    /// fit (the caller must flush first).
    pub fn offer(&mut self, bytes: u64) -> bool {
        if self.used + bytes <= self.capacity {
            self.used += bytes;
            true
        } else {
            false
        }
    }

    /// Empties the buffer, returning how many bytes were drained.
    pub fn flush(&mut self) -> u64 {
        std::mem::take(&mut self.used)
    }

    /// Bytes currently buffered.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Buffer capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_hits_and_misses() {
        let mut c = LruCache::new(3);
        assert!(!c.touch(10));
        assert!(c.touch(10));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = LruCache::new(2);
        c.touch(1);
        c.touch(2);
        c.touch(1); // 2 is now LRU
        c.touch(3);
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_never_exceeds_capacity() {
        let mut c = LruCache::new(5);
        for k in 0..100 {
            c.touch(k);
            assert!(c.len() <= 5);
        }
    }

    #[test]
    fn lru_clear_empties() {
        let mut c = LruCache::new(2);
        c.touch(1);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.contains(1));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn lru_rejects_zero_capacity() {
        LruCache::new(0);
    }

    #[test]
    fn socket_buffer_accumulates_until_full() {
        let mut sb = SocketBuffer::new(10);
        assert!(sb.offer(4));
        assert!(sb.offer(6));
        assert_eq!(sb.used(), 10);
        assert!(!sb.offer(1));
        assert_eq!(sb.flush(), 10);
        assert_eq!(sb.used(), 0);
    }

    #[test]
    fn oversized_write_never_fits() {
        let mut sb = SocketBuffer::new(10);
        assert!(!sb.offer(11));
        assert_eq!(sb.used(), 0);
    }
}

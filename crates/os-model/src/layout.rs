//! Synthetic kernel address-space layout.
//!
//! Kernel code and data live above `0xC000_0000` (the classic 32-bit Linux
//! split), separated from application regions so that cache contention
//! between OS and application working sets is real and measurable.

use osprey_isa::ServiceId;

/// Base of kernel code. Each service gets its own code window; each path
/// within a service gets a sub-window, so different paths have different
/// instruction-cache footprints.
pub const KERNEL_CODE_BASE: u64 = 0xC000_0000;

/// Bytes of code window per service.
pub const SERVICE_CODE_SPAN: u64 = 0x10_0000;

/// Bytes of code window per path within a service.
pub const PATH_CODE_SPAN: u64 = 0x1_0000;

/// Base of the page/buffer cache data region.
pub const BUFFER_CACHE_BASE: u64 = 0xD000_0000;

/// Size of one buffer-cache page.
pub const PAGE_SIZE: u64 = 4096;

/// Base of per-service kernel data structures (run queues, dentry hash
/// tables, socket structures, ...).
pub const KERNEL_DATA_BASE: u64 = 0xE000_0000;

/// Base of the NIC packet-buffer ring used by socket sends.
pub const PACKET_RING_BASE: u64 = 0xF000_0000;

/// Size of the packet ring. Deliberately sized between the paper's 512 KiB
/// and 1 MiB L2 configurations so network-heavy workloads (iperf) are
/// sensitive to L2 capacity, as in the paper's Fig. 2.
pub const PACKET_RING_BYTES: u64 = 640 * 1024;

/// Bytes of kernel data per service.
pub const SERVICE_DATA_SPAN: u64 = 0x8_0000;

/// Code window origin for a `(service, path)` pair.
///
/// # Examples
///
/// ```
/// use osprey_isa::ServiceId;
/// use osprey_os::layout::path_code_base;
///
/// let a = path_code_base(ServiceId::SysRead, 0);
/// let b = path_code_base(ServiceId::SysRead, 1);
/// let c = path_code_base(ServiceId::SysWrite, 0);
/// assert_ne!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn path_code_base(service: ServiceId, path: u64) -> u64 {
    KERNEL_CODE_BASE + service.index() as u64 * SERVICE_CODE_SPAN + path * PATH_CODE_SPAN
}

/// Kernel data region for a service's own structures.
pub fn service_data_base(service: ServiceId) -> u64 {
    KERNEL_DATA_BASE + service.index() as u64 * SERVICE_DATA_SPAN
}

/// Address of a cached file page in the synthetic page cache.
///
/// Pages of the same file are contiguous, so sequential reads of a file
/// walk memory sequentially — exactly what a real buffer cache copy loop
/// sees.
pub fn page_addr(file: u64, page: u64) -> u64 {
    // Up to 1024 pages (4 MiB) per file keeps files disjoint.
    BUFFER_CACHE_BASE + (file * 1024 + page) * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_code_windows_do_not_overlap() {
        let mut bases: Vec<u64> = ServiceId::ALL
            .iter()
            .map(|&s| path_code_base(s, 0))
            .collect();
        bases.sort_unstable();
        for pair in bases.windows(2) {
            assert!(pair[1] - pair[0] >= SERVICE_CODE_SPAN);
        }
    }

    #[test]
    fn paths_fit_inside_service_window() {
        // 16 paths per service at most.
        let highest = path_code_base(ServiceId::SysRead, 15);
        assert!(highest + PATH_CODE_SPAN <= path_code_base(ServiceId::SysWrite, 0));
    }

    #[test]
    fn pages_of_different_files_are_disjoint() {
        assert!(page_addr(1, 0) >= page_addr(0, 1023) + PAGE_SIZE);
    }

    #[test]
    fn kernel_regions_do_not_collide() {
        let code_end = KERNEL_CODE_BASE + ServiceId::ALL.len() as u64 * SERVICE_CODE_SPAN;
        assert!(code_end <= BUFFER_CACHE_BASE);
        let data_start = KERNEL_DATA_BASE;
        let pages_end = page_addr(64, 0);
        assert!(pages_end <= data_start, "64 files fit below kernel data");
    }
}

//! The three-level memory hierarchy: split L1s over a unified L2 over a
//! flat memory.

use osprey_isa::Privilege;
use osprey_stats::rng::SmallRng;

use crate::cache::Cache;
use crate::config::HierarchyConfig;
use crate::stats::HierarchySnapshot;

/// The simulated memory system.
///
/// Latency composition is sequential (no overlap inside the hierarchy;
/// memory-level parallelism is the out-of-order core's job): an L1 miss
/// pays the L2 hit latency, and an L2 miss additionally pays the memory
/// latency. Dirty evictions propagate as write accesses to the next level.
///
/// # Examples
///
/// ```
/// use osprey_isa::Privilege;
/// use osprey_mem::{Hierarchy, HierarchyConfig};
///
/// let mut mem = Hierarchy::new(HierarchyConfig::default());
/// // Cold fetch: L1I miss + L2 miss -> 1 + 8 + 300 cycles.
/// assert_eq!(mem.fetch(0x40_0000, Privilege::User), 309);
/// // Warm fetch: L1I hit.
/// assert_eq!(mem.fetch(0x40_0000, Privilege::User), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
}

impl Hierarchy {
    /// Builds an empty (cold) hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Self {
            cfg,
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
        }
    }

    /// The configuration this hierarchy was built with.
    #[inline]
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Instruction fetch at `pc`; returns the access latency in cycles.
    #[inline]
    pub fn fetch(&mut self, pc: u64, owner: Privilege) -> u64 {
        let l1 = self.l1i.access(pc, false, owner);
        if l1.hit {
            return self.cfg.l1i.hit_latency;
        }
        // Instruction lines are never dirty, so no L1I writeback occurs.
        self.cfg.l1i.hit_latency + self.level2(pc, false, owner)
    }

    /// Data access at `addr`; returns the access latency in cycles.
    #[inline]
    pub fn data_access(&mut self, addr: u64, is_write: bool, owner: Privilege) -> u64 {
        let l1 = self.l1d.access(addr, is_write, owner);
        let mut latency = self.cfg.l1d.hit_latency;
        if l1.hit {
            return latency;
        }
        if let Some(wb) = l1.writeback {
            // Victim write-back into L2; tagged with the owner that
            // triggered the eviction. Write-backs complete off the critical
            // path, so they add no latency here.
            self.l2.access(wb, true, owner);
        }
        latency += self.level2(addr, is_write, owner);
        latency
    }

    /// Batched data accesses walking `base, base + stride, …`, exactly
    /// equivalent to `n` [`Hierarchy::data_access`] calls in a loop —
    /// identical statistics, LRU stamps, and write-backs at every level —
    /// but folding the guaranteed-hit within-line repeats of a
    /// sequential walk into one bookkeeping step per line.
    ///
    /// Returns the summed per-access latencies, as the loop would.
    pub fn data_access_run(
        &mut self,
        base: u64,
        stride: u64,
        n: u64,
        is_write: bool,
        owner: Privilege,
    ) -> u64 {
        let line = self.cfg.l1d.line;
        let mut total = 0;
        let mut k = 0;
        while k < n {
            let addr = base + stride * k;
            let in_line = if stride == 0 {
                n - k
            } else {
                (line - (addr & (line - 1))).div_ceil(stride)
            };
            let g = in_line.min(n - k);
            total += self.data_access(addr, is_write, owner);
            if g > 1 {
                // The first access left the line resident and MRU in L1D,
                // so the remaining g-1 accesses are L1D hits: they never
                // reach L2 and each costs the L1D hit latency.
                self.l1d.touch_repeat(addr, g - 1, is_write, owner);
                total += (g - 1) * self.cfg.l1d.hit_latency;
            }
            k += g;
        }
        total
    }

    /// Folds `n` guaranteed L1D hits to the just-accessed line at `addr`
    /// into one bookkeeping step (see [`Cache::touch_repeat`]). Returns
    /// the latency those hits cost: `n` times the L1D hit latency.
    ///
    /// # Panics
    ///
    /// Panics if `addr`'s line is not resident and MRU in L1D — the
    /// caller must have just issued [`Hierarchy::data_access`] (or a
    /// previous repeat) to the same line.
    #[inline]
    pub fn data_touch_repeat(
        &mut self,
        addr: u64,
        n: u64,
        is_write: bool,
        owner: Privilege,
    ) -> u64 {
        self.l1d.touch_repeat(addr, n, is_write, owner);
        n * self.cfg.l1d.hit_latency
    }

    fn level2(&mut self, addr: u64, is_write: bool, owner: Privilege) -> u64 {
        let l2 = self.l2.access(addr, is_write, owner);
        if l2.hit {
            self.cfg.l2.hit_latency
        } else {
            // Dirty L2 victims drain to memory off the critical path.
            self.cfg.l2.hit_latency + self.cfg.mem_latency
        }
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The unified L2 cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// A snapshot of all counters, for per-interval deltas.
    pub fn snapshot(&self) -> HierarchySnapshot {
        HierarchySnapshot {
            l1i: *self.l1i.stats(),
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
        }
    }

    /// Applies predicted OS pollution to every level (paper §4.5).
    ///
    /// The per-level `(accesses, misses)` pairs are the *predicted*
    /// cache activity of the skipped OS service; see [`Cache::pollute`]
    /// for how hits and misses are replayed.
    pub fn pollute(
        &mut self,
        l1i: (u64, u64),
        l1d: (u64, u64),
        l2: (u64, u64),
        rng: &mut SmallRng,
    ) {
        self.l1i.pollute(l1i.0, l1i.1, rng);
        self.l1d.pollute(l1d.0, l1d.1, rng);
        self.l2.pollute(l2.0, l2.1, rng);
    }

    /// Invalidates all caches (keeps statistics).
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn cold_data_access_pays_full_path() {
        let mut m = mem();
        // L1D 2 + L2 8 + mem 300.
        assert_eq!(m.data_access(0x1000, false, Privilege::User), 310);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = mem();
        m.data_access(0x1000, false, Privilege::User);
        // Evict 0x1000 from tiny L1D by filling its set: L1D has 64 sets,
        // so addresses 0x1000 + k*64*64B alias to the same set.
        let set_stride = 64 * 64;
        for k in 1..=4u64 {
            m.data_access(0x1000 + k * set_stride, false, Privilege::User);
        }
        // Now 0x1000 misses L1 but hits L2: 2 + 8.
        assert_eq!(m.data_access(0x1000, false, Privilege::User), 10);
    }

    #[test]
    fn fetch_uses_l1i() {
        let mut m = mem();
        assert_eq!(m.fetch(0x40_0000, Privilege::Kernel), 309);
        assert_eq!(m.fetch(0x40_0000, Privilege::Kernel), 1);
        let snap = m.snapshot();
        assert_eq!(snap.l1i.os_accesses, 2);
        assert_eq!(snap.l1i.os_misses, 1);
    }

    #[test]
    fn dirty_l1_victim_reaches_l2_as_write() {
        let mut m = mem();
        m.data_access(0x1000, true, Privilege::User); // dirty in L1D
        let set_stride = 64 * 64;
        for k in 1..=4u64 {
            m.data_access(0x1000 + k * set_stride, false, Privilege::User);
        }
        // The L2 line for 0x1000 must now be dirty; evicting it from L2
        // would produce an L2 writeback. Hard to trigger cheaply, but we
        // can at least verify the write access was recorded.
        let snap = m.snapshot();
        assert!(snap.l2.app_accesses >= 6, "writeback counted as L2 access");
    }

    #[test]
    fn snapshot_delta_isolates_interval() {
        let mut m = mem();
        m.data_access(0x1000, false, Privilege::User);
        let before = m.snapshot();
        m.data_access(0x2000, false, Privilege::Kernel);
        m.data_access(0x2000, false, Privilege::Kernel);
        let delta = m.snapshot().delta(&before);
        assert_eq!(delta.l1d.os_accesses, 2);
        assert_eq!(delta.l1d.os_misses, 1);
        assert_eq!(delta.l1d.app_accesses, 0);
    }

    #[test]
    fn data_access_run_matches_per_access_loop() {
        for stride in [0u64, 8, 24, 64, 160] {
            for is_write in [false, true] {
                let mut looped = mem();
                let mut batched = mem();
                // Enough accesses to spill L1D and produce L2 traffic and
                // writebacks on the write passes.
                let (base, n) = (0x100_0000u64, 3_000u64);
                let mut expect = 0;
                for k in 0..n {
                    expect += looped.data_access(base + stride * k, is_write, Privilege::Kernel);
                }
                let got = batched.data_access_run(base, stride, n, is_write, Privilege::Kernel);
                assert_eq!(got, expect, "stride {stride} write {is_write}");
                assert_eq!(looped.snapshot(), batched.snapshot());
                // The hierarchies are observationally identical afterwards.
                for probe in (0..64u64).map(|i| base + i * 64) {
                    assert_eq!(looped.l1d().probe(probe), batched.l1d().probe(probe));
                    assert_eq!(looped.l2().probe(probe), batched.l2().probe(probe));
                }
            }
        }
    }

    #[test]
    fn data_touch_repeat_charges_l1d_hits() {
        let mut m = mem();
        m.data_access(0x1000, false, Privilege::User);
        let lat = m.data_touch_repeat(0x1008, 3, false, Privilege::User);
        assert_eq!(lat, 3 * m.config().l1d.hit_latency);
        assert_eq!(m.snapshot().l1d.app_accesses, 4);
        assert_eq!(m.snapshot().l1d.app_misses, 1);
    }

    #[test]
    fn pollute_touches_all_levels() {
        let mut m = mem();
        // Warm app state everywhere; the L2 (16 Ki lines) is filled
        // completely so pollution cannot hide in invalid slots.
        for i in 0..16_384u64 {
            m.data_access(0x10_0000 + i * 64, false, Privilege::User);
        }
        for i in 0..512u64 {
            m.fetch(0x40_0000 + i * 64, Privilege::User);
        }
        let app_l2_before = m.l2().owned_lines(Privilege::User);
        let mut rng = SmallRng::seed_from_u64(9);
        m.pollute((128, 64), (128, 64), (512, 256), &mut rng);
        assert!(m.l2().owned_lines(Privilege::User) < app_l2_before);
        assert!(m.l1d().owned_lines(Privilege::Kernel) > 0);
    }

    #[test]
    fn different_l2_sizes_change_behavior() {
        // A working set that fits in 1 MiB but not in 512 KiB L2.
        let ws = 768 * 1024u64;
        let mut misses = Vec::new();
        for l2 in [512 * 1024, 1024 * 1024] {
            let mut m = Hierarchy::new(HierarchyConfig::pentium4(l2));
            for pass in 0..4 {
                let _ = pass;
                let mut a = 0;
                while a < ws {
                    m.data_access(0x100_0000 + a, false, Privilege::User);
                    a += 64;
                }
            }
            misses.push(m.snapshot().l2.app_misses);
        }
        assert!(
            misses[0] > misses[1] * 2,
            "512K L2 should thrash: {misses:?}"
        );
    }
}

//! A set-associative, write-back, write-allocate cache with true-LRU
//! replacement and per-line owner tags.

use osprey_isa::Privilege;
use osprey_stats::rng::SmallRng;

use crate::config::CacheConfig;
use crate::stats::CacheStats;

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    owner: Privilege,
    /// Global LRU stamp; larger means more recently used.
    stamp: u64,
}

impl Line {
    const EMPTY: Line = Line {
        tag: 0,
        valid: false,
        dirty: false,
        owner: Privilege::User,
        stamp: 0,
    };
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Block address (line-aligned) of a dirty line evicted by the fill,
    /// which must be written back to the next level.
    pub writeback: Option<u64>,
}

/// Aggregate result of a batched [`Cache::access_run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and filled).
    pub misses: u64,
    /// Block addresses of dirty lines evicted by the fills, in eviction
    /// order; each must be written back to the next level.
    pub writebacks: Vec<u64>,
}

/// One level of cache.
///
/// # Examples
///
/// ```
/// use osprey_isa::Privilege;
/// use osprey_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::l1d());
/// assert!(!c.access(0x1000, false, Privilege::User).hit); // cold miss
/// assert!(c.access(0x1000, false, Privilege::User).hit);  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Line>,
    num_sets: u64,
    set_mask: u64,
    line_shift: u32,
    clock: u64,
    stats: CacheStats,
    /// Per-set way index of the most recently touched line — the hit
    /// fast path checks it before scanning the set.
    mru_way: Vec<u8>,
}

impl Cache {
    /// Tag used by [`Cache::pollute`]'s synthetic OS lines. Real blocks
    /// never produce this tag (it would require an address near
    /// `u64::MAX`).
    pub const POLLUTION_TAG: u64 = u64::MAX;

    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not [valid](CacheConfig::is_valid).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.is_valid(), "invalid cache geometry: {cfg:?}");
        let num_sets = cfg.num_sets();
        assert!(cfg.assoc <= u8::MAX as usize, "associativity exceeds 255");
        Self {
            cfg,
            sets: vec![Line::EMPTY; (num_sets as usize) * cfg.assoc],
            num_sets,
            set_mask: num_sets - 1,
            line_shift: cfg.line.trailing_zeros(),
            clock: 0,
            stats: CacheStats::default(),
            mru_way: vec![0; num_sets as usize],
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    #[inline]
    fn decompose(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.line_shift;
        (
            (block & self.set_mask) as usize,
            block >> self.num_sets.trailing_zeros(),
        )
    }

    #[inline]
    fn set_slice(&mut self, set: usize) -> &mut [Line] {
        let a = self.cfg.assoc;
        &mut self.sets[set * a..(set + 1) * a]
    }

    /// Performs one access; on a miss the line is filled (write-allocate)
    /// and the LRU victim, if dirty, is reported for write-back.
    ///
    /// Hits take a fast path that never scans for a victim: the set's
    /// most-recently-touched way is probed first (temporal locality makes
    /// this the common case), and even when the full set is scanned, the
    /// invalid/LRU bookkeeping a fill needs is gathered in the same pass —
    /// a hit returns before any of it is consulted and a miss never
    /// re-scans the set.
    #[inline]
    pub fn access(&mut self, addr: u64, is_write: bool, owner: Privilege) -> AccessOutcome {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.decompose(addr);

        match owner {
            Privilege::User => self.stats.app_accesses += 1,
            Privilege::Kernel => self.stats.os_accesses += 1,
        }

        // Fast path: the set's MRU way usually holds the line.
        let mru = self.mru_way[set] as usize;
        let a = self.cfg.assoc;
        {
            let line = &mut self.sets[set * a + mru];
            if line.valid && line.tag == tag {
                line.stamp = clock;
                line.dirty |= is_write;
                line.owner = owner;
                return AccessOutcome {
                    hit: true,
                    writeback: None,
                };
            }
        }

        // Single scan: find the hit while tracking the fill victim (the
        // first invalid way, else the least-recently-used way).
        let mut victim_idx = 0usize;
        let mut best = u64::MAX;
        let mut invalid: Option<usize> = None;
        for (i, line) in self.sets[set * a..(set + 1) * a].iter_mut().enumerate() {
            if line.valid {
                if line.tag == tag {
                    line.stamp = clock;
                    line.dirty |= is_write;
                    line.owner = owner;
                    self.mru_way[set] = i as u8;
                    return AccessOutcome {
                        hit: true,
                        writeback: None,
                    };
                }
                if line.stamp < best {
                    best = line.stamp;
                    victim_idx = i;
                }
            } else if invalid.is_none() {
                invalid = Some(i);
            }
        }

        // Miss: fill over an invalid line or the LRU line.
        match owner {
            Privilege::User => self.stats.app_misses += 1,
            Privilege::Kernel => self.stats.os_misses += 1,
        }
        let victim_idx = invalid.unwrap_or(victim_idx);
        let set_bits = self.num_sets.trailing_zeros();
        let line_shift = self.line_shift;
        self.mru_way[set] = victim_idx as u8;
        let victim = &mut self.set_slice(set)[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            let block = (victim.tag << set_bits) | set as u64;
            Some(block << line_shift)
        } else {
            None
        };
        *victim = Line {
            tag,
            valid: true,
            dirty: is_write,
            owner,
            stamp: clock,
        };
        if writeback.is_some() {
            self.stats.writebacks += 1;
        }
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Re-touches the set's MRU line — which must hold `addr` — `n`
    /// more times, exactly as `n` repeated [`Cache::access`] hits would:
    /// the clock and the owner's access counter advance by `n`, the line
    /// takes the final clock as its LRU stamp, is marked dirty on
    /// writes, and is re-tagged to `owner`.
    ///
    /// This is the within-line half of [`Cache::access_run`]: once an
    /// access has made a line both resident and MRU, further accesses to
    /// the same line are guaranteed hits whose individual outcomes carry
    /// no information, so they can be folded into one bookkeeping step.
    ///
    /// # Panics
    ///
    /// Panics if the set's MRU way does not hold `addr` — the caller
    /// must have just accessed the same line.
    #[inline]
    pub fn touch_repeat(&mut self, addr: u64, n: u64, is_write: bool, owner: Privilege) {
        if n == 0 {
            return;
        }
        self.clock += n;
        match owner {
            Privilege::User => self.stats.app_accesses += n,
            Privilege::Kernel => self.stats.os_accesses += n,
        }
        let (set, tag) = self.decompose(addr);
        let mru = self.mru_way[set] as usize;
        let line = &mut self.sets[set * self.cfg.assoc + mru];
        assert!(
            line.valid && line.tag == tag,
            "touch_repeat requires the line to be resident and MRU"
        );
        line.stamp = self.clock;
        line.dirty |= is_write;
        line.owner = owner;
    }

    /// Performs `n` accesses walking `base, base + stride, …`, exactly
    /// equivalent to `n` [`Cache::access`] calls in a loop — identical
    /// statistics, LRU stamps, dirty bits, and write-backs — but paying
    /// the probe/scan cost once per touched *line* instead of once per
    /// access (`stride == 0` repeats the same address).
    ///
    /// Returns the aggregate outcome; per-access hit results for the
    /// skipped accesses are guaranteed hits by construction.
    pub fn access_run(
        &mut self,
        base: u64,
        stride: u64,
        n: u64,
        is_write: bool,
        owner: Privilege,
    ) -> RunOutcome {
        let mut out = RunOutcome::default();
        let line = self.cfg.line;
        let mut k = 0;
        while k < n {
            let addr = base + stride * k;
            // Accesses k .. k+g share addr's line: the first access makes
            // the line resident and MRU, so the rest are pure re-touches.
            let in_line = if stride == 0 {
                n - k
            } else {
                (line - (addr & (line - 1))).div_ceil(stride)
            };
            let g = in_line.min(n - k);
            let first = self.access(addr, is_write, owner);
            if first.hit {
                out.hits += 1;
            } else {
                out.misses += 1;
            }
            if let Some(wb) = first.writeback {
                out.writebacks.push(wb);
            }
            if g > 1 {
                self.touch_repeat(addr, g - 1, is_write, owner);
                out.hits += g - 1;
            }
            k += g;
        }
        out
    }

    /// Checks residency without updating LRU state or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.decompose(addr);
        let a = self.cfg.assoc;
        self.sets[set * a..(set + 1) * a]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Number of valid lines currently owned by `owner`.
    pub fn owned_lines(&self, owner: Privilege) -> u64 {
        self.sets
            .iter()
            .filter(|l| l.valid && l.owner == owner)
            .count() as u64
    }

    /// Number of valid lines.
    pub fn valid_lines(&self) -> u64 {
        self.sets.iter().filter(|l| l.valid).count() as u64
    }

    /// Applies the paper's §4.5 OS-pollution model: converts `misses`
    /// predicted OS misses into `misses` synthetic fills, each into a
    /// uniformly selected set, with the victim chosen as the paper
    /// describes — "starting from invalid cache line, the valid
    /// least-recently used line, and to a more recently used line".
    ///
    /// Returns the number of *application* lines displaced.
    ///
    /// The skipped interval's cache activity is replayed in two parts,
    /// both derived from the prediction:
    ///
    /// * each predicted **hit** (`accesses - misses`) refreshes one
    ///   rotating member of the synthetic pool (tag
    ///   [`Cache::POLLUTION_TAG`]) in a uniformly selected set — a real
    ///   interval's hits keep its working set most-recently used, which
    ///   is what ages the *other* residents toward eviction;
    /// * each predicted **miss** installs a synthetic line over the
    ///   set's invalid or least-recently used slot, exactly the victim a
    ///   real fill would take.
    ///
    /// Once the predicted services go quiet the synthetic pool stops
    /// being refreshed and decays: subsequent real fills reclaim it via
    /// ordinary LRU.
    pub fn pollute(&mut self, accesses: u64, misses: u64, rng: &mut SmallRng) -> u64 {
        // Hit-refresh replay.
        for _ in 0..accesses.saturating_sub(misses) {
            self.clock += 1;
            let clock = self.clock;
            let set = rng.random_range(0..self.num_sets) as usize;
            if let Some(lru_synth) = self
                .set_slice(set)
                .iter_mut()
                .filter(|l| l.valid && l.tag == Self::POLLUTION_TAG)
                .min_by_key(|l| l.stamp)
            {
                lru_synth.stamp = clock;
            }
        }
        // Miss-fill replay.
        let mut displaced = 0;
        for _ in 0..misses {
            self.clock += 1;
            let clock = self.clock;
            let set = rng.random_range(0..self.num_sets) as usize;
            let lines = self.set_slice(set);
            let idx = match lines.iter().position(|l| !l.valid) {
                Some(i) => i,
                None => lines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.stamp)
                    .map(|(i, _)| i)
                    .expect("set has at least one line"),
            };
            if lines[idx].valid && lines[idx].owner == Privilege::User {
                displaced += 1;
            }
            lines[idx] = Line {
                tag: Self::POLLUTION_TAG,
                valid: true,
                dirty: false,
                owner: Privilege::Kernel,
                stamp: clock,
            };
        }
        displaced
    }

    /// Invalidates everything (keeps statistics).
    pub fn flush(&mut self) {
        self.sets.fill(Line::EMPTY);
        // Reset the MRU hints too: after a flush every line is invalid,
        // so a stale hint would send the first post-flush access in each
        // set down a guaranteed-dead fast-path probe. (Correctness never
        // depended on this — the fast path checks validity — it was just
        // a wasted compare.)
        self.mru_way.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig {
            size: 512,
            assoc: 2,
            line: 64,
            hit_latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x0, false, Privilege::User).hit);
        assert!(c.access(0x0, false, Privilege::User).hit);
        assert!(c.access(0x3f, false, Privilege::User).hit, "same line");
        assert!(!c.access(0x40, false, Privilege::User).hit, "next line");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Set 0 holds lines with block addresses that are multiples of
        // 4 sets * 64 B = 256 B.
        c.access(0x000, false, Privilege::User);
        c.access(0x100, false, Privilege::User);
        // Touch 0x000 so 0x100 becomes LRU.
        c.access(0x000, false, Privilege::User);
        // A third line in set 0 must evict 0x100.
        c.access(0x200, false, Privilege::User);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small();
        c.access(0x000, true, Privilege::User); // dirty
        c.access(0x100, false, Privilege::User);
        let out = c.access(0x200, false, Privilege::User); // evicts 0x000
        assert_eq!(out.writeback, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.access(0x000, false, Privilege::User);
        c.access(0x100, false, Privilege::User);
        let out = c.access(0x200, false, Privilege::User);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_marks_line_dirty() {
        let mut c = small();
        c.access(0x000, false, Privilege::User);
        c.access(0x000, true, Privilege::User); // dirty via write hit
        c.access(0x100, false, Privilege::User);
        let out = c.access(0x200, false, Privilege::User);
        assert_eq!(out.writeback, Some(0x000));
    }

    #[test]
    fn stats_split_by_owner() {
        let mut c = small();
        c.access(0x000, false, Privilege::User);
        c.access(0x040, false, Privilege::Kernel);
        c.access(0x000, false, Privilege::User);
        let s = c.stats();
        assert_eq!(s.app_accesses, 2);
        assert_eq!(s.app_misses, 1);
        assert_eq!(s.os_accesses, 1);
        assert_eq!(s.os_misses, 1);
    }

    #[test]
    fn probe_does_not_perturb_state() {
        let mut c = small();
        c.access(0x000, false, Privilege::User);
        let before = *c.stats();
        assert!(c.probe(0x000));
        assert!(!c.probe(0x40));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn pollution_displaces_app_lines_first() {
        let mut c = small();
        // Fill the whole cache with app lines (8 lines).
        for i in 0..8u64 {
            c.access(i * 64, false, Privilege::User);
        }
        assert_eq!(c.owned_lines(Privilege::User), 8);
        let mut rng = SmallRng::seed_from_u64(1);
        let displaced = c.pollute(8, 8, &mut rng);
        assert!(displaced > 0);
        assert_eq!(c.owned_lines(Privilege::User), 8 - displaced);
        assert_eq!(
            c.owned_lines(Privilege::Kernel),
            displaced,
            "each displacement installs an OS line"
        );
    }

    #[test]
    fn pollution_prefers_invalid_slots() {
        let mut c = small();
        // Only one app line resident; plenty of invalid space.
        c.access(0x000, false, Privilege::User);
        let mut rng = SmallRng::seed_from_u64(2);
        let displaced = c.pollute(4, 4, &mut rng);
        // With 7 invalid lines, it is possible (and likely) nothing was
        // displaced; the app line may only be displaced if its set was
        // chosen twice.
        assert!(displaced <= 1);
        assert_eq!(c.owned_lines(Privilege::User), 1 - displaced);
    }

    #[test]
    fn pollution_never_counts_kernel_victims() {
        let mut c = small();
        for i in 0..8u64 {
            c.access(i * 64, false, Privilege::Kernel);
        }
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(c.pollute(16, 16, &mut rng), 0);
    }

    #[test]
    fn flush_invalidates_but_keeps_stats() {
        let mut c = small();
        c.access(0x000, false, Privilege::User);
        c.flush();
        assert!(!c.probe(0x000));
        assert_eq!(c.stats().app_accesses, 1);
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn flush_resets_mru_hints() {
        let mut c = small();
        // Make way 1 the MRU way of set 0, then flush.
        c.access(0x000, false, Privilege::User);
        c.access(0x100, false, Privilege::User);
        assert_eq!(c.mru_way[0], 1);
        c.flush();
        assert!(c.mru_way.iter().all(|&w| w == 0), "hints cleared");
        // Post-flush behavior is identical to a fresh cache modulo the
        // retained statistics and clock: same fills, same victims.
        let mut fresh = small();
        let stats_offset = *c.stats();
        for addr in [0x000u64, 0x100, 0x040, 0x000, 0x200] {
            let a = c.access(addr, true, Privilege::Kernel);
            let b = fresh.access(addr, true, Privilege::Kernel);
            assert_eq!(a, b, "post-flush access to {addr:#x} diverged");
        }
        assert_eq!(c.stats().os_accesses - stats_offset.os_accesses, 5);
        assert_eq!(fresh.stats().os_accesses, 5);
    }

    #[test]
    fn touch_repeat_matches_repeated_hits() {
        let mut a = small();
        let mut b = small();
        a.access(0x1000, false, Privilege::User);
        b.access(0x1000, false, Privilege::User);
        for _ in 0..5 {
            a.access(0x1008, true, Privilege::Kernel);
        }
        b.access(0x1008, true, Privilege::Kernel);
        b.touch_repeat(0x1008, 4, true, Privilege::Kernel);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.clock, b.clock);
        // Subsequent evictions see identical LRU state.
        let out_a = a.access(0x1100, false, Privilege::User);
        let out_b = b.access(0x1100, false, Privilege::User);
        assert_eq!(out_a, out_b);
    }

    #[test]
    #[should_panic(expected = "resident and MRU")]
    fn touch_repeat_rejects_non_mru_lines() {
        let mut c = small();
        c.access(0x000, false, Privilege::User);
        c.access(0x100, false, Privilege::User); // 0x000 no longer MRU
        c.touch_repeat(0x000, 1, false, Privilege::User);
    }

    #[test]
    fn access_run_matches_per_access_loop() {
        // Strides around and across the 64 B line, with wrap-free walks
        // long enough to force evictions and writebacks in the tiny cache.
        for stride in [0u64, 4, 8, 16, 64, 96, 256] {
            for is_write in [false, true] {
                let mut looped = small();
                let mut batched = small();
                // Warm both with a dirty resident line so runs evict it.
                looped.access(0x40, true, Privilege::User);
                batched.access(0x40, true, Privilege::User);
                let (base, n) = (0x0u64, 100u64);
                let mut expect = RunOutcome::default();
                for k in 0..n {
                    let out = looped.access(base + stride * k, is_write, Privilege::Kernel);
                    if out.hit {
                        expect.hits += 1;
                    } else {
                        expect.misses += 1;
                    }
                    expect.writebacks.extend(out.writeback);
                }
                let got = batched.access_run(base, stride, n, is_write, Privilege::Kernel);
                assert_eq!(got, expect, "stride {stride} write {is_write}");
                assert_eq!(looped.stats(), batched.stats());
                assert_eq!(looped.clock, batched.clock);
                // Residency and LRU state are indistinguishable.
                for set in 0..looped.num_sets as usize {
                    for way in 0..looped.cfg.assoc {
                        let (a, b) = (looped.sets[set * 2 + way], batched.sets[set * 2 + way]);
                        assert_eq!(a.tag, b.tag);
                        assert_eq!(a.valid, b.valid);
                        assert_eq!(a.dirty, b.dirty);
                        assert_eq!(a.stamp, b.stamp);
                        assert_eq!(a.owner, b.owner);
                    }
                }
            }
        }
    }

    #[test]
    fn kernel_access_retags_shared_line() {
        let mut c = small();
        c.access(0x000, false, Privilege::User);
        c.access(0x000, false, Privilege::Kernel);
        assert_eq!(c.owned_lines(Privilege::Kernel), 1);
        assert_eq!(c.owned_lines(Privilege::User), 0);
    }
}

//! Cache statistics, separated by owner (application vs OS).
//!
//! The acceleration scheme needs per-interval miss counts (to record in the
//! Performance Lookup Table) and end-of-run miss rates split by privilege
//! (Fig. 9). Counters are cheap monotonically increasing totals;
//! per-interval deltas are taken with [`CacheStats::delta`].

/// Monotonic counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheStats {
    /// Total accesses by user-mode (application) code.
    pub app_accesses: u64,
    /// Misses among `app_accesses`.
    pub app_misses: u64,
    /// Total accesses by kernel-mode (OS) code.
    pub os_accesses: u64,
    /// Misses among `os_accesses`.
    pub os_misses: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses, both owners.
    pub fn accesses(&self) -> u64 {
        self.app_accesses + self.os_accesses
    }

    /// Total misses, both owners.
    pub fn misses(&self) -> u64 {
        self.app_misses + self.os_misses
    }

    /// Overall miss rate (0 when there were no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }

    /// Counter-wise difference `self - earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier
    /// (any counter would go negative).
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        debug_assert!(
            self.app_accesses >= earlier.app_accesses
                && self.app_misses >= earlier.app_misses
                && self.os_accesses >= earlier.os_accesses
                && self.os_misses >= earlier.os_misses
                && self.writebacks >= earlier.writebacks,
            "delta against a later snapshot"
        );
        CacheStats {
            app_accesses: self.app_accesses - earlier.app_accesses,
            app_misses: self.app_misses - earlier.app_misses,
            os_accesses: self.os_accesses - earlier.os_accesses,
            os_misses: self.os_misses - earlier.os_misses,
            writebacks: self.writebacks - earlier.writebacks,
        }
    }

    /// Counter-wise sum.
    pub fn add(&mut self, other: &CacheStats) {
        self.app_accesses += other.app_accesses;
        self.app_misses += other.app_misses;
        self.os_accesses += other.os_accesses;
        self.os_misses += other.os_misses;
        self.writebacks += other.writebacks;
    }
}

/// A point-in-time copy of all three caches' statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HierarchySnapshot {
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
}

impl HierarchySnapshot {
    /// Counter-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &HierarchySnapshot) -> HierarchySnapshot {
        HierarchySnapshot {
            l1i: self.l1i.delta(&earlier.l1i),
            l1d: self.l1d.delta(&earlier.l1d),
            l2: self.l2.delta(&earlier.l2),
        }
    }

    /// Counter-wise sum.
    pub fn add(&mut self, other: &HierarchySnapshot) {
        self.l1i.add(&other.l1i);
        self.l1d.add(&other.l1d);
        self.l2.add(&other.l2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CacheStats {
        CacheStats {
            app_accesses: 100,
            app_misses: 10,
            os_accesses: 50,
            os_misses: 20,
            writebacks: 5,
        }
    }

    #[test]
    fn totals_combine_owners() {
        let s = sample();
        assert_eq!(s.accesses(), 150);
        assert_eq!(s.misses(), 30);
        assert!((s.miss_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_miss_rate_is_zero() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn delta_subtracts_counterwise() {
        let later = CacheStats {
            app_accesses: 150,
            app_misses: 12,
            os_accesses: 70,
            os_misses: 25,
            writebacks: 9,
        };
        let d = later.delta(&sample());
        assert_eq!(d.app_accesses, 50);
        assert_eq!(d.app_misses, 2);
        assert_eq!(d.os_accesses, 20);
        assert_eq!(d.os_misses, 5);
        assert_eq!(d.writebacks, 4);
    }

    #[test]
    fn add_then_delta_round_trips() {
        let mut a = sample();
        let b = CacheStats {
            app_accesses: 7,
            app_misses: 1,
            os_accesses: 3,
            os_misses: 2,
            writebacks: 0,
        };
        let before = a;
        a.add(&b);
        assert_eq!(a.delta(&before), b);
    }

    #[test]
    fn snapshot_delta_covers_all_levels() {
        let mut snap = HierarchySnapshot::default();
        snap.l2.os_misses = 7;
        let zero = HierarchySnapshot::default();
        assert_eq!(snap.delta(&zero).l2.os_misses, 7);
    }
}

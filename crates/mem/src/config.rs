//! Cache and hierarchy configuration.

/// Geometry and timing of one cache.
///
/// # Examples
///
/// ```
/// use osprey_mem::CacheConfig;
///
/// let l2 = CacheConfig::l2(1024 * 1024);
/// assert_eq!(l2.num_sets(), 1024 * 1024 / (8 * 64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity (lines per set).
    pub assoc: usize,
    /// Line size in bytes (must be a power of two).
    pub line: u64,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// The paper's L1 instruction cache: 16 KiB, 2-way, 64 B lines.
    pub fn l1i() -> Self {
        Self {
            size: 16 * 1024,
            assoc: 2,
            line: 64,
            hit_latency: 1,
        }
    }

    /// The paper's L1 data cache: 16 KiB, 4-way, 64 B lines, 2-cycle hits.
    pub fn l1d() -> Self {
        Self {
            size: 16 * 1024,
            assoc: 4,
            line: 64,
            hit_latency: 2,
        }
    }

    /// The paper's unified L2: 8-way, 64 B lines, 8-cycle hits, with a
    /// configurable capacity (512 KiB–4 MiB across the paper's
    /// experiments).
    pub fn l2(size: u64) -> Self {
        Self {
            size,
            assoc: 8,
            line: 64,
            hit_latency: 8,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible by
    /// `assoc * line`).
    pub fn num_sets(&self) -> u64 {
        assert!(self.assoc > 0 && self.line > 0, "degenerate geometry");
        let set_bytes = self.assoc as u64 * self.line;
        assert!(
            self.size.is_multiple_of(set_bytes) && self.size >= set_bytes,
            "cache size {} not a multiple of assoc*line {}",
            self.size,
            set_bytes
        );
        self.size / set_bytes
    }

    /// `true` when the geometry is usable (power-of-two line and set count).
    pub fn is_valid(&self) -> bool {
        if self.assoc == 0 || self.line == 0 || !self.line.is_power_of_two() {
            return false;
        }
        let set_bytes = self.assoc as u64 * self.line;
        if self.size == 0 || !self.size.is_multiple_of(set_bytes) {
            return false;
        }
        (self.size / set_bytes).is_power_of_two()
    }
}

/// Configuration of the whole memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Flat memory access latency in cycles behind L2 (the paper uses 300).
    pub mem_latency: u64,
}

impl HierarchyConfig {
    /// The paper's Pentium-4-like configuration with a chosen L2 size.
    ///
    /// # Examples
    ///
    /// ```
    /// use osprey_mem::HierarchyConfig;
    ///
    /// let cfg = HierarchyConfig::pentium4(512 * 1024);
    /// assert_eq!(cfg.mem_latency, 300);
    /// ```
    pub fn pentium4(l2_size: u64) -> Self {
        Self {
            l1i: CacheConfig::l1i(),
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(l2_size),
            mem_latency: 300,
        }
    }
}

impl Default for HierarchyConfig {
    /// The paper's default evaluation machine (1 MiB L2).
    fn default() -> Self {
        Self::pentium4(1024 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries_are_valid() {
        assert!(CacheConfig::l1i().is_valid());
        assert!(CacheConfig::l1d().is_valid());
        for size in [512 * 1024, 1024 * 1024, 2 * 1024 * 1024, 4 * 1024 * 1024] {
            assert!(CacheConfig::l2(size).is_valid(), "L2 size {size}");
        }
    }

    #[test]
    fn set_counts_match_hand_calculation() {
        // 16 KiB / (2 * 64 B) = 128 sets.
        assert_eq!(CacheConfig::l1i().num_sets(), 128);
        // 16 KiB / (4 * 64 B) = 64 sets.
        assert_eq!(CacheConfig::l1d().num_sets(), 64);
        // 1 MiB / (8 * 64 B) = 2048 sets.
        assert_eq!(CacheConfig::l2(1024 * 1024).num_sets(), 2048);
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        let mut c = CacheConfig::l1d();
        c.line = 48; // not a power of two
        assert!(!c.is_valid());
        c = CacheConfig::l1d();
        c.size = 10_000; // not divisible
        assert!(!c.is_valid());
        c = CacheConfig::l1d();
        c.assoc = 0;
        assert!(!c.is_valid());
    }

    #[test]
    fn default_hierarchy_is_the_paper_machine() {
        let cfg = HierarchyConfig::default();
        assert_eq!(cfg.l2.size, 1024 * 1024);
        assert_eq!(cfg.l1i.size, 16 * 1024);
        assert_eq!(cfg.l1d.hit_latency, 2);
        assert_eq!(cfg.l2.hit_latency, 8);
        assert_eq!(cfg.mem_latency, 300);
    }
}

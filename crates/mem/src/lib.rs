//! Memory-hierarchy timing model for the Osprey full-system simulator.
//!
//! Implements the paper's evaluation configuration (§5.1): split 16 KiB L1
//! instruction (2-way) and data (4-way, 2-cycle) caches, a unified L2
//! (1 MiB, 8-way, 8-cycle by default), 64-byte lines, LRU replacement,
//! write-back with write-allocate, and a flat 300-cycle memory behind L2.
//!
//! Two features exist specifically for the acceleration scheme:
//!
//! * every line carries an **owner tag** ([`osprey_isa::Privilege`]) so
//!   that application and OS misses can be separated, and
//! * [`Cache::pollute`] implements the paper's §4.5 cache-pollution model —
//!   when an OS service is *predicted* rather than simulated, its predicted
//!   miss count is converted into evictions of application lines, selected
//!   from uniformly random sets preferring invalid, then least-recently
//!   used lines.
//!
//! # Examples
//!
//! ```
//! use osprey_isa::Privilege;
//! use osprey_mem::{Hierarchy, HierarchyConfig};
//!
//! let mut mem = Hierarchy::new(HierarchyConfig::pentium4(1024 * 1024));
//! let lat_miss = mem.data_access(0x1000, false, Privilege::User);
//! let lat_hit = mem.data_access(0x1000, false, Privilege::User);
//! assert!(lat_miss > lat_hit);
//! ```

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod stats;

pub use cache::{AccessOutcome, Cache, RunOutcome};
pub use config::{CacheConfig, HierarchyConfig};
pub use hierarchy::Hierarchy;
pub use stats::{CacheStats, HierarchySnapshot};

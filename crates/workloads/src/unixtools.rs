//! The Unix-tool benchmarks: `du -h /usr` and
//! `find /usr -type f -exec od {} \;` over the synthetic filesystem.

use osprey_isa::{BlockSpec, InstrMix, MemPattern};
use osprey_os::ServiceRequest;

use crate::fs::FsTree;
use crate::{ScriptedWorkload, WorkItem, Workload};

const DU_CODE: u64 = 0x0050_0000;
const DU_DATA: u64 = 0x1100_0000;
const FIND_CODE: u64 = 0x0060_0000;
const FIND_DATA: u64 = 0x1200_0000;

/// Path id of the `od` binary image for `sys_execve`.
const OD_BINARY: u64 = 1;
/// Synthetic stdout file id used by `od`'s output writes.
const STDOUT_FILE: u64 = 63;

/// Default directory count for `du`'s tree walk.
pub const DU_DIRS: usize = 480;
/// Default directory count for `find-od`'s walk (each file also forks
/// `od`, so fewer directories keep the default run laptop-sized).
pub const FIND_DIRS: usize = 40;

/// `du` aggregation block for directory `i`; the size-accounting tables
/// grow as the walk proceeds, so the window slides through a 1 MiB arena.
fn du_compute(i: usize, instrs: u64) -> BlockSpec {
    let slide = (i as u64 * 512) % (1024 * 1024);
    BlockSpec::new(DU_CODE, instrs)
        .with_mix(InstrMix::balanced())
        .with_code_footprint(3 * 1024)
        .with_mem(MemPattern::random(DU_DATA + slide, 48 * 1024))
        .with_branch_predictability(0.9)
}

/// od's octal formatting for file-chunk `i`: a tight integer loop whose
/// output buffer slides through a 1 MiB arena (fresh buffers per chunk).
fn od_compute(i: usize, instrs: u64) -> BlockSpec {
    let slide = (i as u64 * 1024) % (1024 * 1024);
    BlockSpec::new(FIND_CODE + 0x8000, instrs)
        .with_mix(InstrMix::compute_int())
        .with_code_footprint(2 * 1024)
        .with_mem(MemPattern::sequential(FIND_DATA + slide, 32 * 1024, 8))
        .with_branch_predictability(0.95)
}

/// `du -h /usr`: walks every directory, `lstat`ing every entry.
///
/// Metadata-dominated: thousands of `sys_lstat64` calls whose dentry
/// hit/miss paths interleave, plus `sys_getdents64`/`sys_open`/`sys_close`
/// per directory.
///
/// # Examples
///
/// ```
/// use osprey_workloads::unixtools::DuWorkload;
/// use osprey_workloads::Workload;
///
/// let mut wl = DuWorkload::new(1, 0.1);
/// assert_eq!(wl.name(), "du");
/// assert!(wl.next_item().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct DuWorkload {
    inner: ScriptedWorkload,
}

impl DuWorkload {
    /// Builds the workload at the given scale (1.0 = 480 directories).
    pub fn new(seed: u64, scale: f64) -> Self {
        let dirs = ((DU_DIRS as f64 * scale).ceil() as usize).max(4);
        let tree = FsTree::generate(seed, dirs, 24);
        let warm_dirs = (dirs / 20).clamp(1, 8);
        let mut boundary = 0;
        let mut items = Vec::new();
        for (i, dir) in tree.dirs.iter().enumerate() {
            if i == warm_dirs {
                boundary = items.len();
            }
            items.push(WorkItem::Call(ServiceRequest::open(0x10_0000 + dir.dir_id)));
            // Large directories need several getdents batches.
            let n = dir.files.len() as u64;
            let mut left = n;
            while left > 0 {
                let batch = left.min(16);
                items.push(WorkItem::Call(ServiceRequest::getdents(dir.dir_id, batch)));
                left -= batch;
            }
            for f in &dir.files {
                items.push(WorkItem::Call(ServiceRequest::lstat(f.path_id)));
            }
            items.push(WorkItem::Call(ServiceRequest::close(dir.dir_id)));
            // Aggregate sizes, format human-readable output.
            items.push(WorkItem::Compute(du_compute(i, 1_500 + 200 * n)));
            if i % 40 == 13 {
                items.push(WorkItem::Call(ServiceRequest::page_fault(
                    DU_DATA + i as u64 * 4096,
                )));
            }
            if i % 25 == 7 {
                items.push(WorkItem::Call(ServiceRequest::brk(32 * 1024)));
            }
        }
        items.push(WorkItem::Call(ServiceRequest::write(STDOUT_FILE, 0, 4096)));
        Self {
            inner: ScriptedWorkload::new("du", items).with_warmup(boundary),
        }
    }
}

impl Workload for DuWorkload {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn next_item(&mut self) -> Option<WorkItem> {
        self.inner.next_item()
    }

    fn warmup_items(&self) -> usize {
        self.inner.warmup_items()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn len_hint(&self) -> usize {
        self.inner.len_hint()
    }
}

/// `find /usr -type f -exec od {} \;`: walks directories and runs `od`
/// on every file found.
///
/// Dominated by `sys_execve` (one per file — warm after the first) plus
/// `od`'s own open/read/format/write loop over each file's contents.
#[derive(Debug, Clone)]
pub struct FindOdWorkload {
    inner: ScriptedWorkload,
}

impl FindOdWorkload {
    /// Builds the workload at the given scale (1.0 = 40 directories).
    pub fn new(seed: u64, scale: f64) -> Self {
        let dirs = ((FIND_DIRS as f64 * scale).ceil() as usize).max(2);
        let tree = FsTree::generate(seed ^ 0xf1d0, dirs, 8);
        let warm_dirs = (dirs / 20).clamp(1, 4);
        let mut boundary = 0;
        let mut items = Vec::new();
        for (i, dir) in tree.dirs.iter().enumerate() {
            if i == warm_dirs {
                boundary = items.len();
            }
            items.push(WorkItem::Call(ServiceRequest::open(0x20_0000 + dir.dir_id)));
            items.push(WorkItem::Call(ServiceRequest::getdents(
                dir.dir_id,
                dir.files.len() as u64,
            )));
            for f in &dir.files {
                items.push(WorkItem::Call(ServiceRequest::stat(f.path_id)));
                // find forks+execs od for the file.
                items.push(WorkItem::Call(ServiceRequest::execve(OD_BINARY)));
                // od: open the file, read it in 4 KiB chunks, format each
                // chunk to octal (~2 instructions/byte), write ~3x the
                // bytes to stdout.
                items.push(WorkItem::Call(ServiceRequest::open(f.path_id)));
                items.push(WorkItem::Call(ServiceRequest::fstat(f.path_id)));
                // od reads by file id: map the path to a small file id
                // namespace distinct from the web files.
                let file = 32 + (f.path_id % 24);
                let mut off = 0;
                let mut chunk_idx = 0;
                while off < f.size {
                    let chunk = 4096.min(f.size - off);
                    items.push(WorkItem::Call(ServiceRequest::read(file, off, chunk)));
                    items.push(WorkItem::Compute(od_compute(i * 64 + chunk_idx, 2 * chunk)));
                    chunk_idx += 1;
                    items.push(WorkItem::Call(ServiceRequest::write(
                        STDOUT_FILE,
                        off * 3,
                        chunk * 3,
                    )));
                    off += chunk;
                }
                items.push(WorkItem::Call(ServiceRequest::close(f.path_id)));
            }
            items.push(WorkItem::Call(ServiceRequest::close(dir.dir_id)));
        }
        Self {
            inner: ScriptedWorkload::new("find-od", items).with_warmup(boundary),
        }
    }
}

impl Workload for FindOdWorkload {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn next_item(&mut self) -> Option<WorkItem> {
        self.inner.next_item()
    }

    fn warmup_items(&self) -> usize {
        self.inner.warmup_items()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn len_hint(&self) -> usize {
        self.inner.len_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osprey_isa::ServiceId;

    fn service_counts(mut wl: impl Workload) -> std::collections::HashMap<ServiceId, u64> {
        let mut counts = std::collections::HashMap::new();
        while let Some(item) = wl.next_item() {
            if let WorkItem::Call(c) = item {
                *counts.entry(c.id).or_insert(0) += 1;
            }
        }
        counts
    }

    #[test]
    fn du_is_lstat_dominated() {
        let counts = service_counts(DuWorkload::new(1, 0.5));
        let lstat = counts[&ServiceId::SysLstat64];
        let total: u64 = counts.values().sum();
        assert!(
            lstat * 2 > total,
            "lstat should dominate du: {lstat}/{total}"
        );
    }

    #[test]
    fn du_batches_getdents_for_large_dirs() {
        let counts = service_counts(DuWorkload::new(2, 0.25));
        assert!(counts[&ServiceId::SysGetdents64] >= counts[&ServiceId::SysOpen] - 2);
    }

    #[test]
    fn find_od_execs_once_per_file() {
        let mut wl = FindOdWorkload::new(3, 1.0);
        let mut execs = 0;
        let mut stats = 0;
        while let Some(item) = wl.next_item() {
            if let WorkItem::Call(c) = item {
                match c.id {
                    ServiceId::SysExecve => execs += 1,
                    ServiceId::SysStat64 => stats += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(execs, stats, "one od exec per stat'ed file");
        assert!(execs > 20);
    }

    #[test]
    fn find_od_reads_cover_file_bytes() {
        let tree = FsTree::generate(4 ^ 0xf1d0, 4, 8);
        let expected: u64 = tree.total_bytes();
        let mut wl = FindOdWorkload::new(4, 0.1);
        let mut read_bytes = 0;
        while let Some(item) = wl.next_item() {
            if let WorkItem::Call(c) = item {
                if c.id == ServiceId::SysRead {
                    read_bytes += c.size;
                }
            }
        }
        // The scaled workload regenerates its own tree; just sanity-check
        // magnitude against an equally sized tree.
        assert!(read_bytes > 0);
        let _ = expected;
    }

    #[test]
    fn workloads_terminate() {
        for scale in [0.05, 0.2] {
            let mut wl = DuWorkload::new(5, scale);
            let mut n = 0u64;
            while wl.next_item().is_some() {
                n += 1;
                assert!(n < 1_000_000);
            }
            assert!(n > 10);
        }
    }
}

//! SPEC2000-like compute kernels (gzip, vpr, art, swim).
//!
//! These stand in for the paper's application-dominated reference points:
//! long stretches of user-mode computation with only occasional system
//! calls (heap growth, timing). For them, application-only and
//! full-system simulation agree closely — the paper's Fig. 1/2 baseline
//! observation.

use osprey_isa::{BlockSpec, InstrMix, MemPattern};
use osprey_os::ServiceRequest;

use crate::{ScriptedWorkload, WorkItem, Workload};

const APP_CODE: u64 = 0x0080_0000;
const APP_DATA: u64 = 0x2000_0000;

/// Default user-mode instructions per SPEC-like run.
pub const DEFAULT_INSTRUCTIONS: u64 = 24_000_000;

/// Instructions per compute block (system calls can only occur between
/// blocks, as in a real program's syscall-free inner loops).
const BLOCK_INSTRS: u64 = 100_000;

/// A SPEC2000-like kernel.
///
/// # Examples
///
/// ```
/// use osprey_workloads::spec::SpecWorkload;
/// use osprey_workloads::Workload;
///
/// let mut wl = SpecWorkload::gzip(1, 0.01);
/// assert_eq!(wl.name(), "gzip");
/// assert!(wl.next_item().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct SpecWorkload {
    inner: ScriptedWorkload,
}

struct KernelShape {
    name: &'static str,
    mix: InstrMix,
    ws_bytes: u64,
    sequential: bool,
    stride: u64,
    branch_predictability: f64,
}

impl SpecWorkload {
    fn build(shape: KernelShape, scale: f64, data_off: u64) -> Self {
        let total = ((DEFAULT_INSTRUCTIONS as f64 * scale) as u64).max(BLOCK_INSTRS);
        let blocks = total / BLOCK_INSTRS;
        let mem = if shape.sequential {
            MemPattern::sequential(APP_DATA + data_off, shape.ws_bytes, shape.stride)
        } else {
            MemPattern::random(APP_DATA + data_off, shape.ws_bytes)
        };
        let block = BlockSpec::new(APP_CODE + data_off / 0x100, BLOCK_INSTRS)
            .with_mix(shape.mix)
            .with_code_footprint(8 * 1024)
            .with_mem(mem)
            .with_branch_predictability(shape.branch_predictability);
        let mut items = Vec::with_capacity(blocks as usize + 16);
        for i in 0..blocks {
            items.push(WorkItem::Compute(block));
            // Rare system calls, as real SPEC codes make.
            if i % 40 == 17 {
                items.push(WorkItem::Call(ServiceRequest::brk(192 * 1024)));
            }
            if i % 60 == 31 {
                items.push(WorkItem::Call(ServiceRequest::gettimeofday()));
            }
        }
        Self {
            inner: ScriptedWorkload::new(shape.name, items),
        }
    }

    /// gzip-like: integer compression over a cache-friendly window.
    pub fn gzip(seed: u64, scale: f64) -> Self {
        let _ = seed;
        Self::build(
            KernelShape {
                name: "gzip",
                mix: InstrMix::compute_int(),
                ws_bytes: 256 * 1024,
                sequential: true,
                stride: 16,
                branch_predictability: 0.9,
            },
            scale,
            0,
        )
    }

    /// vpr-like: place-and-route with pointer-heavy random access over a
    /// multi-megabyte netlist.
    pub fn vpr(seed: u64, scale: f64) -> Self {
        let _ = seed;
        Self::build(
            KernelShape {
                name: "vpr",
                mix: InstrMix::compute_int(),
                ws_bytes: 2 * 1024 * 1024,
                sequential: false,
                stride: 0,
                branch_predictability: 0.8,
            },
            scale,
            0x100_0000,
        )
    }

    /// art-like: neural-network floating point over a moderate array set.
    pub fn art(seed: u64, scale: f64) -> Self {
        let _ = seed;
        Self::build(
            KernelShape {
                name: "art",
                mix: InstrMix::compute_fp(),
                ws_bytes: 3 * 1024 * 1024,
                sequential: true,
                stride: 64,
                branch_predictability: 0.95,
            },
            scale,
            0x200_0000,
        )
    }

    /// swim-like: streaming stencil over arrays far larger than any L2.
    pub fn swim(seed: u64, scale: f64) -> Self {
        let _ = seed;
        Self::build(
            KernelShape {
                name: "swim",
                mix: InstrMix::compute_fp(),
                ws_bytes: 8 * 1024 * 1024,
                sequential: true,
                stride: 8,
                branch_predictability: 0.97,
            },
            scale,
            0x600_0000,
        )
    }
}

impl Workload for SpecWorkload {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn next_item(&mut self) -> Option<WorkItem> {
        self.inner.next_item()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn len_hint(&self) -> usize {
        self.inner.len_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tally(mut wl: SpecWorkload) -> (u64, u64) {
        let mut compute_instrs = 0;
        let mut calls = 0;
        while let Some(item) = wl.next_item() {
            match item {
                WorkItem::Compute(b) => compute_instrs += b.instr_count,
                WorkItem::Call(_) => calls += 1,
            }
        }
        (compute_instrs, calls)
    }

    #[test]
    fn compute_dominates_all_kernels() {
        for wl in [
            SpecWorkload::gzip(1, 0.05),
            SpecWorkload::vpr(1, 0.05),
            SpecWorkload::art(1, 0.05),
            SpecWorkload::swim(1, 0.05),
        ] {
            let (instrs, calls) = tally(wl);
            assert!(instrs >= 1_000_000);
            // A call at most every couple hundred thousand instructions.
            assert!(calls * 100_000 < instrs);
        }
    }

    #[test]
    fn scale_controls_length() {
        let (small, _) = tally(SpecWorkload::gzip(1, 0.05));
        let (large, _) = tally(SpecWorkload::gzip(1, 0.2));
        assert!(large > small * 3);
    }

    #[test]
    fn kernels_use_distinct_data_regions() {
        let mut regions = std::collections::HashSet::new();
        for wl in [
            SpecWorkload::gzip(1, 0.01),
            SpecWorkload::vpr(1, 0.01),
            SpecWorkload::art(1, 0.01),
            SpecWorkload::swim(1, 0.01),
        ] {
            let mut wl = wl;
            while let Some(item) = wl.next_item() {
                if let WorkItem::Compute(b) = item {
                    regions.insert(b.mem.base);
                    break;
                }
            }
        }
        assert_eq!(regions.len(), 4);
    }
}

//! The web-server benchmark: Apache driven by the paper's two modified
//! `ab` client workloads.
//!
//! Eight text files of increasing size are served. Each HTTP request
//! turns into the Apache-side system-call sequence (accept/poll/recv,
//! stat/open/fstat, a read–writev loop over 16 KiB chunks, close) with
//! small user-mode parse/log computations in between.
//!
//! * **ab-rand** picks the requested file uniformly at random — the
//!   paper's "worst case in terms of request predictability".
//! * **ab-seq** sends an equal share of requests to each file, eight at a
//!   time, in ascending size order — the paper's deliberate stress test
//!   for re-learning, because new file sizes (and hence new `sys_read`
//!   behavior points) only appear after the initial learning window has
//!   closed.

use osprey_isa::{BlockSpec, InstrMix, MemPattern};
use osprey_os::ServiceRequest;
use osprey_stats::rng::SmallRng;

use crate::{ScriptedWorkload, WorkItem, Workload};

/// Sizes of the eight served files in 4 KiB pages.
///
/// The paper serves files of 104 KiB – 1.4 MiB; Osprey scales them down
/// 4× (26 KiB – 350 KiB) so the set still exceeds the synthetic kernel's
/// page cache (keeping both `sys_read` paths alive) while keeping default
/// simulations laptop-sized. The ratio between smallest and largest file
/// (~13.5×) matches the paper.
pub const FILE_PAGES: [u64; 8] = [7, 13, 20, 26, 38, 50, 69, 88];

/// Read/writev chunk size, mirroring Apache's buffered sendfile loop.
pub const CHUNK: u64 = 16 * 1024;

const APP_CODE: u64 = 0x0040_0000;
const APP_DATA: u64 = 0x1000_0000;

/// Default number of simulated HTTP requests for ab-rand (the paper
/// simulates 300 after warmup).
pub const DEFAULT_RAND_REQUESTS: usize = 300;

/// Default number of simulated HTTP requests for ab-seq (the paper uses
/// 700; Osprey's default is scaled to keep runtimes laptop-sized while
/// preserving ≥ 60 consecutive requests per file).
pub const DEFAULT_SEQ_REQUESTS: usize = 560;

/// The Apache + `ab` workload.
///
/// # Examples
///
/// ```
/// use osprey_workloads::web::AbWorkload;
/// use osprey_workloads::Workload;
///
/// let mut wl = AbWorkload::random(1, 0.1);
/// assert_eq!(wl.name(), "ab-rand");
/// assert!(wl.next_item().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct AbWorkload {
    inner: ScriptedWorkload,
}

impl AbWorkload {
    /// Builds the ab-rand variant at the given scale (1.0 = 300 measured
    /// requests, preceded by a skipped warm-up region as in the paper's
    /// §5.2 protocol).
    pub fn random(seed: u64, scale: f64) -> Self {
        let n = ((DEFAULT_RAND_REQUESTS as f64 * scale).ceil() as usize).max(8);
        let warm = (n / 8).clamp(4, 32);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xab5a_ab5a);
        let order: Vec<usize> = (0..warm + n)
            .map(|_| rng.random_range(0..FILE_PAGES.len()))
            .collect();
        let items = build_requests(&order);
        let boundary = build_requests(&order[..warm]).len();
        Self {
            inner: ScriptedWorkload::new("ab-rand", items).with_warmup(boundary),
        }
    }

    /// Builds the ab-seq variant at the given scale (1.0 = 560 measured
    /// requests).
    ///
    /// Requests sweep the files in ascending size order, an equal share
    /// per file. The warm-up region consists of extra requests to the
    /// *smallest* file only, so the larger files' behavior points still
    /// appear for the first time inside the measured region — preserving
    /// the workload's role as the re-learning stress test.
    pub fn sequential(seed: u64, scale: f64) -> Self {
        let _ = seed; // the sequential schedule is fully deterministic
        let n = ((DEFAULT_SEQ_REQUESTS as f64 * scale).ceil() as usize).max(FILE_PAGES.len());
        let per_file = (n / FILE_PAGES.len()).max(1);
        let warm = (per_file / 2).clamp(2, 40);
        let order: Vec<usize> = std::iter::repeat_n(0, warm)
            .chain((0..FILE_PAGES.len()).flat_map(|f| std::iter::repeat_n(f, per_file)))
            .collect();
        let items = build_requests(&order);
        let boundary = build_requests(&order[..warm]).len();
        Self {
            inner: ScriptedWorkload::new("ab-seq", items).with_warmup(boundary),
        }
    }

    /// Number of work items remaining.
    pub fn remaining(&self) -> usize {
        self.inner.remaining()
    }
}

impl Workload for AbWorkload {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn next_item(&mut self) -> Option<WorkItem> {
        self.inner.next_item()
    }

    fn warmup_items(&self) -> usize {
        self.inner.warmup_items()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn len_hint(&self) -> usize {
        self.inner.len_hint()
    }
}

/// Application compute block for request `i`.
///
/// Each request works over a window that slides through a 2 MiB arena —
/// real servers allocate fresh request/response buffers, so even the
/// application-only simulation keeps a steady trickle of compulsory
/// cache misses (visible in the paper's Fig. 1 baselines).
fn app_block(i: usize, instrs: u64, ws: u64) -> BlockSpec {
    let slide = (i as u64 * 2048) % (2 * 1024 * 1024);
    BlockSpec::new(APP_CODE, instrs)
        .with_mix(InstrMix::balanced())
        .with_code_footprint(6 * 1024)
        .with_mem(MemPattern::random(APP_DATA + slide, ws))
        .with_branch_predictability(0.92)
}

/// Expands a request schedule (file index per request) into work items.
fn build_requests(order: &[usize]) -> Vec<WorkItem> {
    let mut items = Vec::with_capacity(order.len() * 40);
    for (i, &f) in order.iter().enumerate() {
        let file = f as u64;
        let size = FILE_PAGES[f] * 4096;
        let socket = (i % 8) as u64;
        items.push(WorkItem::Call(ServiceRequest::gettimeofday()));
        if i.is_multiple_of(8) {
            // New keep-alive connection batch.
            items.push(WorkItem::Call(ServiceRequest::socketcall(socket, 0, 0)));
        }
        items.push(WorkItem::Call(ServiceRequest::poll(8)));
        items.push(WorkItem::Call(ServiceRequest::socketcall(socket, 1, 512)));
        // Parse the HTTP request.
        items.push(WorkItem::Compute(app_block(i, 6_000, 64 * 1024)));
        items.push(WorkItem::Call(ServiceRequest::stat(100 + file)));
        items.push(WorkItem::Call(ServiceRequest::open(100 + file)));
        items.push(WorkItem::Call(ServiceRequest::fstat(file)));
        items.push(WorkItem::Call(ServiceRequest::fcntl(file, 2)));
        let mut off = 0;
        while off < size {
            let chunk = CHUNK.min(size - off);
            items.push(WorkItem::Call(ServiceRequest::read(file, off, chunk)));
            items.push(WorkItem::Compute(app_block(i, 2_500, 64 * 1024)));
            items.push(WorkItem::Call(ServiceRequest::writev(socket, chunk)));
            off += chunk;
        }
        items.push(WorkItem::Call(ServiceRequest::close(file)));
        items.push(WorkItem::Call(ServiceRequest::gettimeofday()));
        // Access log.
        items.push(WorkItem::Compute(app_block(i, 4_000, 64 * 1024)));
        if i % 16 == 7 {
            items.push(WorkItem::Call(ServiceRequest::ipc(1, 0)));
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use osprey_isa::ServiceId;

    fn calls(wl: &mut AbWorkload) -> Vec<ServiceRequest> {
        std::iter::from_fn(|| wl.next_item())
            .filter_map(|i| match i {
                WorkItem::Call(c) => Some(c),
                WorkItem::Compute(_) => None,
            })
            .collect()
    }

    #[test]
    fn rand_covers_many_files() {
        let mut wl = AbWorkload::random(3, 0.5);
        let reads: std::collections::HashSet<u64> = calls(&mut wl)
            .into_iter()
            .filter(|c| c.id == ServiceId::SysRead)
            .map(|c| c.a)
            .collect();
        assert!(reads.len() >= 6, "random mode should touch most files");
    }

    #[test]
    fn seq_visits_files_in_ascending_size_order() {
        let mut wl = AbWorkload::sequential(1, 1.0);
        let reads: Vec<u64> = calls(&mut wl)
            .into_iter()
            .filter(|c| c.id == ServiceId::SysRead)
            .map(|c| c.a)
            .collect();
        let mut sorted = reads.clone();
        sorted.sort_unstable();
        assert_eq!(reads, sorted, "ab-seq file order must be non-decreasing");
        assert_eq!(*reads.last().unwrap(), 7);
    }

    #[test]
    fn reads_are_chunked_and_cover_file_size() {
        let mut wl = AbWorkload::sequential(1, 0.05);
        let reads: Vec<ServiceRequest> = calls(&mut wl)
            .into_iter()
            .filter(|c| c.id == ServiceId::SysRead && c.a == 0)
            .collect();
        let per_request: u64 = FILE_PAGES[0] * 4096;
        let total: u64 = reads.iter().map(|c| c.size).sum();
        assert_eq!(total % per_request, 0, "whole files are read");
        assert!(reads.iter().all(|c| c.size <= CHUNK));
    }

    #[test]
    fn uses_the_papers_service_vocabulary() {
        let mut wl = AbWorkload::random(5, 0.3);
        let ids: std::collections::HashSet<ServiceId> =
            calls(&mut wl).into_iter().map(|c| c.id).collect();
        for want in [
            ServiceId::SysRead,
            ServiceId::SysWritev,
            ServiceId::SysOpen,
            ServiceId::SysClose,
            ServiceId::SysPoll,
            ServiceId::SysSocketcall,
            ServiceId::SysStat64,
            ServiceId::SysFstat64,
            ServiceId::SysFcntl64,
            ServiceId::SysGettimeofday,
            ServiceId::SysIpc,
        ] {
            assert!(ids.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn file_set_exceeds_default_page_cache() {
        let total_pages: u64 = FILE_PAGES.iter().sum();
        let cache = osprey_os::KernelConfig::default().page_cache_pages as u64;
        assert!(
            total_pages > cache,
            "file set ({total_pages} pages) must not fit the page cache ({cache})"
        );
    }
}

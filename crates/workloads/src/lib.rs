//! Synthetic benchmarks for the Osprey full-system simulator.
//!
//! Mirrors the paper's benchmark suite (§5.2):
//!
//! * **Web server** — [`web::AbWorkload`] models Apache driven by the
//!   modified `ab` client: `ab-rand` (random requests over eight files of
//!   increasing size) and `ab-seq` (requests sweep the files in sorted
//!   size order — the adversarial input for initial learning, designed to
//!   stress re-learning).
//! * **Unix tools** — [`unixtools::DuWorkload`] (`du -h /usr`) and
//!   [`unixtools::FindOdWorkload`] (`find /usr -type f -exec od {} \;`)
//!   over a deterministic synthetic filesystem tree ([`fs::FsTree`]).
//! * **Network** — [`net::IperfWorkload`], a socket-send loop.
//! * **SPEC-like compute** — [`spec::SpecWorkload`] kernels standing in
//!   for gzip, vpr, art, and swim: almost pure user-mode computation with
//!   rare system calls.
//!
//! A workload is an iterator of [`WorkItem`]s: user-mode compute blocks
//! interleaved with system-call requests. The full-system simulator
//! executes compute blocks in user mode and expands calls through the
//! synthetic kernel.
//!
//! # Examples
//!
//! ```
//! use osprey_workloads::{Benchmark, WorkItem, Workload};
//!
//! let mut wl = Benchmark::AbRand.instantiate_scaled(42, 0.05);
//! let items: Vec<WorkItem> = std::iter::from_fn(|| wl.next_item()).collect();
//! assert!(items.iter().any(|i| matches!(i, WorkItem::Call(_))));
//! assert!(items.iter().any(|i| matches!(i, WorkItem::Compute(_))));
//! ```

pub mod fs;
pub mod net;
pub mod spec;
pub mod unixtools;
pub mod web;

use osprey_isa::BlockSpec;
use osprey_os::ServiceRequest;

/// One unit of application activity.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WorkItem {
    /// User-mode computation.
    Compute(BlockSpec),
    /// A system-call request (expanded by the kernel into an OS service
    /// interval).
    Call(ServiceRequest),
}

/// A source of application activity.
///
/// Implementations are deterministic given their construction seed.
pub trait Workload {
    /// Benchmark name as it appears in the paper's figures.
    fn name(&self) -> &'static str;

    /// Produces the next item, or `None` when the benchmark finishes.
    fn next_item(&mut self) -> Option<WorkItem>;

    /// Number of leading items that are *warm-up*: executed in full
    /// detail but excluded from measurement, mirroring the paper's §5.2
    /// protocol of skipping an initial region (300 HTTP requests, 4096
    /// socket writes, 300 M instructions) before simulating.
    fn warmup_items(&self) -> usize {
        0
    }

    /// Rewinds the workload to its initial state so the exact same item
    /// sequence replays, without paying instantiation again (the
    /// expensive part of e.g. the Unix-tool workloads is generating the
    /// synthetic filesystem tree, not iterating it). Lets the simulator
    /// verify a program by draining the workload and then execute the
    /// very same instance.
    fn reset(&mut self);

    /// Items remaining, or 0 when unknown — a capacity hint only, never
    /// a promise about termination.
    fn len_hint(&self) -> usize {
        0
    }
}

/// The paper's benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Benchmark {
    /// Apache + `ab`, random page requests.
    AbRand,
    /// Apache + `ab`, sequential sorted page requests.
    AbSeq,
    /// `du -h /usr`.
    Du,
    /// `find /usr -type f -exec od {} \;`.
    FindOd,
    /// `iperf` TCP-bandwidth client.
    Iperf,
    /// SPEC2000 gzip-like integer compression kernel.
    Gzip,
    /// SPEC2000 vpr-like place-and-route kernel.
    Vpr,
    /// SPEC2000 art-like neural-network kernel.
    Art,
    /// SPEC2000 swim-like stencil kernel.
    Swim,
}

impl Benchmark {
    /// All benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::AbRand,
        Benchmark::AbSeq,
        Benchmark::Du,
        Benchmark::FindOd,
        Benchmark::Iperf,
        Benchmark::Gzip,
        Benchmark::Vpr,
        Benchmark::Art,
        Benchmark::Swim,
    ];

    /// The five OS-intensive benchmarks the acceleration study uses.
    pub const OS_INTENSIVE: [Benchmark; 5] = [
        Benchmark::AbRand,
        Benchmark::AbSeq,
        Benchmark::Du,
        Benchmark::FindOd,
        Benchmark::Iperf,
    ];

    /// Name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::AbRand => "ab-rand",
            Benchmark::AbSeq => "ab-seq",
            Benchmark::Du => "du",
            Benchmark::FindOd => "find-od",
            Benchmark::Iperf => "iperf",
            Benchmark::Gzip => "gzip",
            Benchmark::Vpr => "vpr",
            Benchmark::Art => "art",
            Benchmark::Swim => "swim",
        }
    }

    /// `true` for the OS-intensive set.
    pub fn is_os_intensive(self) -> bool {
        Benchmark::OS_INTENSIVE.contains(&self)
    }

    /// Creates a fresh instance of the benchmark with default scale.
    pub fn instantiate(self, seed: u64) -> Box<dyn Workload> {
        self.instantiate_scaled(seed, 1.0)
    }

    /// Creates an instance scaled by `scale` (1.0 = default length).
    ///
    /// Used by quick tests (small scale) and by benches that want longer
    /// runs.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    pub fn instantiate_scaled(self, seed: u64, scale: f64) -> Box<dyn Workload> {
        assert!(scale > 0.0, "scale must be positive");
        match self {
            Benchmark::AbRand => Box::new(web::AbWorkload::random(seed, scale)),
            Benchmark::AbSeq => Box::new(web::AbWorkload::sequential(seed, scale)),
            Benchmark::Du => Box::new(unixtools::DuWorkload::new(seed, scale)),
            Benchmark::FindOd => Box::new(unixtools::FindOdWorkload::new(seed, scale)),
            Benchmark::Iperf => Box::new(net::IperfWorkload::new(seed, scale)),
            Benchmark::Gzip => Box::new(spec::SpecWorkload::gzip(seed, scale)),
            Benchmark::Vpr => Box::new(spec::SpecWorkload::vpr(seed, scale)),
            Benchmark::Art => Box::new(spec::SpecWorkload::art(seed, scale)),
            Benchmark::Swim => Box::new(spec::SpecWorkload::swim(seed, scale)),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A workload backed by a pre-generated item list.
///
/// All concrete workloads pre-expand their item sequence at construction
/// (deterministically from the seed) and drain it through
/// [`Workload::next_item`].
#[derive(Debug, Clone)]
pub struct ScriptedWorkload {
    name: &'static str,
    items: Vec<WorkItem>,
    /// Cursor into `items`; iteration never consumes the script, so
    /// [`Workload::reset`] is a cursor rewind.
    pos: usize,
    warmup: usize,
}

impl ScriptedWorkload {
    /// Wraps a pre-built item sequence.
    pub fn new(name: &'static str, items: Vec<WorkItem>) -> Self {
        Self {
            name,
            items,
            pos: 0,
            warmup: 0,
        }
    }

    /// Marks the first `warmup` items as the warm-up region.
    ///
    /// # Panics
    ///
    /// Panics if `warmup` exceeds the item count.
    pub fn with_warmup(mut self, warmup: usize) -> Self {
        assert!(warmup <= self.items.len(), "warm-up longer than workload");
        self.warmup = warmup;
        self
    }

    /// Items remaining.
    pub fn remaining(&self) -> usize {
        self.items.len() - self.pos
    }
}

impl Workload for ScriptedWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    fn next_item(&mut self) -> Option<WorkItem> {
        let item = self.items.get(self.pos).copied();
        self.pos += usize::from(item.is_some());
        item
    }

    fn warmup_items(&self) -> usize {
        self.warmup
    }

    fn reset(&mut self) {
        self.pos = 0;
    }

    fn len_hint(&self) -> usize {
        self.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_unique_names() {
        let names: std::collections::HashSet<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), Benchmark::ALL.len());
    }

    #[test]
    fn os_intensive_is_a_subset() {
        for b in Benchmark::OS_INTENSIVE {
            assert!(Benchmark::ALL.contains(&b));
            assert!(b.is_os_intensive());
        }
        assert!(!Benchmark::Gzip.is_os_intensive());
    }

    #[test]
    fn every_benchmark_instantiates_and_produces_items() {
        for b in Benchmark::ALL {
            let mut wl = b.instantiate_scaled(1, 0.05);
            assert_eq!(wl.name(), b.name());
            let mut count = 0u64;
            while let Some(_item) = wl.next_item() {
                count += 1;
                assert!(count < 2_000_000, "workload must terminate");
            }
            assert!(count > 0, "{b} produced no items");
        }
    }

    #[test]
    fn reset_replays_the_identical_sequence() {
        for b in [Benchmark::AbRand, Benchmark::Du, Benchmark::Gzip] {
            let mut wl = b.instantiate_scaled(4, 0.05);
            let first: Vec<_> = std::iter::from_fn(|| wl.next_item()).collect();
            assert_eq!(wl.len_hint(), 0, "{b}: drained");
            wl.reset();
            assert_eq!(wl.len_hint(), first.len(), "{b}: rewound");
            let second: Vec<_> = std::iter::from_fn(|| wl.next_item()).collect();
            assert_eq!(first, second, "{b}: replay must be identical");
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for b in [Benchmark::AbRand, Benchmark::Du, Benchmark::Iperf] {
            let mut a = b.instantiate_scaled(9, 0.05);
            let mut c = b.instantiate_scaled(9, 0.05);
            loop {
                let x = a.next_item();
                let y = c.next_item();
                assert_eq!(x, y);
                if x.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn os_intensive_workloads_are_call_heavy() {
        for b in Benchmark::OS_INTENSIVE {
            let mut wl = b.instantiate_scaled(3, 0.05);
            let mut calls = 0u64;
            let mut computes = 0u64;
            while let Some(item) = wl.next_item() {
                match item {
                    WorkItem::Call(_) => calls += 1,
                    WorkItem::Compute(_) => computes += 1,
                }
            }
            assert!(
                calls > computes / 4,
                "{b}: calls={calls} computes={computes}"
            );
        }
    }

    #[test]
    fn scripted_workload_drains_in_order() {
        let items = vec![
            WorkItem::Call(ServiceRequest::gettimeofday()),
            WorkItem::Call(ServiceRequest::close(1)),
        ];
        let mut wl = ScriptedWorkload::new("test", items.clone());
        assert_eq!(wl.remaining(), 2);
        assert_eq!(wl.next_item(), Some(items[0]));
        assert_eq!(wl.next_item(), Some(items[1]));
        assert_eq!(wl.next_item(), None);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        Benchmark::Du.instantiate_scaled(1, 0.0);
    }
}

//! The network benchmark: an `iperf`-style TCP bandwidth client.
//!
//! A tight loop of socket sends with a small user-mode bookkeeping block
//! between writes and periodic timing reads — the most repetitive of the
//! paper's workloads, and correspondingly the one with the highest
//! prediction coverage and estimated speedup (15.6× in the paper's
//! Table 2).

use osprey_isa::{BlockSpec, InstrMix, MemPattern};
use osprey_os::ServiceRequest;

use crate::{ScriptedWorkload, WorkItem, Workload};

const APP_CODE: u64 = 0x0070_0000;
const APP_DATA: u64 = 0x1300_0000;

/// Default number of socket writes (the paper simulates 4096 after
/// skipping the first 4096).
pub const DEFAULT_WRITES: usize = 4096;

/// Bytes per socket send.
pub const SEND_BYTES: u64 = 8 * 1024;

/// The iperf client workload.
///
/// # Examples
///
/// ```
/// use osprey_workloads::net::IperfWorkload;
/// use osprey_workloads::Workload;
///
/// let mut wl = IperfWorkload::new(1, 0.01);
/// assert_eq!(wl.name(), "iperf");
/// assert!(wl.next_item().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct IperfWorkload {
    inner: ScriptedWorkload,
}

impl IperfWorkload {
    /// Builds the workload at the given scale (1.0 = 4096 measured
    /// sends). A warm-up region long enough to wrap the kernel's packet
    /// ring precedes measurement, mirroring the paper's skipping of the
    /// first 4096 socket writes.
    pub fn new(seed: u64, scale: f64) -> Self {
        let _ = seed; // the send loop is fully deterministic
        let measured = ((DEFAULT_WRITES as f64 * scale).ceil() as usize).max(16);
        let warm_writes = 160;
        let writes = warm_writes + measured;
        let mut items = Vec::with_capacity(writes * 3);
        items.push(WorkItem::Call(ServiceRequest::socketcall(9, 0, 0)));
        let mut boundary = 0;
        for i in 0..writes {
            if i == warm_writes {
                boundary = items.len();
            }
            // Fill the user payload buffer; streaming senders walk
            // through their source data, so the window slides through a
            // 512 KiB arena.
            let slide = (i as u64 * 256) % (512 * 1024);
            items.push(WorkItem::Compute(
                BlockSpec::new(APP_CODE, 800)
                    .with_mix(InstrMix::balanced())
                    .with_code_footprint(1024)
                    .with_mem(MemPattern::sequential(APP_DATA + slide, 32 * 1024, 8))
                    .with_branch_predictability(0.97),
            ));
            items.push(WorkItem::Call(ServiceRequest::socketcall(9, 2, SEND_BYTES)));
            if i % 64 == 63 {
                items.push(WorkItem::Call(ServiceRequest::gettimeofday()));
                items.push(WorkItem::Call(ServiceRequest::poll(1)));
            }
        }
        items.push(WorkItem::Call(ServiceRequest::close(9)));
        Self {
            inner: ScriptedWorkload::new("iperf", items).with_warmup(boundary),
        }
    }
}

impl Workload for IperfWorkload {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn next_item(&mut self) -> Option<WorkItem> {
        self.inner.next_item()
    }

    fn warmup_items(&self) -> usize {
        self.inner.warmup_items()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn len_hint(&self) -> usize {
        self.inner.len_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osprey_isa::ServiceId;

    #[test]
    fn sends_dominate_the_call_mix() {
        let mut wl = IperfWorkload::new(1, 0.25);
        let mut sends = 0u64;
        let mut others = 0u64;
        while let Some(item) = wl.next_item() {
            if let WorkItem::Call(c) = item {
                if c.id == ServiceId::SysSocketcall && c.b == 2 {
                    sends += 1;
                } else {
                    others += 1;
                }
            }
        }
        assert!(sends as f64 > others as f64 * 10.0, "{sends} vs {others}");
    }

    #[test]
    fn every_send_moves_the_same_payload() {
        let mut wl = IperfWorkload::new(2, 0.05);
        while let Some(item) = wl.next_item() {
            if let WorkItem::Call(c) = item {
                if c.id == ServiceId::SysSocketcall && c.b == 2 {
                    assert_eq!(c.size, SEND_BYTES);
                }
            }
        }
    }

    #[test]
    fn includes_periodic_timing_calls() {
        let mut wl = IperfWorkload::new(3, 0.05);
        let mut tods = 0;
        while let Some(item) = wl.next_item() {
            if let WorkItem::Call(c) = item {
                if c.id == ServiceId::SysGettimeofday {
                    tods += 1;
                }
            }
        }
        assert!(tods >= 3);
    }
}

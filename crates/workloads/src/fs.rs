//! Deterministic synthetic filesystem tree for the Unix-tool workloads.
//!
//! Stands in for the `/usr` subtree the paper's `du` and `find` commands
//! walk: a list of directories in depth-first walk order, each holding a
//! varying number of files with skewed sizes (most files small, a few
//! large), all derived from a seed.

use osprey_stats::rng::SmallRng;

/// One file in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FileEntry {
    /// Globally unique path identifier (dentry key).
    pub path_id: u64,
    /// File size in bytes.
    pub size: u64,
}

/// One directory, with its files, in walk order.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DirEntry {
    /// Globally unique directory identifier.
    pub dir_id: u64,
    /// Files directly inside this directory.
    pub files: Vec<FileEntry>,
}

/// A synthetic directory tree flattened into depth-first walk order.
///
/// # Examples
///
/// ```
/// use osprey_workloads::fs::FsTree;
///
/// let tree = FsTree::generate(7, 50, 16);
/// assert_eq!(tree.dirs.len(), 50);
/// assert!(tree.total_files() > 0);
/// // Same seed, same tree.
/// assert_eq!(tree, FsTree::generate(7, 50, 16));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FsTree {
    /// Directories in walk order.
    pub dirs: Vec<DirEntry>,
}

impl FsTree {
    /// Generates a tree of `num_dirs` directories with up to
    /// `max_files_per_dir` files each.
    ///
    /// File sizes are skewed: roughly 80 % of files are 1–16 KiB, the rest
    /// up to 128 KiB.
    ///
    /// # Panics
    ///
    /// Panics if `num_dirs` or `max_files_per_dir` is 0.
    pub fn generate(seed: u64, num_dirs: usize, max_files_per_dir: usize) -> Self {
        assert!(num_dirs > 0 && max_files_per_dir > 0, "degenerate tree");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5f73_7973_6673_5f21);
        let mut next_path_id = 1_000u64;
        let dirs = (0..num_dirs)
            .map(|d| {
                let n_files = rng.random_range(1..=max_files_per_dir);
                let files = (0..n_files)
                    .map(|_| {
                        let size = if rng.random::<f64>() < 0.8 {
                            rng.random_range(1024..16 * 1024)
                        } else {
                            rng.random_range(16 * 1024..128 * 1024)
                        };
                        let f = FileEntry {
                            path_id: next_path_id,
                            size,
                        };
                        next_path_id += 1;
                        f
                    })
                    .collect();
                DirEntry {
                    dir_id: d as u64 + 1,
                    files,
                }
            })
            .collect();
        Self { dirs }
    }

    /// Total number of files in the tree.
    pub fn total_files(&self) -> usize {
        self.dirs.iter().map(|d| d.files.len()).sum()
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.dirs
            .iter()
            .flat_map(|d| &d.files)
            .map(|f| f.size)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_ids_are_unique() {
        let tree = FsTree::generate(1, 100, 20);
        let mut ids: Vec<u64> = tree
            .dirs
            .iter()
            .flat_map(|d| d.files.iter().map(|f| f.path_id))
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn every_dir_has_at_least_one_file() {
        let tree = FsTree::generate(2, 64, 8);
        assert!(tree.dirs.iter().all(|d| !d.files.is_empty()));
    }

    #[test]
    fn sizes_are_in_declared_range() {
        let tree = FsTree::generate(3, 200, 12);
        for d in &tree.dirs {
            for f in &d.files {
                assert!((1024..128 * 1024).contains(&f.size), "size {}", f.size);
            }
        }
    }

    #[test]
    fn size_distribution_is_skewed_small() {
        let tree = FsTree::generate(4, 400, 10);
        let files: Vec<&FileEntry> = tree.dirs.iter().flat_map(|d| &d.files).collect();
        let small = files.iter().filter(|f| f.size < 16 * 1024).count();
        let frac = small as f64 / files.len() as f64;
        assert!(frac > 0.7, "small-file fraction {frac}");
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(FsTree::generate(1, 20, 8), FsTree::generate(2, 20, 8));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_empty_tree() {
        FsTree::generate(1, 0, 4);
    }
}

//! Batch descriptive statistics and normalization helpers used by the
//! figure/table regenerators.

/// Arithmetic mean of `values` (0 for an empty slice).
///
/// # Examples
///
/// ```
/// assert_eq!(osprey_stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(osprey_stats::mean(&[]), 0.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation of `values` (0 for fewer than 2 samples).
///
/// # Examples
///
/// ```
/// let sd = osprey_stats::std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert!((sd - 2.0).abs() < 1e-12);
/// ```
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Coefficient of variation: `std_dev / mean` (0 when the mean is 0).
///
/// The cluster-uniformity metric used in the paper's Fig. 6.
///
/// # Examples
///
/// ```
/// let cv = osprey_stats::coefficient_of_variation(&[90.0, 100.0, 110.0]);
/// assert!(cv > 0.0 && cv < 0.1);
/// ```
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    let m = mean(values);
    if m == 0.0 {
        0.0
    } else {
        std_dev(values) / m.abs()
    }
}

/// Geometric mean of `values` — the aggregation the paper uses for its
/// Table 2 speedup summary.
///
/// Returns 0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive (the geometric mean is
/// undefined there).
///
/// # Examples
///
/// ```
/// let g = osprey_stats::geometric_mean(&[2.0, 8.0]);
/// assert!((g - 4.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean requires strictly positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Absolute relative error `|predicted - reference| / |reference|` — the
/// paper's accuracy metric (§6.2).
///
/// Returns `f64::INFINITY` when the reference is 0 but the prediction is
/// not, and 0 when both are 0.
///
/// # Examples
///
/// ```
/// let e = osprey_stats::summary::abs_relative_error(103.2, 100.0);
/// assert!((e - 0.032).abs() < 1e-12);
/// ```
pub fn abs_relative_error(predicted: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((predicted - reference) / reference).abs()
    }
}

/// Normalizes each value to the corresponding reference
/// (`value[i] / reference[i]`), as in the paper's Fig. 1 and Fig. 8.
///
/// # Panics
///
/// Panics if the slices have different lengths or any reference is 0.
///
/// # Examples
///
/// ```
/// let n = osprey_stats::summary::normalize_to(&[50.0, 200.0], &[100.0, 100.0]);
/// assert_eq!(n, vec![0.5, 2.0]);
/// ```
pub fn normalize_to(values: &[f64], reference: &[f64]) -> Vec<f64> {
    assert_eq!(values.len(), reference.len(), "length mismatch");
    values
        .iter()
        .zip(reference)
        .map(|(v, r)| {
            assert!(*r != 0.0, "reference value must be non-zero");
            v / r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev_basic() {
        assert_eq!(mean(&[10.0]), 10.0);
        assert_eq!(std_dev(&[10.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&vals) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cv_scale_invariant() {
        let a = coefficient_of_variation(&[1.0, 2.0, 3.0]);
        let b = coefficient_of_variation(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn cv_zero_mean_is_zero() {
        assert_eq!(coefficient_of_variation(&[-1.0, 1.0]), 0.0);
    }

    #[test]
    fn geometric_mean_matches_paper_style_aggregation() {
        // Paper Table 2: speedups 2.8, 3.1, 7.1, 2.9, 15.6 -> gmean 4.9.
        let g = geometric_mean(&[2.8, 3.1, 7.1, 2.9, 15.6]);
        assert!((g - 4.9).abs() < 0.1, "gmean = {g}");
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn abs_relative_error_cases() {
        assert!((abs_relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(abs_relative_error(90.0, 100.0), 0.1);
        assert_eq!(abs_relative_error(0.0, 0.0), 0.0);
        assert_eq!(abs_relative_error(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn normalize_to_divides_elementwise() {
        let n = normalize_to(&[1.0, 4.0, 9.0], &[1.0, 2.0, 3.0]);
        assert_eq!(n, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn normalize_to_checks_lengths() {
        normalize_to(&[1.0], &[1.0, 2.0]);
    }
}

//! Student's t confidence bounds for the *Statistical* re-learning strategy.
//!
//! The paper (Eq. 4–8) collects a list of estimated probabilities of
//! occurrence (EPOs) for each outlier cluster and uses a one-sided
//! Student's t upper confidence bound to decide whether the cluster's true
//! occurrence probability might exceed `p_min`:
//!
//! ```text
//! B_y = p̄_y + t_(m-1, α) * S_(p_y) / sqrt(m)
//! ```
//!
//! Re-learning triggers when `B_y >= p_min` (the strategy cannot rule out
//! that the cluster is important).

/// One-sided critical values `t_(df, 0.05)` (95 % confidence level) for
/// degrees of freedom 1..=30.
const T_05: [f64; 30] = [
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
    1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
    1.703, 1.701, 1.699, 1.697,
];

/// One-sided critical values `t_(df, 0.01)` (99 % confidence level) for
/// degrees of freedom 1..=30.
#[allow(clippy::approx_constant)] // 2.718 is t(11, 0.01), not Euler's number
const T_01: [f64; 30] = [
    31.821, 6.965, 4.541, 3.747, 3.365, 3.143, 2.998, 2.896, 2.821, 2.764, 2.718, 2.681, 2.650,
    2.624, 2.602, 2.583, 2.567, 2.552, 2.539, 2.528, 2.518, 2.508, 2.500, 2.492, 2.485, 2.479,
    2.473, 2.467, 2.462, 2.457,
];

/// Asymptotic (normal) critical values for df > 30.
const Z_05: f64 = 1.645;
const Z_01: f64 = 2.326;

/// Returns the one-sided Student's t critical value `t_(df, alpha)`.
///
/// Only the two confidence levels the paper uses are tabulated:
/// `alpha = 0.05` (95 %) and `alpha = 0.01` (99 %). Degrees of freedom above
/// 30 fall back to the normal approximation.
///
/// # Panics
///
/// Panics if `df == 0` or `alpha` is not one of the supported levels.
///
/// # Examples
///
/// ```
/// use osprey_stats::student_t::t_critical_one_sided;
///
/// // With m = 4 EPOs the paper uses df = 3.
/// assert!((t_critical_one_sided(3, 0.05) - 2.353).abs() < 1e-9);
/// ```
pub fn t_critical_one_sided(df: u64, alpha: f64) -> f64 {
    assert!(df > 0, "degrees of freedom must be positive");
    let (table, z) = if (alpha - 0.05).abs() < 1e-9 {
        (&T_05, Z_05)
    } else if (alpha - 0.01).abs() < 1e-9 {
        (&T_01, Z_01)
    } else {
        panic!("unsupported alpha {alpha}; use 0.05 or 0.01");
    };
    if df <= 30 {
        table[(df - 1) as usize]
    } else {
        z
    }
}

/// One-sided upper confidence bound on the true mean of `samples`
/// (the paper's `B_y`, Eq. 8).
///
/// Returns `None` when fewer than two samples are supplied (the bound is
/// statistically meaningless; the paper additionally waits for four EPOs
/// before acting on it).
///
/// # Examples
///
/// ```
/// use osprey_stats::student_t::upper_confidence_bound;
///
/// let epos = [0.02, 0.05, 0.04, 0.05];
/// let b = upper_confidence_bound(&epos, 0.05).unwrap();
/// assert!(b > 0.04 && b < 0.08);
/// ```
pub fn upper_confidence_bound(samples: &[f64], alpha: f64) -> Option<f64> {
    let m = samples.len();
    if m < 2 {
        return None;
    }
    let mean = samples.iter().sum::<f64>() / m as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (m - 1) as f64;
    let t = t_critical_one_sided((m - 1) as u64, alpha);
    Some(mean + t * var.sqrt() / (m as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_values_are_decreasing_in_df() {
        for df in 1..30 {
            assert!(t_critical_one_sided(df, 0.05) > t_critical_one_sided(df + 1, 0.05));
            assert!(t_critical_one_sided(df, 0.01) > t_critical_one_sided(df + 1, 0.01));
        }
    }

    #[test]
    fn large_df_uses_normal_approximation() {
        assert_eq!(t_critical_one_sided(31, 0.05), 1.645);
        assert_eq!(t_critical_one_sided(1000, 0.01), 2.326);
    }

    #[test]
    fn ninety_nine_is_stricter_than_ninety_five() {
        for df in [1, 3, 10, 30, 100] {
            assert!(t_critical_one_sided(df, 0.01) > t_critical_one_sided(df, 0.05));
        }
    }

    #[test]
    #[should_panic(expected = "degrees of freedom")]
    fn zero_df_panics() {
        t_critical_one_sided(0, 0.05);
    }

    #[test]
    #[should_panic(expected = "unsupported alpha")]
    fn unsupported_alpha_panics() {
        t_critical_one_sided(3, 0.10);
    }

    #[test]
    fn bound_exceeds_sample_mean_when_data_varies() {
        let samples = [0.02, 0.03, 0.04, 0.05];
        let mean = 0.035;
        let b = upper_confidence_bound(&samples, 0.05).unwrap();
        assert!(b > mean);
    }

    #[test]
    fn bound_equals_mean_for_constant_data() {
        let samples = [0.03; 5];
        let b = upper_confidence_bound(&samples, 0.05).unwrap();
        assert!((b - 0.03).abs() < 1e-12);
    }

    #[test]
    fn bound_requires_two_samples() {
        assert_eq!(upper_confidence_bound(&[], 0.05), None);
        assert_eq!(upper_confidence_bound(&[0.03], 0.05), None);
        assert!(upper_confidence_bound(&[0.03, 0.04], 0.05).is_some());
    }

    #[test]
    fn rare_cluster_stays_below_pmin() {
        // Consistently tiny EPOs: the bound should stay below p_min = 3%,
        // so Statistical re-learning would *not* trigger.
        let epos = [0.005, 0.004, 0.006, 0.005];
        let b = upper_confidence_bound(&epos, 0.05).unwrap();
        assert!(b < 0.03);
    }

    #[test]
    fn frequent_cluster_exceeds_pmin() {
        // EPOs hovering near 8%: the bound must exceed p_min = 3%,
        // so Statistical re-learning would trigger.
        let epos = [0.07, 0.09, 0.08, 0.08];
        let b = upper_confidence_bound(&epos, 0.05).unwrap();
        assert!(b > 0.03);
    }
}

//! Single-pass streaming moments (Welford's algorithm).
//!
//! Every OS-service cluster in the Performance Lookup Table keeps a
//! [`Streaming`] accumulator per metric (cycles, IPC, cache misses) so that
//! centroids and ranges can be updated in O(1) as new instances are added
//! during learning, exactly as the paper's scaled clusters require.

/// Streaming mean / variance / extrema accumulator.
///
/// Uses Welford's numerically-stable single-pass update. Two accumulators
/// can be [merged](Streaming::merge) (Chan et al. parallel variant), which
/// the simulator uses when folding per-interval statistics into per-service
/// statistics.
///
/// # Examples
///
/// ```
/// use osprey_stats::Streaming;
///
/// let mut s = Streaming::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Streaming {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Streaming {
    fn default() -> Self {
        Self::new()
    }
}

impl Streaming {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one.
    ///
    /// The result is identical (up to floating-point rounding) to having
    /// pushed all observations of both accumulators into a single one.
    pub fn merge(&mut self, other: &Streaming) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` when no observation has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation.
    ///
    /// Returns `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation.
    ///
    /// Returns `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Population variance (divides by `n`; 0 when fewer than 2 samples).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`; 0 when fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation: population standard deviation divided by
    /// the mean.
    ///
    /// This is the cluster-uniformity metric the paper uses in Fig. 6.
    /// Returns 0 when the mean is 0 or fewer than two samples exist.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.population_std_dev() / self.mean.abs()
        }
    }
}

impl FromIterator<f64> for Streaming {
    /// Creates an accumulator seeded with the values of `iter`.
    ///
    /// ```
    /// use osprey_stats::Streaming;
    /// let s = Streaming::from_iter([1.0, 2.0, 3.0]);
    /// assert_eq!(s.mean(), 2.0);
    /// ```
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

impl Extend<f64> for Streaming {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_reports_zeroes() {
        let s = Streaming::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let mut s = Streaming::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn matches_textbook_values() {
        let s = Streaming::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential_push() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 50.0).collect();
        let mut whole = Streaming::new();
        whole.extend(all.iter().copied());

        let mut a = Streaming::new();
        let mut b = Streaming::new();
        a.extend(all[..37].iter().copied());
        b.extend(all[37..].iter().copied());
        a.merge(&b);

        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Streaming::from_iter([1.0, 2.0, 3.0]);
        let before = s;
        s.merge(&Streaming::new());
        assert_eq!(s, before);

        let mut e = Streaming::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn cv_is_relative_dispersion() {
        // Same relative spread at different scales gives the same CV.
        let small = Streaming::from_iter([9.0, 10.0, 11.0]);
        let large = Streaming::from_iter([90.0, 100.0, 110.0]);
        assert!((small.cv() - large.cv()).abs() < 1e-12);
    }

    #[test]
    fn cv_of_constant_data_is_zero() {
        let s = Streaming::from_iter([5.0; 10]);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn sum_matches_mean_times_count() {
        let s = Streaming::from_iter([1.5, 2.5, 3.0]);
        assert!((s.sum() - 7.0).abs() < 1e-12);
    }
}

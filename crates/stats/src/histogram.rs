//! Histograms, including the two-dimensional "bubble histogram" of the
//! paper's Fig. 5 (instruction-count bins × cycle bins, bubble area
//! proportional to occurrence count).

use std::collections::BTreeMap;

/// A fixed-width one-dimensional histogram over `f64` values.
///
/// Bins are indexed by `floor(value / width)`, so negative values are
/// supported and empty bins cost nothing.
///
/// # Examples
///
/// ```
/// use osprey_stats::Histogram;
///
/// let mut h = Histogram::new(10.0);
/// h.add(3.0);
/// h.add(7.0);
/// h.add(15.0);
/// assert_eq!(h.count(0), 2);
/// assert_eq!(h.count(1), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    width: f64,
    bins: BTreeMap<i64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive and finite.
    pub fn new(width: f64) -> Self {
        assert!(
            width > 0.0 && width.is_finite(),
            "bin width must be positive and finite"
        );
        Self {
            width,
            bins: BTreeMap::new(),
            total: 0,
        }
    }

    /// Bin width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Records one observation.
    pub fn add(&mut self, value: f64) {
        let idx = (value / self.width).floor() as i64;
        *self.bins.entry(idx).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of observations in bin `idx`.
    pub fn count(&self, idx: i64) -> u64 {
        self.bins.get(&idx).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of non-empty bins.
    pub fn occupied_bins(&self) -> usize {
        self.bins.len()
    }

    /// Iterates `(bin_index, count)` in ascending bin order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.bins.iter().map(|(&k, &v)| (k, v))
    }

    /// Lower edge of bin `idx`.
    pub fn bin_start(&self, idx: i64) -> f64 {
        idx as f64 * self.width
    }
}

/// One occupied cell of a [`BubbleHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bubble {
    /// X-axis bin index (instruction bin in the paper's Fig. 5).
    pub x_bin: i64,
    /// Y-axis bin index (cycle bin in the paper's Fig. 5).
    pub y_bin: i64,
    /// Number of occurrences that fell in this cell.
    pub count: u64,
}

/// A two-dimensional histogram whose occupied cells are "bubbles" with an
/// occurrence count, as plotted in the paper's Fig. 5 for `sys_read`
/// (1000-instruction × 4000-cycle bins).
///
/// # Examples
///
/// ```
/// use osprey_stats::BubbleHistogram;
///
/// let mut h = BubbleHistogram::new(1000.0, 4000.0);
/// h.add(2500.0, 9000.0);
/// h.add(2700.0, 8500.0);
/// let bubbles = h.bubbles();
/// assert_eq!(bubbles.len(), 1);
/// assert_eq!(bubbles[0].count, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BubbleHistogram {
    x_width: f64,
    y_width: f64,
    cells: BTreeMap<(i64, i64), u64>,
    total: u64,
}

impl BubbleHistogram {
    /// Creates a bubble histogram with the given bin widths.
    ///
    /// # Panics
    ///
    /// Panics if either width is not strictly positive and finite.
    pub fn new(x_width: f64, y_width: f64) -> Self {
        assert!(
            x_width > 0.0 && x_width.is_finite() && y_width > 0.0 && y_width.is_finite(),
            "bin widths must be positive and finite"
        );
        Self {
            x_width,
            y_width,
            cells: BTreeMap::new(),
            total: 0,
        }
    }

    /// Records one `(x, y)` observation.
    pub fn add(&mut self, x: f64, y: f64) {
        let key = (
            (x / self.x_width).floor() as i64,
            (y / self.y_width).floor() as i64,
        );
        *self.cells.entry(key).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// All occupied cells, ordered by `(x_bin, y_bin)`.
    pub fn bubbles(&self) -> Vec<Bubble> {
        self.cells
            .iter()
            .map(|(&(x_bin, y_bin), &count)| Bubble {
                x_bin,
                y_bin,
                count,
            })
            .collect()
    }

    /// Center coordinates of a cell, for plotting.
    pub fn cell_center(&self, x_bin: i64, y_bin: i64) -> (f64, f64) {
        (
            (x_bin as f64 + 0.5) * self.x_width,
            (y_bin as f64 + 0.5) * self.y_width,
        )
    }

    /// Fraction of observations captured by the `k` most populated cells.
    ///
    /// The paper's Fig. 5 observation — "few large bubbles rather than many
    /// small ones" — corresponds to this concentration being high for small
    /// `k`.
    pub fn concentration(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut counts: Vec<u64> = self.cells.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = counts.into_iter().take(k).sum();
        top as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_values_by_floor() {
        let mut h = Histogram::new(4000.0);
        h.add(0.0);
        h.add(3999.9);
        h.add(4000.0);
        h.add(-1.0);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(-1), 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.occupied_bins(), 3);
    }

    #[test]
    fn histogram_iterates_in_order() {
        let mut h = Histogram::new(1.0);
        for v in [5.0, 1.0, 3.0, 1.5] {
            h.add(v);
        }
        let bins: Vec<_> = h.iter().collect();
        assert_eq!(bins, vec![(1, 2), (3, 1), (5, 1)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn histogram_rejects_zero_width() {
        Histogram::new(0.0);
    }

    #[test]
    fn bubble_groups_nearby_points() {
        let mut h = BubbleHistogram::new(1000.0, 4000.0);
        // Two points in the same cell, one in a different cell.
        h.add(2500.0, 9000.0);
        h.add(2999.0, 11999.0);
        h.add(10500.0, 45000.0);
        let bubbles = h.bubbles();
        assert_eq!(bubbles.len(), 2);
        assert_eq!(h.total(), 3);
        let big = bubbles.iter().find(|b| b.count == 2).unwrap();
        assert_eq!((big.x_bin, big.y_bin), (2, 2));
    }

    #[test]
    fn bubble_cell_center() {
        let h = BubbleHistogram::new(1000.0, 4000.0);
        assert_eq!(h.cell_center(2, 2), (2500.0, 10000.0));
        assert_eq!(h.cell_center(-1, 0), (-500.0, 2000.0));
    }

    #[test]
    fn concentration_measures_clustering() {
        let mut clustered = BubbleHistogram::new(1.0, 1.0);
        for _ in 0..90 {
            clustered.add(0.5, 0.5);
        }
        for i in 0..10 {
            clustered.add(10.0 + i as f64, 10.0);
        }
        // Top-1 cell holds 90% of observations.
        assert!((clustered.concentration(1) - 0.9).abs() < 1e-12);
        assert!((clustered.concentration(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concentration_of_empty_histogram_is_zero() {
        let h = BubbleHistogram::new(1.0, 1.0);
        assert_eq!(h.concentration(3), 0.0);
    }
}

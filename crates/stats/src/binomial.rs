//! Binomial capture-probability analysis for learning-window sizing.
//!
//! The paper models cluster occurrence during a learning window of `N`
//! invocations as `N` i.i.d. Bernoulli trials (Eq. 1). The probability of
//! capturing a cluster with occurrence probability `p` at least once in the
//! window (Eq. 2) is
//!
//! ```text
//! P(N, k >= 1, x) = sum_{k=1..N} C(N,k) p^k (1-p)^(N-k) = 1 - (1-p)^N
//! ```
//!
//! The initial learning window is the smallest `N` for which that
//! probability meets the degree of confidence (Eq. 3). The paper's Fig. 7
//! plots `N` against `p_min` for 95 % and 99 % confidence; with
//! `p_min = 3 %` the window comes out at ~100 (95 %) and a bit over 150
//! (99 %), which [`learning_window`] reproduces exactly.

/// Probability that a cluster with per-invocation occurrence probability
/// `p` appears **at least once** in a learning window of `n` invocations.
///
/// This is the closed form of the paper's Eq. 2 under the i.i.d.
/// assumption: `1 - (1 - p)^n`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use osprey_stats::binomial::capture_probability;
///
/// // A 3%-likely cluster is captured ~95% of the time in 100 trials.
/// let p = capture_probability(0.03, 100);
/// assert!(p > 0.95 && p < 0.96);
/// ```
pub fn capture_probability(p: f64, n: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    1.0 - (1.0 - p).powi(n.min(i32::MAX as u64) as i32)
}

/// Smallest learning window `N` that captures every cluster whose
/// occurrence probability is at least `p_min`, with degree of confidence
/// `doc` (paper Eq. 3).
///
/// Returns `None` when the parameters make capture impossible
/// (`p_min == 0`) or the inputs are out of range.
///
/// # Examples
///
/// ```
/// use osprey_stats::binomial::learning_window;
///
/// // The paper's operating point: p_min = 3%, DoC = 95% -> ~100 trials;
/// // at 99% the window is a little over 150.
/// assert_eq!(learning_window(0.03, 0.95), Some(99));
/// assert_eq!(learning_window(0.03, 0.99), Some(152));
/// ```
pub fn learning_window(p_min: f64, doc: f64) -> Option<u64> {
    if !(0.0..1.0).contains(&doc) || p_min <= 0.0 || p_min > 1.0 {
        return None;
    }
    // 1 - (1-p)^N >= doc  <=>  N >= ln(1-doc) / ln(1-p)
    let n = ((1.0 - doc).ln() / (1.0 - p_min).ln()).ceil();
    if n.is_finite() {
        Some(n.max(1.0) as u64)
    } else {
        // p_min == 1.0 makes ln(0) = -inf; a single trial suffices.
        Some(1)
    }
}

/// Binomial probability mass function `C(n,k) p^k (1-p)^(n-k)`
/// (the paper's Eq. 1).
///
/// Computed in log space to stay finite for large `n`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `k > n`.
///
/// # Examples
///
/// ```
/// use osprey_stats::binomial::pmf;
///
/// // Fair coin, 4 flips, exactly 2 heads: 6/16.
/// assert!((pmf(4, 2, 0.5) - 0.375).abs() < 1e-12);
/// ```
pub fn pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    assert!(k <= n, "k must not exceed n");
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let log_pmf = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    log_pmf.exp()
}

/// Cumulative probability of observing **at most** `k` occurrences in `n`
/// trials.
///
/// # Examples
///
/// ```
/// use osprey_stats::binomial::cdf;
///
/// assert!((cdf(4, 4, 0.5) - 1.0).abs() < 1e-12);
/// assert!((cdf(4, 1, 0.5) - 5.0 / 16.0).abs() < 1e-12);
/// ```
pub fn cdf(n: u64, k: u64, p: f64) -> f64 {
    (0..=k.min(n)).map(|i| pmf(n, i, p)).sum()
}

/// Natural log of the binomial coefficient `C(n, k)`.
fn ln_choose(n: u64, k: u64) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Natural log of `n!` via `lgamma`-style summation (exact accumulation for
/// the sizes used here; learning windows are a few hundred at most).
fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

/// One (p_min, N) point of the paper's Fig. 7 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPoint {
    /// Minimum occurrence probability a cluster must have to be captured.
    pub p_min: f64,
    /// Required learning-window length.
    pub window: u64,
}

/// Sweeps `p_min` over `(0, max_p]` in `steps` equal increments and returns
/// the required learning window at the given degree of confidence —
/// the data series of the paper's Fig. 7.
///
/// # Examples
///
/// ```
/// use osprey_stats::binomial::window_curve;
///
/// let curve = window_curve(0.2, 20, 0.95);
/// assert_eq!(curve.len(), 20);
/// // Window length decreases as p_min grows.
/// assert!(curve.first().unwrap().window > curve.last().unwrap().window);
/// ```
pub fn window_curve(max_p: f64, steps: usize, doc: f64) -> Vec<WindowPoint> {
    (1..=steps)
        .filter_map(|i| {
            let p_min = max_p * i as f64 / steps as f64;
            learning_window(p_min, doc).map(|window| WindowPoint { p_min, window })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_probability_monotone_in_n() {
        let mut last = 0.0;
        for n in [1, 5, 25, 100, 400] {
            let p = capture_probability(0.03, n);
            assert!(p > last, "capture probability must grow with n");
            last = p;
        }
    }

    #[test]
    fn capture_probability_edge_cases() {
        assert_eq!(capture_probability(0.0, 1000), 0.0);
        assert_eq!(capture_probability(1.0, 1), 1.0);
        assert_eq!(capture_probability(0.5, 0), 0.0);
    }

    #[test]
    fn paper_operating_points() {
        // Fig. 7: at p_min = 3%, the window is ~100 at 95% DoC and a bit
        // over 150 at 99% DoC.
        let n95 = learning_window(0.03, 0.95).unwrap();
        let n99 = learning_window(0.03, 0.99).unwrap();
        assert!((95..=100).contains(&n95), "n95 = {n95}");
        assert!((150..=160).contains(&n99), "n99 = {n99}");
    }

    #[test]
    fn window_satisfies_and_is_minimal() {
        for &(p, doc) in &[(0.01, 0.95), (0.03, 0.95), (0.03, 0.99), (0.1, 0.9)] {
            let n = learning_window(p, doc).unwrap();
            assert!(capture_probability(p, n) >= doc);
            if n > 1 {
                assert!(capture_probability(p, n - 1) < doc, "window not minimal");
            }
        }
    }

    #[test]
    fn learning_window_rejects_bad_inputs() {
        assert_eq!(learning_window(0.0, 0.95), None);
        assert_eq!(learning_window(-0.1, 0.95), None);
        assert_eq!(learning_window(0.03, 1.0), None);
        assert_eq!(learning_window(0.03, -0.2), None);
        assert_eq!(learning_window(1.5, 0.95), None);
    }

    #[test]
    fn certain_cluster_needs_one_trial() {
        assert_eq!(learning_window(1.0, 0.99), Some(1));
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (50, 0.03), (100, 0.5)] {
            let total: f64 = (0..=n).map(|k| pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn pmf_matches_hand_computation() {
        assert!((pmf(4, 0, 0.5) - 1.0 / 16.0).abs() < 1e-12);
        assert!((pmf(4, 2, 0.5) - 6.0 / 16.0).abs() < 1e-12);
        assert!((pmf(3, 1, 0.2) - 3.0 * 0.2 * 0.64).abs() < 1e-12);
    }

    #[test]
    fn cdf_complements_capture_probability() {
        // P(at least one) = 1 - P(zero) = 1 - cdf(n, 0, p).
        for &(n, p) in &[(100u64, 0.03), (10, 0.5)] {
            let lhs = capture_probability(p, n);
            let rhs = 1.0 - cdf(n, 0, p);
            assert!((lhs - rhs).abs() < 1e-9);
        }
    }

    #[test]
    fn window_curve_is_monotone_decreasing() {
        let curve = window_curve(0.2, 40, 0.95);
        for pair in curve.windows(2) {
            assert!(pair[0].window >= pair[1].window);
        }
    }
}

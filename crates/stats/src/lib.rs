//! Statistics substrate for the Osprey full-system simulation accelerator.
//!
//! This crate implements the statistical machinery the paper relies on:
//!
//! * [`streaming`] — single-pass (Welford) mean / variance / coefficient of
//!   variation accumulators used to characterize OS-service behavior points.
//! * [`binomial`] — the binomial capture-probability analysis (paper
//!   Eq. 1–3) that sizes the initial learning window, reproduced in Fig. 7.
//! * [`student_t`] — Student's t upper confidence bounds (paper Eq. 4–8)
//!   driving the *Statistical* re-learning strategy.
//! * [`histogram`] — plain and bubble histograms (the paper's Fig. 5).
//! * [`summary`] — batch descriptive statistics and normalization helpers
//!   used by the figure/table regenerators.
//! * [`rng`] — the workspace's seedable, dependency-free SplitMix64
//!   generator, preserving the deterministic-replay guarantee the block
//!   generators document without an external `rand` dependency.
//!
//! # Examples
//!
//! Sizing the initial learning window exactly as the paper does
//! (p_min = 3 %, 95 % degree of confidence — which yields a window of
//! roughly 100 invocations):
//!
//! ```
//! use osprey_stats::binomial::learning_window;
//!
//! let n = learning_window(0.03, 0.95).expect("valid parameters");
//! assert!((95..=105).contains(&n));
//! ```

pub mod binomial;
pub mod histogram;
pub mod rng;
pub mod streaming;
pub mod student_t;
pub mod summary;

pub use binomial::{capture_probability, learning_window};
pub use histogram::{BubbleHistogram, Histogram};
pub use rng::SmallRng;
pub use streaming::Streaming;
pub use student_t::{t_critical_one_sided, upper_confidence_bound};
pub use summary::{coefficient_of_variation, geometric_mean, mean, std_dev};

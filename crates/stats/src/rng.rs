//! Dependency-free deterministic pseudo-random number generation.
//!
//! Osprey's acceleration argument rests on *deterministic replay*: the
//! same `(spec, seed)` pair must expand to the identical instruction
//! stream in detailed and emulation mode (see `osprey-isa`'s block
//! generator). That guarantee must not depend on an external crate's
//! version-to-version stream stability, so the workspace carries its own
//! generator: [`SmallRng`], a [SplitMix64] core with the same calling
//! convention the previous `rand`-based code used (`seed_from_u64`,
//! `random`, `random_range`).
//!
//! SplitMix64 is a 64-bit-state mixer with a period of 2^64 that passes
//! BigCrush; it is more than adequate for driving synthetic instruction
//! mixes and cache-pollution victim selection, and its one-add-three-mix
//! step is branch-free and fast.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! # Examples
//!
//! ```
//! use osprey_stats::rng::SmallRng;
//!
//! let mut a = SmallRng::seed_from_u64(7);
//! let mut b = SmallRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let f: f64 = a.random();
//! assert!((0.0..1.0).contains(&f));
//! let n = a.random_range(10u64..20);
//! assert!((10..20).contains(&n));
//! ```

use std::ops::{Range, RangeInclusive};

/// A small, fast, seedable deterministic generator (SplitMix64).
///
/// Every generator in the workspace is seeded explicitly from a master
/// seed; there is no global or entropy-seeded constructor, by design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The generator's current stream position.
    ///
    /// Feeding the returned value back through
    /// [`SmallRng::seed_from_u64`] resumes the stream exactly where it
    /// left off — the property interval checkpointing relies on to
    /// serialize and restore RNG state.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances the stream past `n` draws without computing their
    /// values — exactly equivalent to `n` [`SmallRng::next_u64`] calls
    /// with the results discarded. SplitMix64's state is a pure
    /// counter (`state += γ` per draw; outputs are a function of the
    /// state alone), so skipping is one multiply instead of `n` mixes.
    /// Bulk consumers (the block generator's class-totals fast path)
    /// use this to stay draw-order identical to the full expansion
    /// while never touching the values they do not need.
    #[inline]
    pub fn skip(&mut self, n: u64) {
        self.state = self
            .state
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(n));
    }

    /// Returns the next 64 uniformly distributed bits.
    ///
    /// `#[inline]` because this is the innermost call of the block
    /// generator's per-instruction loop and must fold into callers in
    /// other crates without LTO.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Samples a value of type `T` (uniform `f64` in `[0,1)`, fair
    /// `bool`, or full-range integer).
    #[inline]
    pub fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Samples uniformly from a half-open (`lo..hi`) or inclusive
    /// (`lo..=hi`) integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<T, R: RandRange<T>>(&mut self, range: R) -> T {
        range.pick(self)
    }

    /// Uniform integer in `[0, bound)` via the widening-multiply method
    /// (no modulo bias worth speaking of at our range sizes).
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// Types [`SmallRng::random`] can sample.
pub trait Random {
    /// Draws one value from `rng`.
    fn random_from(rng: &mut SmallRng) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random_from(rng: &mut SmallRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    #[inline]
    fn random_from(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    #[inline]
    fn random_from(rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random_from(rng: &mut SmallRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges [`SmallRng::random_range`] can sample from.
pub trait RandRange<T> {
    /// Draws one value uniformly from the range.
    fn pick(self, rng: &mut SmallRng) -> T;
}

macro_rules! impl_rand_range {
    ($($t:ty),*) => {$(
        impl RandRange<$t> for Range<$t> {
            #[inline]
            fn pick(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl RandRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn pick(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_rand_range!(u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = SmallRng::seed_from_u64(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_fills_it() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01, "min {lo}");
        assert!(hi > 0.99, "max {hi}");
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues {trues}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..10_000 {
            assert!((10..20u64).contains(&rng.random_range(10..20u64)));
            assert!((1..=8usize).contains(&rng.random_range(1..=8usize)));
        }
    }

    #[test]
    fn half_open_range_covers_every_value() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = SmallRng::seed_from_u64(8);
        let draws: Vec<u64> = (0..1_000).map(|_| rng.random_range(0..=3u64)).collect();
        assert!(draws.contains(&0));
        assert!(draws.contains(&3));
        assert!(draws.iter().all(|&d| d <= 3));
    }

    #[test]
    fn single_value_ranges_work() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert_eq!(rng.random_range(5..=5u64), 5);
        assert_eq!(rng.random_range(7..8usize), 7);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(1).random_range(5..5u64);
    }
}

//! Low-level wire encoding: fixed-width little-endian primitives,
//! length-prefixed strings, and the SplitMix64-fold checksum.
//!
//! Every multi-byte integer is little-endian; floats travel as their IEEE
//! 754 bit patterns; strings are UTF-8 with a `u16` length prefix. The
//! decoder never panics on malformed input — every failure is a typed
//! [`Diagnostic`] in the `OSPT00x` range (see [`crate::codes`]).

use osprey_report::Diagnostic;

use crate::codes;

/// File magic of a trace stream: `OSPT`.
pub const MAGIC: [u8; 4] = *b"OSPT";

/// File magic of a checkpoint stream: `OSPC`.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"OSPC";

/// Current on-disk format version (shared by traces and checkpoints).
pub const VERSION: u16 = 1;

/// SplitMix64 finalizer (the same mixing step `osprey_stats::rng` uses).
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds the SplitMix64 finalizer over `bytes` (8 bytes at a time,
/// zero-padded tail), seeded with the length so that truncation to a
/// chunk boundary still changes the sum.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = mix(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix(h ^ u64::from_le_bytes(word));
    }
    h
}

/// Appends a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian `u16`.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE 754 bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a `u16`-length-prefixed UTF-8 string.
///
/// # Panics
///
/// Panics if the string exceeds 65 535 bytes (no trace field does).
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("trace strings are short");
    put_u16(buf, len);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reader over an encoded byte stream.
///
/// Out-of-bounds reads produce an `OSPT002` (truncated) diagnostic
/// pointing at the byte offset where data ran out.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps `bytes` for decoding from the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Diagnostic> {
        if self.remaining() < n {
            return Err(codes::truncated(self.pos, n, self.remaining()));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, Diagnostic> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, Diagnostic> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, Diagnostic> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, Diagnostic> {
        let b = self.take(8)?;
        let mut word = [0u8; 8];
        word.copy_from_slice(b);
        Ok(u64::from_le_bytes(word))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, Diagnostic> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u16`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, Diagnostic> {
        let at = self.pos;
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| codes::malformed(at, "string is not valid UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u16(&mut buf, 0x1234);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_f64(&mut buf, -0.125);
        put_str(&mut buf, "sys_read");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u8().unwrap(), 0xAB);
        assert_eq!(c.u16().unwrap(), 0x1234);
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), u64::MAX - 7);
        assert_eq!(c.f64().unwrap(), -0.125);
        assert_eq!(c.str().unwrap(), "sys_read");
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut c = Cursor::new(&[1, 2, 3]);
        let err = c.u64().unwrap_err();
        assert_eq!(err.code, "OSPT002");
        assert!(err.is_error());
    }

    #[test]
    fn invalid_utf8_is_a_typed_error() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let err = Cursor::new(&buf).str().unwrap_err();
        assert_eq!(err.code, "OSPT005");
    }

    #[test]
    fn checksum_changes_on_any_flip() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = checksum(&data);
        for i in 0..data.len() {
            let mut copy = data.clone();
            copy[i] ^= 1;
            assert_ne!(checksum(&copy), base, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn checksum_detects_truncation_on_chunk_boundary() {
        let data = vec![7u8; 32];
        assert_ne!(checksum(&data), checksum(&data[..24]));
        assert_ne!(checksum(&data), checksum(&data[..31]));
    }

    #[test]
    fn checksum_is_stable() {
        // Pin the function itself: golden-trace compatibility depends on
        // this exact value never changing.
        assert_eq!(checksum(b""), mix(0));
        assert_eq!(checksum(b"OSPT"), {
            let h = mix(4);
            mix(h ^ u64::from_le_bytes(*b"OSPT\0\0\0\0"))
        });
    }
}

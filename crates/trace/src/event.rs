//! Trace stream contents: the run metadata header, the per-interval
//! event records, and the end-of-run summary.
//!
//! Encoding and decoding live here, next to the types, so the writer and
//! reader cannot drift apart. Layout (version 1, all integers
//! little-endian, strings `u16`-length-prefixed UTF-8):
//!
//! ```text
//! header   := magic "OSPT" · version u16 · meta
//! meta     := benchmark str · seed u64 · scale f64 · l2_bytes u64
//!             · core str · os_mode u8 · kernel (7 × u64)
//!             · snapshot_every u64
//! event    := 0x01 invocation · 0x02 simulated · 0x03 predicted
//!             · 0x04 decision · 0x05 snapshot · 0x06 summary
//! trailer  := 0xFF · event count u64 · checksum u64
//! ```
//!
//! Wall-clock times are deliberately **not** recorded: a trace of a
//! deterministic run is itself deterministic, byte for byte, which is
//! what the golden-fixture regression test pins.

use osprey_isa::ServiceId;
use osprey_mem::{CacheStats, HierarchySnapshot};
use osprey_os::KernelConfig;
use osprey_report::Diagnostic;
use osprey_sim::interval::IntervalSource;
use osprey_sim::{CoreModel, CounterSnapshot, IntervalRecord, OsMode, RunReport, SimConfig};
use osprey_workloads::Benchmark;

use crate::codes;
use crate::wire::{self, Cursor};

/// Event tag: OS service invocation (signature observation).
pub const TAG_INVOCATION: u8 = 0x01;
/// Event tag: fully simulated interval record.
pub const TAG_SIMULATED: u8 = 0x02;
/// Event tag: predicted interval record.
pub const TAG_PREDICTED: u8 = 0x03;
/// Event tag: accelerator decision.
pub const TAG_DECISION: u8 = 0x04;
/// Event tag: periodic counter snapshot.
pub const TAG_SNAPSHOT: u8 = 0x05;
/// Event tag: end-of-run summary.
pub const TAG_SUMMARY: u8 = 0x06;
/// Stream terminator tag (followed by the event count).
pub const TAG_END: u8 = 0xFF;

/// The recorded run's configuration — everything needed to rebuild the
/// identical [`SimConfig`] (and therefore to re-record or checkpoint the
/// same run).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Workload that was recorded.
    pub benchmark: Benchmark,
    /// Master seed.
    pub seed: u64,
    /// Workload scale factor.
    pub scale: f64,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// Processor timing model.
    pub core: CoreModel,
    /// Full-system or application-only.
    pub os_mode: OsMode,
    /// Synthetic-kernel tunables.
    pub kernel: KernelConfig,
    /// Interval period between snapshot events.
    pub snapshot_every: u64,
}

impl TraceMeta {
    /// Captures the metadata of a run configuration.
    pub fn from_config(cfg: &SimConfig, snapshot_every: u64) -> Self {
        Self {
            benchmark: cfg.benchmark,
            seed: cfg.seed,
            scale: cfg.scale,
            l2_bytes: cfg.l2_bytes,
            core: cfg.core,
            os_mode: cfg.os_mode,
            kernel: cfg.kernel,
            snapshot_every,
        }
    }

    /// Rebuilds the [`SimConfig`] this trace was recorded from.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::new(self.benchmark)
            .with_seed(self.seed)
            .with_scale(self.scale)
            .with_l2_bytes(self.l2_bytes)
            .with_core(self.core)
            .with_os_mode(self.os_mode)
            .with_kernel(self.kernel)
    }

    pub(crate) fn encode(&self, buf: &mut Vec<u8>) {
        wire::put_str(buf, self.benchmark.name());
        wire::put_u64(buf, self.seed);
        wire::put_f64(buf, self.scale);
        wire::put_u64(buf, self.l2_bytes);
        wire::put_str(buf, self.core.name());
        wire::put_u8(buf, matches!(self.os_mode, OsMode::AppOnly) as u8);
        wire::put_u64(buf, self.kernel.page_cache_pages as u64);
        wire::put_u64(buf, self.kernel.dentry_capacity as u64);
        wire::put_u64(buf, self.kernel.socket_buf_bytes);
        wire::put_u64(buf, self.kernel.timer_period);
        wire::put_u64(buf, self.kernel.disk_latency_instr);
        wire::put_u64(buf, self.kernel.nic_delay_instr);
        wire::put_u64(buf, self.kernel.dirty_flush_bytes);
        wire::put_u64(buf, self.snapshot_every);
    }

    pub(crate) fn decode(c: &mut Cursor<'_>) -> Result<Self, Diagnostic> {
        let at = c.pos();
        let bench_name = c.str()?;
        let benchmark = Benchmark::ALL
            .into_iter()
            .find(|b| b.name() == bench_name)
            .ok_or_else(|| codes::unknown_id(at, "benchmark", bench_name))?;
        let seed = c.u64()?;
        let scale = c.f64()?;
        let l2_bytes = c.u64()?;
        let core_at = c.pos();
        let core_name = c.str()?;
        let core = decode_core(core_name)
            .ok_or_else(|| codes::unknown_id(core_at, "core model", core_name))?;
        let mode_at = c.pos();
        let os_mode = match c.u8()? {
            0 => OsMode::Full,
            1 => OsMode::AppOnly,
            other => return Err(codes::unknown_id(mode_at, "os mode", other)),
        };
        let kernel = KernelConfig {
            page_cache_pages: c.u64()? as usize,
            dentry_capacity: c.u64()? as usize,
            socket_buf_bytes: c.u64()?,
            timer_period: c.u64()?,
            disk_latency_instr: c.u64()?,
            nic_delay_instr: c.u64()?,
            dirty_flush_bytes: c.u64()?,
        };
        let snapshot_every = c.u64()?;
        if scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || snapshot_every == 0 {
            return Err(codes::malformed(
                at,
                "meta carries a non-positive scale or snapshot period",
            ));
        }
        Ok(Self {
            benchmark,
            seed,
            scale,
            l2_bytes,
            core,
            os_mode,
            kernel,
            snapshot_every,
        })
    }
}

fn decode_core(name: &str) -> Option<CoreModel> {
    [
        CoreModel::OooCache,
        CoreModel::OooNoCache,
        CoreModel::InOrderCache,
        CoreModel::InOrderNoCache,
        CoreModel::Emulation,
    ]
    .into_iter()
    .find(|m| m.name() == name)
}

/// One event in a trace stream, in the order it happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// An OS service invocation with its behavior signature.
    Invocation {
        /// Service that was invoked.
        service: ServiceId,
        /// Dynamic instruction count — the signature.
        instructions: u64,
    },
    /// An interval executed in full detail.
    Simulated(IntervalRecord),
    /// An interval fast-forwarded and predicted.
    Predicted(IntervalRecord),
    /// The accelerator's learn-vs-predict choice for an invocation.
    Decision {
        /// Service the decision was about.
        service: ServiceId,
        /// `true` when the interval was predicted rather than simulated.
        predicted: bool,
        /// PLT cluster index the prediction came from, when one exists.
        cluster: Option<u32>,
        /// Member share of that cluster (0 when no cluster exists).
        confidence: f64,
    },
    /// A periodic machine-counter snapshot.
    Snapshot(CounterSnapshot),
}

impl TraceEvent {
    /// The service this event concerns, when it concerns one.
    pub fn service(&self) -> Option<ServiceId> {
        match self {
            TraceEvent::Invocation { service, .. } | TraceEvent::Decision { service, .. } => {
                Some(*service)
            }
            TraceEvent::Simulated(r) | TraceEvent::Predicted(r) => Some(r.service),
            TraceEvent::Snapshot(_) => None,
        }
    }

    /// The interval record, for interval events.
    pub fn interval(&self) -> Option<&IntervalRecord> {
        match self {
            TraceEvent::Simulated(r) | TraceEvent::Predicted(r) => Some(r),
            _ => None,
        }
    }

    pub(crate) fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            TraceEvent::Invocation {
                service,
                instructions,
            } => {
                wire::put_u8(buf, TAG_INVOCATION);
                put_service(buf, *service);
                wire::put_u64(buf, *instructions);
            }
            TraceEvent::Simulated(r) => {
                wire::put_u8(buf, TAG_SIMULATED);
                put_record(buf, r);
            }
            TraceEvent::Predicted(r) => {
                wire::put_u8(buf, TAG_PREDICTED);
                put_record(buf, r);
            }
            TraceEvent::Decision {
                service,
                predicted,
                cluster,
                confidence,
            } => {
                wire::put_u8(buf, TAG_DECISION);
                put_service(buf, *service);
                wire::put_u8(buf, *predicted as u8);
                match cluster {
                    Some(idx) => {
                        wire::put_u8(buf, 1);
                        wire::put_u32(buf, *idx);
                    }
                    None => {
                        wire::put_u8(buf, 0);
                        wire::put_u32(buf, 0);
                    }
                }
                wire::put_f64(buf, *confidence);
            }
            TraceEvent::Snapshot(s) => {
                wire::put_u8(buf, TAG_SNAPSHOT);
                wire::put_u64(buf, s.seq);
                wire::put_u64(buf, s.instret);
                wire::put_u64(buf, s.cycles);
                put_hierarchy(buf, &s.caches);
            }
        }
    }

    /// Decodes the event whose tag has already been consumed.
    pub(crate) fn decode(tag: u8, c: &mut Cursor<'_>) -> Result<Self, Diagnostic> {
        match tag {
            TAG_INVOCATION => Ok(TraceEvent::Invocation {
                service: get_service(c)?,
                instructions: c.u64()?,
            }),
            TAG_SIMULATED => Ok(TraceEvent::Simulated(get_record(
                c,
                IntervalSource::Simulated,
            )?)),
            TAG_PREDICTED => Ok(TraceEvent::Predicted(get_record(
                c,
                IntervalSource::Predicted,
            )?)),
            TAG_DECISION => {
                let service = get_service(c)?;
                let at = c.pos();
                let predicted = match c.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(codes::unknown_id(at, "decision flag", other)),
                };
                let has_cluster = c.u8()? != 0;
                let idx = c.u32()?;
                let confidence = c.f64()?;
                Ok(TraceEvent::Decision {
                    service,
                    predicted,
                    cluster: has_cluster.then_some(idx),
                    confidence,
                })
            }
            TAG_SNAPSHOT => Ok(TraceEvent::Snapshot(CounterSnapshot {
                seq: c.u64()?,
                instret: c.u64()?,
                cycles: c.u64()?,
                caches: get_hierarchy(c)?,
            })),
            other => Err(codes::malformed(
                c.pos().saturating_sub(1),
                &format!("unknown event tag {other:#04x}"),
            )),
        }
    }
}

/// The recorded run's final report, minus the wall clock and the interval
/// list (the intervals *are* the event stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Benchmark name as reported.
    pub benchmark: String,
    /// Core-model label the run used.
    pub mode: String,
    /// Total retired instructions.
    pub total_instructions: u64,
    /// User-mode instructions.
    pub user_instructions: u64,
    /// Kernel-mode instructions.
    pub os_instructions: u64,
    /// Total cycles.
    pub total_cycles: u64,
    /// Cache counters including predicted contributions.
    pub caches: HierarchySnapshot,
    /// Cache counters from detailed simulation only.
    pub measured_caches: HierarchySnapshot,
}

impl TraceSummary {
    /// Extracts the summary of a finished run report.
    pub fn from_report(report: &RunReport) -> Self {
        Self {
            benchmark: report.benchmark.clone(),
            mode: report.mode.clone(),
            total_instructions: report.total_instructions,
            user_instructions: report.user_instructions,
            os_instructions: report.os_instructions,
            total_cycles: report.total_cycles,
            caches: report.caches,
            measured_caches: report.measured_caches,
        }
    }

    pub(crate) fn encode(&self, buf: &mut Vec<u8>) {
        wire::put_u8(buf, TAG_SUMMARY);
        wire::put_str(buf, &self.benchmark);
        wire::put_str(buf, &self.mode);
        wire::put_u64(buf, self.total_instructions);
        wire::put_u64(buf, self.user_instructions);
        wire::put_u64(buf, self.os_instructions);
        wire::put_u64(buf, self.total_cycles);
        put_hierarchy(buf, &self.caches);
        put_hierarchy(buf, &self.measured_caches);
    }

    pub(crate) fn decode(c: &mut Cursor<'_>) -> Result<Self, Diagnostic> {
        Ok(Self {
            benchmark: c.str()?.to_string(),
            mode: c.str()?.to_string(),
            total_instructions: c.u64()?,
            user_instructions: c.u64()?,
            os_instructions: c.u64()?,
            total_cycles: c.u64()?,
            caches: get_hierarchy(c)?,
            measured_caches: get_hierarchy(c)?,
        })
    }
}

fn put_service(buf: &mut Vec<u8>, service: ServiceId) {
    wire::put_u8(buf, service.index() as u8);
}

fn get_service(c: &mut Cursor<'_>) -> Result<ServiceId, Diagnostic> {
    let at = c.pos();
    let idx = c.u8()?;
    ServiceId::ALL
        .get(idx as usize)
        .copied()
        .ok_or_else(|| codes::unknown_id(at, "service id", idx))
}

fn put_cache(buf: &mut Vec<u8>, s: &CacheStats) {
    wire::put_u64(buf, s.app_accesses);
    wire::put_u64(buf, s.app_misses);
    wire::put_u64(buf, s.os_accesses);
    wire::put_u64(buf, s.os_misses);
    wire::put_u64(buf, s.writebacks);
}

fn get_cache(c: &mut Cursor<'_>) -> Result<CacheStats, Diagnostic> {
    Ok(CacheStats {
        app_accesses: c.u64()?,
        app_misses: c.u64()?,
        os_accesses: c.u64()?,
        os_misses: c.u64()?,
        writebacks: c.u64()?,
    })
}

fn put_hierarchy(buf: &mut Vec<u8>, h: &HierarchySnapshot) {
    put_cache(buf, &h.l1i);
    put_cache(buf, &h.l1d);
    put_cache(buf, &h.l2);
}

fn get_hierarchy(c: &mut Cursor<'_>) -> Result<HierarchySnapshot, Diagnostic> {
    Ok(HierarchySnapshot {
        l1i: get_cache(c)?,
        l1d: get_cache(c)?,
        l2: get_cache(c)?,
    })
}

fn put_record(buf: &mut Vec<u8>, r: &IntervalRecord) {
    put_service(buf, r.service);
    wire::put_str(buf, r.path);
    wire::put_u64(buf, r.seq);
    wire::put_u64(buf, r.invocation);
    wire::put_u64(buf, r.instructions);
    wire::put_u64(buf, r.loads);
    wire::put_u64(buf, r.stores);
    wire::put_u64(buf, r.branches);
    wire::put_u64(buf, r.cycles);
    put_hierarchy(buf, &r.caches);
}

fn get_record(c: &mut Cursor<'_>, source: IntervalSource) -> Result<IntervalRecord, Diagnostic> {
    Ok(IntervalRecord {
        service: get_service(c)?,
        path: crate::intern(c.str()?),
        seq: c.u64()?,
        invocation: c.u64()?,
        instructions: c.u64()?,
        loads: c.u64()?,
        stores: c.u64()?,
        branches: c.u64()?,
        cycles: c.u64()?,
        caches: get_hierarchy(c)?,
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> IntervalRecord {
        IntervalRecord {
            service: ServiceId::SysOpen,
            path: "open/hit",
            seq: 17,
            invocation: 3,
            instructions: 1_234,
            loads: 400,
            stores: 120,
            branches: 90,
            cycles: 5_678,
            caches: HierarchySnapshot::default(),
            source: IntervalSource::Simulated,
        }
    }

    #[test]
    fn meta_round_trips() {
        let cfg = SimConfig::new(Benchmark::Iperf)
            .with_seed(42)
            .with_scale(0.25)
            .with_l2_bytes(512 * 1024)
            .with_core(CoreModel::InOrderCache);
        let meta = TraceMeta::from_config(&cfg, 32);
        let mut buf = Vec::new();
        meta.encode(&mut buf);
        let decoded = TraceMeta::decode(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(decoded, meta);
        let rebuilt = decoded.sim_config();
        assert_eq!(rebuilt.benchmark, cfg.benchmark);
        assert_eq!(rebuilt.seed, cfg.seed);
        assert_eq!(rebuilt.l2_bytes, cfg.l2_bytes);
        assert_eq!(rebuilt.core, cfg.core);
    }

    #[test]
    fn every_event_kind_round_trips() {
        let events = [
            TraceEvent::Invocation {
                service: ServiceId::IntTimer,
                instructions: 999,
            },
            TraceEvent::Simulated(sample_record()),
            TraceEvent::Predicted(IntervalRecord {
                source: IntervalSource::Predicted,
                ..sample_record()
            }),
            TraceEvent::Decision {
                service: ServiceId::SysRead,
                predicted: true,
                cluster: Some(2),
                confidence: 0.875,
            },
            TraceEvent::Decision {
                service: ServiceId::SysRead,
                predicted: false,
                cluster: None,
                confidence: 0.0,
            },
            TraceEvent::Snapshot(CounterSnapshot {
                seq: 64,
                instret: 1 << 20,
                cycles: 1 << 21,
                caches: HierarchySnapshot::default(),
            }),
        ];
        for event in events {
            let mut buf = Vec::new();
            event.encode(&mut buf);
            let mut c = Cursor::new(&buf);
            let tag = c.u8().unwrap();
            let decoded = TraceEvent::decode(tag, &mut c).unwrap();
            assert_eq!(decoded, event);
            assert_eq!(c.remaining(), 0);
        }
    }

    #[test]
    fn unknown_service_index_is_ospt006() {
        let mut buf = Vec::new();
        wire::put_u8(&mut buf, 200);
        wire::put_u64(&mut buf, 1);
        let err = TraceEvent::decode(TAG_INVOCATION, &mut Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.code, "OSPT006");
    }

    #[test]
    fn unknown_tag_is_ospt005() {
        let err = TraceEvent::decode(0x77, &mut Cursor::new(&[])).unwrap_err();
        assert_eq!(err.code, "OSPT005");
    }

    #[test]
    fn unknown_benchmark_name_is_ospt006() {
        let mut buf = Vec::new();
        wire::put_str(&mut buf, "not-a-benchmark");
        let err = TraceMeta::decode(&mut Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.code, "OSPT006");
    }
}

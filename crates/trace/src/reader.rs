//! Trace decoding with hard, typed failure modes.
//!
//! [`TraceReader`] validates the whole stream before returning a
//! [`Trace`]: magic, format version, trailing checksum, every record, and
//! the terminator's event count. Corruption and version skew are
//! [`Diagnostic`] errors in the `OSPT00x` range, never panics and never
//! silently-wrong data.

use std::path::Path;

use osprey_report::Diagnostic;

use crate::codes;
use crate::event::{TraceEvent, TraceMeta, TraceSummary, TAG_END, TAG_SUMMARY};
use crate::wire::{self, Cursor};

/// A fully decoded and validated trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The recorded run's configuration.
    pub meta: TraceMeta,
    /// Every event, in stream order.
    pub events: Vec<TraceEvent>,
    /// The end-of-run summary, when the recording completed.
    pub summary: Option<TraceSummary>,
}

impl Trace {
    /// Iterates the interval records (simulated and predicted) in order.
    pub fn intervals(&self) -> impl Iterator<Item = &osprey_sim::IntervalRecord> {
        self.events.iter().filter_map(TraceEvent::interval)
    }

    /// `true` when every interval in the trace was fully simulated —
    /// the precondition for replaying learning from it.
    pub fn is_detailed(&self) -> bool {
        !self
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Predicted(_)))
    }
}

/// Decoder entry points.
pub struct TraceReader;

impl TraceReader {
    /// Decodes and validates a complete trace stream.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, Diagnostic> {
        let payload = validate_envelope(bytes, &wire::MAGIC)?;
        let mut c = Cursor::new(payload);
        // Envelope validation consumed magic+version; skip them again.
        c.u32()?; // magic
        c.u16()?; // version
        let meta = TraceMeta::decode(&mut c)?;
        let mut events = Vec::new();
        let mut summary = None;
        loop {
            let at = c.pos();
            let tag = c.u8()?;
            match tag {
                TAG_END => {
                    let declared = c.u64()?;
                    let decoded = events.len() as u64 + summary.is_some() as u64;
                    if declared != decoded {
                        return Err(codes::count_mismatch(declared, decoded));
                    }
                    if c.remaining() != 0 {
                        return Err(codes::malformed(
                            c.pos(),
                            &format!("{} trailing bytes after end record", c.remaining()),
                        ));
                    }
                    break;
                }
                TAG_SUMMARY => {
                    if summary.is_some() {
                        return Err(codes::malformed(at, "duplicate summary record"));
                    }
                    summary = Some(TraceSummary::decode(&mut c)?);
                }
                other => events.push(TraceEvent::decode(other, &mut c)?),
            }
        }
        Ok(Trace {
            meta,
            events,
            summary,
        })
    }

    /// Reads and decodes a trace file.
    pub fn open(path: &Path) -> Result<Trace, Diagnostic> {
        let bytes = std::fs::read(path).map_err(|e| codes::io(path, &e))?;
        Self::from_bytes(&bytes)
    }
}

/// Checks magic, version, and trailing checksum; returns the bytes up to
/// (but not including) the checksum. Shared with checkpoint decoding.
pub(crate) fn validate_envelope<'a>(
    bytes: &'a [u8],
    magic: &[u8; 4],
) -> Result<&'a [u8], Diagnostic> {
    if bytes.len() < 4 || &bytes[..4] != magic {
        return Err(codes::bad_magic(magic, &bytes[..bytes.len().min(4)]));
    }
    // Header (magic + version) plus the trailing checksum must fit.
    if bytes.len() < 4 + 2 + 8 {
        return Err(codes::truncated(bytes.len(), 4 + 2 + 8, bytes.len()));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != wire::VERSION {
        return Err(codes::version_skew(version, wire::VERSION));
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    let computed = wire::checksum(payload);
    if stored != computed {
        return Err(codes::checksum_mismatch(stored, computed));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use osprey_isa::ServiceId;
    use osprey_sim::SimConfig;
    use osprey_workloads::Benchmark;

    fn sample_bytes() -> Vec<u8> {
        let meta = TraceMeta::from_config(&SimConfig::new(Benchmark::Du).with_scale(0.02), 64);
        let mut w = TraceWriter::new(&meta);
        w.invocation(ServiceId::SysLstat64, 321);
        w.decision(ServiceId::SysLstat64, false, None, 0.0);
        w.finish()
    }

    #[test]
    fn encoded_stream_decodes() {
        let trace = TraceReader::from_bytes(&sample_bytes()).unwrap();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.meta.benchmark, Benchmark::Du);
        assert!(trace.summary.is_none());
        assert!(trace.is_detailed());
    }

    #[test]
    fn bad_magic_is_ospt001() {
        let mut bytes = sample_bytes();
        bytes[0] = b'X';
        assert_eq!(TraceReader::from_bytes(&bytes).unwrap_err().code, "OSPT001");
    }

    #[test]
    fn bumped_version_is_ospt004() {
        let mut bytes = sample_bytes();
        bytes[4] = 0x63; // version 99
        assert_eq!(TraceReader::from_bytes(&bytes).unwrap_err().code, "OSPT004");
    }

    #[test]
    fn flipped_payload_byte_is_ospt003() {
        let mut bytes = sample_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert_eq!(TraceReader::from_bytes(&bytes).unwrap_err().code, "OSPT003");
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let bytes = sample_bytes();
        for keep in [0, 3, 8, bytes.len() / 2, bytes.len() - 1] {
            let err = TraceReader::from_bytes(&bytes[..keep]).unwrap_err();
            assert!(
                matches!(err.code, "OSPT001" | "OSPT002" | "OSPT003"),
                "keep={keep} gave {}",
                err.code
            );
        }
    }

    #[test]
    fn missing_file_is_ospt007() {
        let err = TraceReader::open(Path::new("/nonexistent/osprey.ospt")).unwrap_err();
        assert_eq!(err.code, "OSPT007");
    }
}

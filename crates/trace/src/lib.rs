//! Deterministic trace capture, offline replay, and interval
//! checkpointing for Osprey simulations.
//!
//! The paper's acceleration scheme (§4) separates *observing* OS service
//! intervals from *predicting* them — yet live experiments pay full
//! detailed-simulation cost to feed the same interval stream into every
//! predictor configuration. This crate makes the stream a first-class
//! artifact:
//!
//! * **Record** ([`record_bytes`] / [`SharedSink`] + [`TraceWriter`]):
//!   a detailed run streams per-interval events — service invocations
//!   with their instruction-count signatures, full [`IntervalRecord`]s,
//!   accelerator decisions, periodic counter snapshots — into a
//!   versioned, dependency-free binary format sealed by a SplitMix64
//!   checksum.
//! * **Replay** ([`ReplaySim`]): drive `osprey-core` learning,
//!   clustering, and prediction from a [`TraceReader`] instead of live
//!   simulation, producing the same `RunReport` shape at I/O cost.
//!   Predictor ablations become trace-bound, embarrassingly parallel
//!   jobs.
//! * **Checkpoint** ([`Checkpoint`]): serialize a run's recipe, interval
//!   position, and counter probe at an interval boundary; restore
//!   rebuilds the machine deterministically and *verifies* the probe, so
//!   resumed runs are provably identical to uninterrupted ones.
//!
//! Corruption, truncation, and version skew are hard, typed errors
//! ([`osprey_report::Diagnostic`], `OSPT0xx` codes — see [`codes`]),
//! never panics or silent garbage. Structural invariants of honest
//! recordings are checked by [`verify_trace`].
//!
//! [`IntervalRecord`]: osprey_sim::IntervalRecord

pub mod checkpoint;
pub mod codes;
pub mod event;
pub mod reader;
pub mod record;
pub mod replay;
pub mod verify;
pub mod wire;
pub mod writer;

pub use checkpoint::Checkpoint;
pub use event::{TraceEvent, TraceMeta, TraceSummary};
pub use reader::{Trace, TraceReader};
pub use record::{record_bytes, record_run};
pub use replay::{ReplayOutcome, ReplaySim};
pub use verify::verify_trace;
pub use writer::{SharedSink, TraceWriter};

/// Interns a decoded execution-path label as a `&'static str`.
///
/// [`osprey_sim::IntervalRecord`] stores its `path` as `&'static str`
/// (the kernel hands out static labels). Decoded traces must produce the
/// same type, so each *distinct* label is leaked exactly once and reused
/// for every later occurrence. The label set is the kernel's fixed path
/// vocabulary plus `"(predicted)"` — a few dozen short strings — so the
/// leak is bounded for any number of traces read.
pub(crate) fn intern(s: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(Vec::new()));
    let mut pool = pool.lock().expect("path interner poisoned");
    if let Some(&existing) = pool.iter().find(|&&p| p == s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.push(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    #[test]
    fn intern_returns_the_same_pointer_for_equal_strings() {
        let a = crate::intern("open/hit");
        let b = crate::intern(&String::from("open/hit"));
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "open/hit");
        let c = crate::intern("open/miss");
        assert_ne!(a, c);
    }
}

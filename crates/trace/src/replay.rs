//! Offline replay: drive the learning/clustering/prediction machinery
//! from a recorded trace instead of live simulation.
//!
//! A detailed trace carries every interval's ground truth, so any
//! [`AccelConfig`] (strategy, window, cluster range, …) can be evaluated
//! against it after the fact: intervals the learner would have simulated
//! feed the PLT with their recorded characteristics; intervals it would
//! have predicted contribute the PLT's prediction instead. The result has
//! the same [`RunReport`] shape as a live [`osprey_core::AcceleratedSim`]
//! run, so every downstream metric (coverage, cycle error, miss rates)
//! works unchanged — at I/O cost rather than detailed-simulation cost.
//!
//! The only live effect replay cannot reproduce is the §4.5 pollution
//! *feedback* — in co-simulation, predicted OS misses displace
//! application cache lines, perturbing what later learning intervals
//! measure. Replay evaluates the predictor against the *recorded*
//! detailed run, which is exactly what makes it deterministic: the same
//! trace and configuration always produce the same outcome, byte for
//! byte (`osprey record` prints its summary through this same engine so
//! record and replay output are identical).

use std::collections::HashMap;
use std::time::Instant;

use osprey_core::{AccelConfig, AccelStats, Decision, ServiceLearner};
use osprey_isa::ServiceId;
use osprey_report::Diagnostic;
use osprey_sim::interval::IntervalSource;
use osprey_sim::{IntervalRecord, RunReport};

use crate::event::TraceEvent;
use crate::reader::Trace;

/// Result of a replayed run — the same shape as
/// [`osprey_core::AccelOutcome`].
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The reconstructed run report (simulated + predicted intervals).
    pub report: RunReport,
    /// Coverage and re-learning statistics.
    pub stats: AccelStats,
    /// Clusters learned per service at the end of the replay.
    pub clusters_per_service: Vec<(ServiceId, usize)>,
}

impl ReplayOutcome {
    /// The paper's headline coverage metric.
    pub fn coverage(&self) -> f64 {
        self.stats.coverage()
    }
}

/// Replays learning and prediction over a decoded trace.
pub struct ReplaySim<'a> {
    trace: &'a Trace,
    cfg: AccelConfig,
}

impl<'a> ReplaySim<'a> {
    /// Prepares a replay.
    ///
    /// Fails with `OSPT013` when the trace has no summary record (the
    /// recording never finished) or `OSPT015` when the trace is not a
    /// detailed recording (predicted intervals carry no ground truth to
    /// learn from).
    pub fn new(trace: &'a Trace, cfg: AccelConfig) -> Result<Self, Diagnostic> {
        if trace.summary.is_none() {
            return Err(Diagnostic::error(
                "OSPT013",
                "trace",
                "no summary record: the recording did not run to completion",
            ));
        }
        if !trace.is_detailed() {
            return Err(Diagnostic::error(
                "OSPT015",
                "trace",
                "trace contains predicted intervals; replay needs a detailed recording",
            ));
        }
        Ok(Self { trace, cfg })
    }

    /// Runs the replay to completion.
    pub fn run(self) -> ReplayOutcome {
        let started = Instant::now();
        let summary = self.trace.summary.as_ref().expect("checked in new()");
        let cfg = self.cfg;
        let mut learners: HashMap<ServiceId, ServiceLearner> = HashMap::new();
        let mut stats = AccelStats::new();
        let mut intervals: Vec<IntervalRecord> = Vec::new();
        // Baseline: subtract every recorded interval from the summary to
        // isolate the user-mode (application) share, which replay reuses
        // untouched — the functional user stream does not depend on how
        // OS intervals are costed.
        let mut recorded_os_cycles = 0u64;
        let mut recorded_os_caches = osprey_mem::HierarchySnapshot::default();
        for r in self.trace.intervals() {
            recorded_os_cycles += r.cycles;
            recorded_os_caches.add(&r.caches);
        }
        let user_cycles = summary.total_cycles - recorded_os_cycles;
        let user_caches = summary.measured_caches.delta(&recorded_os_caches);

        let mut replayed_cycles = 0u64;
        let mut measured_caches = user_caches;
        let mut extra_caches = osprey_mem::HierarchySnapshot::default();
        for event in &self.trace.events {
            let TraceEvent::Simulated(record) = event else {
                continue;
            };
            let learner = learners.entry(record.service).or_insert_with(|| {
                ServiceLearner::with_relearn_warmup(
                    cfg.strategy,
                    cfg.learning_window,
                    cfg.warmup,
                    cfg.cluster_range,
                    cfg.epo_window,
                    cfg.relearn_warmup,
                )
            });
            match learner.decide() {
                Decision::Simulate => {
                    learner.observe_simulated(record);
                    stats.count_simulated(record.service, record.instructions);
                    replayed_cycles += record.cycles;
                    measured_caches.add(&record.caches);
                    intervals.push(*record);
                }
                Decision::Predict => {
                    let signature = record.instructions;
                    let relearns_before = learner.relearn_count();
                    let perf = learner.predict(signature);
                    if learner.relearn_count() > relearns_before {
                        stats.count_relearn();
                    }
                    stats.count_predicted(record.service, signature);
                    replayed_cycles += perf.cycles;
                    extra_caches.add(&perf.caches);
                    intervals.push(IntervalRecord {
                        service: record.service,
                        path: "(predicted)",
                        seq: record.seq,
                        invocation: record.invocation,
                        instructions: signature,
                        loads: 0,
                        stores: 0,
                        branches: 0,
                        cycles: perf.cycles,
                        caches: perf.caches,
                        source: IntervalSource::Predicted,
                    });
                }
            }
        }

        let mut caches = measured_caches;
        caches.add(&extra_caches);
        let os_instructions: u64 = intervals.iter().map(|r| r.instructions).sum();
        let report = RunReport {
            benchmark: summary.benchmark.clone(),
            mode: summary.mode.clone(),
            total_instructions: summary.user_instructions + os_instructions,
            user_instructions: summary.user_instructions,
            os_instructions,
            total_cycles: user_cycles + replayed_cycles,
            caches,
            measured_caches,
            intervals,
            wall: started.elapsed(),
        };
        let mut clusters: Vec<(ServiceId, usize)> =
            learners.iter().map(|(&s, l)| (s, l.plt().len())).collect();
        clusters.sort_by_key(|&(s, _)| s);
        ReplayOutcome {
            report,
            stats,
            clusters_per_service: clusters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::record_run;
    use osprey_core::RelearnStrategy;
    use osprey_sim::SimConfig;
    use osprey_workloads::Benchmark;

    fn recorded() -> (Trace, RunReport) {
        let cfg = SimConfig::new(Benchmark::Du).with_scale(0.05).with_seed(5);
        record_run(&cfg, 64)
    }

    #[test]
    fn replay_reconstructs_the_detailed_report_under_all_simulate() {
        let (trace, live) = recorded();
        // A learner that never finishes learning replays every interval
        // from the recording: the report must match the live detailed
        // run exactly (wall excluded).
        let cfg = AccelConfig {
            learning_window: u64::MAX,
            ..AccelConfig::default()
        };
        let outcome = ReplaySim::new(&trace, cfg).unwrap().run();
        assert_eq!(outcome.report.total_cycles, live.total_cycles);
        assert_eq!(outcome.report.total_instructions, live.total_instructions);
        assert_eq!(outcome.report.os_instructions, live.os_instructions);
        assert_eq!(outcome.report.caches, live.caches);
        assert_eq!(outcome.report.intervals, live.intervals);
        assert_eq!(outcome.coverage(), 0.0);
    }

    #[test]
    fn replay_predicts_and_stays_close_to_ground_truth() {
        let cfg = SimConfig::new(Benchmark::Iperf)
            .with_scale(0.5)
            .with_seed(5);
        let (trace, live) = record_run(&cfg, 64);
        let outcome = ReplaySim::new(&trace, AccelConfig::default())
            .unwrap()
            .run();
        assert!(outcome.coverage() > 0.5, "coverage {}", outcome.coverage());
        let err = (outcome.report.total_cycles as f64 - live.total_cycles as f64).abs()
            / live.total_cycles as f64;
        assert!(err < 0.15, "cycle error {err}");
        assert_eq!(outcome.report.total_instructions, live.total_instructions);
    }

    #[test]
    fn replay_is_deterministic() {
        let (trace, _) = recorded();
        let run = || {
            ReplaySim::new(&trace, AccelConfig::with_strategy(RelearnStrategy::Eager))
                .unwrap()
                .run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.report.total_cycles, b.report.total_cycles);
        assert_eq!(a.report.intervals, b.report.intervals);
        assert_eq!(a.stats.relearn_events(), b.stats.relearn_events());
        assert_eq!(a.clusters_per_service, b.clusters_per_service);
    }

    #[test]
    fn summaryless_trace_is_rejected() {
        let (mut trace, _) = recorded();
        trace.summary = None;
        let err = ReplaySim::new(&trace, AccelConfig::default())
            .err()
            .expect("must fail");
        assert_eq!(err.code, "OSPT013");
    }

    #[test]
    fn non_detailed_trace_is_rejected() {
        let (mut trace, _) = recorded();
        let predicted = trace
            .intervals()
            .next()
            .map(|r| IntervalRecord {
                source: IntervalSource::Predicted,
                ..*r
            })
            .expect("trace has intervals");
        trace.events.push(TraceEvent::Predicted(predicted));
        let err = ReplaySim::new(&trace, AccelConfig::default())
            .err()
            .expect("must fail");
        assert_eq!(err.code, "OSPT015");
    }
}

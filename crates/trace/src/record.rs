//! One-call recording of a detailed run.
//!
//! Recording always captures a *detailed* run (every interval fully
//! simulated): that is the strategy-independent ground truth any
//! [`crate::ReplaySim`] configuration can be evaluated against. Recording
//! an accelerated run would bake one predictor's choices — and its
//! pollution feedback — into the trace, making it useless for ablations.

use osprey_sim::{FullSystemSim, RunReport, SimConfig};

use crate::event::{TraceMeta, TraceSummary};
use crate::reader::{Trace, TraceReader};
use crate::writer::{SharedSink, TraceWriter};

/// Runs `cfg` in full detail with a trace sink installed and returns the
/// sealed trace bytes alongside the live report.
///
/// # Panics
///
/// Panics if the configuration fails static program verification or if
/// `snapshot_every` is zero (same contract as [`FullSystemSim::new`]).
pub fn record_bytes(cfg: &SimConfig, snapshot_every: u64) -> (Vec<u8>, RunReport) {
    let meta = TraceMeta::from_config(cfg, snapshot_every);
    let mut sim = FullSystemSim::new(cfg.clone());
    sim.set_snapshot_every(snapshot_every);
    let sink = SharedSink::new(TraceWriter::new(&meta));
    sim.set_trace_sink(Box::new(sink.clone()));
    let report = sim.run_to_completion();
    drop(sim.take_trace_sink());
    let mut writer = sink.into_writer();
    writer.summary(&TraceSummary::from_report(&report));
    (writer.finish(), report)
}

/// Like [`record_bytes`] but returns the decoded [`Trace`], round-tripped
/// through the wire format so callers exercise exactly what a reader of
/// the file would see.
pub fn record_run(cfg: &SimConfig, snapshot_every: u64) -> (Trace, RunReport) {
    let (bytes, report) = record_bytes(cfg, snapshot_every);
    let trace = TraceReader::from_bytes(&bytes).expect("a just-encoded trace decodes");
    (trace, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use osprey_workloads::Benchmark;

    fn cfg() -> SimConfig {
        SimConfig::new(Benchmark::Du).with_scale(0.02).with_seed(3)
    }

    #[test]
    fn recording_is_byte_identical_across_runs() {
        let (a, _) = record_bytes(&cfg(), 64);
        let (b, _) = record_bytes(&cfg(), 64);
        assert_eq!(a, b, "recording the same config must be deterministic");
    }

    #[test]
    fn recorded_events_mirror_the_report() {
        let (trace, report) = record_run(&cfg(), 64);
        assert_eq!(trace.intervals().count(), report.intervals.len());
        let invocations = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Invocation { .. }))
            .count();
        assert_eq!(invocations, report.intervals.len());
        let summary = trace.summary.as_ref().expect("completed recording");
        assert_eq!(summary.total_cycles, report.total_cycles);
        assert_eq!(summary.total_instructions, report.total_instructions);
        for (recorded, live) in trace.intervals().zip(&report.intervals) {
            assert_eq!(recorded, live);
        }
    }

    #[test]
    fn snapshots_follow_the_configured_cadence() {
        let (sparse, _) = record_run(&cfg(), 1024);
        let (dense, _) = record_run(&cfg(), 8);
        let count = |t: &Trace| {
            t.events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Snapshot(_)))
                .count()
        };
        assert!(count(&dense) > count(&sparse));
    }
}

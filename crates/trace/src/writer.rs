//! Streaming trace encoding.
//!
//! A [`TraceWriter`] encodes events incrementally into an in-memory
//! buffer; [`TraceWriter::finish`] seals the stream with the terminator
//! record and the SplitMix64 checksum. [`SharedSink`] adapts a writer to
//! the simulator's [`TraceSink`] interface while keeping it recoverable:
//!
//! ```
//! use osprey_sim::{FullSystemSim, SimConfig, DEFAULT_SNAPSHOT_EVERY};
//! use osprey_trace::{SharedSink, TraceMeta, TraceReader, TraceSummary, TraceWriter};
//! use osprey_workloads::Benchmark;
//!
//! let cfg = SimConfig::new(Benchmark::Du).with_scale(0.02).with_seed(3);
//! let meta = TraceMeta::from_config(&cfg, DEFAULT_SNAPSHOT_EVERY);
//! let mut sim = FullSystemSim::new(cfg);
//! let sink = SharedSink::new(TraceWriter::new(&meta));
//! sim.set_trace_sink(Box::new(sink.clone()));
//! let report = sim.run_to_completion();
//! drop(sim.take_trace_sink()); // release the simulator's handle
//! let mut writer = sink.into_writer();
//! writer.summary(&TraceSummary::from_report(&report));
//! let bytes = writer.finish();
//! let trace = TraceReader::from_bytes(&bytes).unwrap();
//! assert_eq!(trace.intervals().count(), report.intervals.len());
//! ```

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

use osprey_isa::ServiceId;
use osprey_report::Diagnostic;
use osprey_sim::{CounterSnapshot, IntervalRecord, TraceSink};

use crate::codes;
use crate::event::{TraceEvent, TraceMeta, TraceSummary};
use crate::wire;

/// Encodes a trace stream event by event.
pub struct TraceWriter {
    buf: Vec<u8>,
    events: u64,
}

impl TraceWriter {
    /// Starts a stream: magic, version, and the run metadata header.
    pub fn new(meta: &TraceMeta) -> Self {
        let mut buf = Vec::with_capacity(4 << 10);
        buf.extend_from_slice(&wire::MAGIC);
        wire::put_u16(&mut buf, wire::VERSION);
        meta.encode(&mut buf);
        Self { buf, events: 0 }
    }

    /// Appends an arbitrary event.
    pub fn event(&mut self, event: &TraceEvent) {
        event.encode(&mut self.buf);
        self.events += 1;
    }

    /// Appends an invocation event.
    pub fn invocation(&mut self, service: ServiceId, instructions: u64) {
        self.event(&TraceEvent::Invocation {
            service,
            instructions,
        });
    }

    /// Appends a simulated-interval event.
    pub fn simulated(&mut self, record: &IntervalRecord) {
        self.event(&TraceEvent::Simulated(*record));
    }

    /// Appends a predicted-interval event.
    pub fn predicted(&mut self, record: &IntervalRecord) {
        self.event(&TraceEvent::Predicted(*record));
    }

    /// Appends an accelerator-decision event.
    pub fn decision(
        &mut self,
        service: ServiceId,
        predicted: bool,
        cluster: Option<u32>,
        confidence: f64,
    ) {
        self.event(&TraceEvent::Decision {
            service,
            predicted,
            cluster,
            confidence,
        });
    }

    /// Appends a counter-snapshot event.
    pub fn snapshot(&mut self, snapshot: &CounterSnapshot) {
        self.event(&TraceEvent::Snapshot(*snapshot));
    }

    /// Appends the end-of-run summary record.
    pub fn summary(&mut self, summary: &TraceSummary) {
        summary.encode(&mut self.buf);
        self.events += 1;
    }

    /// Events written so far.
    pub fn event_count(&self) -> u64 {
        self.events
    }

    /// Seals the stream (terminator record + checksum) and returns the
    /// encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        wire::put_u8(&mut self.buf, crate::event::TAG_END);
        wire::put_u64(&mut self.buf, self.events);
        let sum = wire::checksum(&self.buf);
        wire::put_u64(&mut self.buf, sum);
        self.buf
    }

    /// Seals the stream and writes it to `path` (parent directories are
    /// created). I/O failures are `OSPT007` diagnostics.
    pub fn write_to(self, path: &Path) -> Result<(), Diagnostic> {
        let bytes = self.finish();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| codes::io(parent, &e))?;
            }
        }
        std::fs::write(path, bytes).map_err(|e| codes::io(path, &e))
    }
}

/// A cloneable [`TraceSink`] handle over a shared [`TraceWriter`].
///
/// The simulator owns its sink as a `Box<dyn TraceSink>`, which would
/// strand the writer inside the box; sharing it through `Rc<RefCell<_>>`
/// lets the recorder keep a handle, append run-level records (decisions,
/// the summary), and recover the writer when the run ends. Single-thread
/// only, like the simulator itself.
#[derive(Clone)]
pub struct SharedSink(Rc<RefCell<TraceWriter>>);

impl SharedSink {
    /// Wraps a writer for sharing.
    pub fn new(writer: TraceWriter) -> Self {
        Self(Rc::new(RefCell::new(writer)))
    }

    /// Runs `f` against the shared writer (e.g. to append decision
    /// events from outside the simulator).
    pub fn with<R>(&self, f: impl FnOnce(&mut TraceWriter) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }

    /// Recovers the writer.
    ///
    /// # Panics
    ///
    /// Panics while other clones (e.g. the simulator's boxed sink) are
    /// still alive — take the sink out of the simulator first.
    pub fn into_writer(self) -> TraceWriter {
        match Rc::try_unwrap(self.0) {
            Ok(cell) => cell.into_inner(),
            Err(_) => panic!("trace writer is still shared; drop the simulator's sink first"),
        }
    }
}

impl TraceSink for SharedSink {
    fn on_invocation(&mut self, service: ServiceId, instructions: u64) {
        self.0.borrow_mut().invocation(service, instructions);
    }

    fn on_simulated(&mut self, record: &IntervalRecord) {
        self.0.borrow_mut().simulated(record);
    }

    fn on_predicted(&mut self, record: &IntervalRecord) {
        self.0.borrow_mut().predicted(record);
    }

    fn on_decision(
        &mut self,
        service: ServiceId,
        predicted: bool,
        cluster: Option<u32>,
        confidence: f64,
    ) {
        self.0
            .borrow_mut()
            .decision(service, predicted, cluster, confidence);
    }

    fn on_snapshot(&mut self, snapshot: &CounterSnapshot) {
        self.0.borrow_mut().snapshot(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osprey_sim::SimConfig;
    use osprey_workloads::Benchmark;

    fn meta() -> TraceMeta {
        TraceMeta::from_config(&SimConfig::new(Benchmark::Du).with_scale(0.02), 64)
    }

    #[test]
    fn finish_appends_end_record_and_checksum() {
        let mut w = TraceWriter::new(&meta());
        w.invocation(ServiceId::SysRead, 100);
        assert_eq!(w.event_count(), 1);
        let bytes = w.finish();
        // Trailer: tag(1) + count(8) + checksum(8).
        let trailer = &bytes[bytes.len() - 17..];
        assert_eq!(trailer[0], crate::event::TAG_END);
        assert_eq!(u64::from_le_bytes(trailer[1..9].try_into().unwrap()), 1);
        let stored = u64::from_le_bytes(trailer[9..].try_into().unwrap());
        assert_eq!(stored, wire::checksum(&bytes[..bytes.len() - 8]));
    }

    #[test]
    fn identical_streams_encode_identically() {
        let build = || {
            let mut w = TraceWriter::new(&meta());
            w.invocation(ServiceId::SysOpen, 420);
            w.decision(ServiceId::SysOpen, false, None, 0.0);
            w.finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn shared_sink_recovers_the_writer() {
        let sink = SharedSink::new(TraceWriter::new(&meta()));
        let mut boxed: Box<dyn TraceSink> = Box::new(sink.clone());
        boxed.on_invocation(ServiceId::SysRead, 7);
        drop(boxed);
        sink.with(|w| w.decision(ServiceId::SysRead, false, None, 0.0));
        let writer = sink.into_writer();
        assert_eq!(writer.event_count(), 2);
    }

    #[test]
    #[should_panic(expected = "still shared")]
    fn into_writer_panics_while_shared() {
        let sink = SharedSink::new(TraceWriter::new(&meta()));
        let _other = sink.clone();
        sink.into_writer();
    }
}

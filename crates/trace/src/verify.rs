//! Structural verification of decoded traces (the `OSPT01x` range).
//!
//! Decoding ([`crate::TraceReader`]) already guarantees the envelope:
//! magic, version, checksum, record syntax, known identifiers. The checks
//! here are semantic — properties any honestly recorded run satisfies:
//!
//! * `OSPT010` — interval sequence numbers strictly increase;
//! * `OSPT011` — an interval's service matches the invocation it follows;
//! * `OSPT012` — no prediction for a service before at least one of its
//!   intervals was simulated (a learning window must come first);
//! * `OSPT013` — (warning) no summary record: the recording was cut off;
//! * `OSPT014` — every invocation is closed by an interval record before
//!   the next invocation begins.

use std::collections::BTreeSet;

use osprey_isa::ServiceId;
use osprey_report::Diagnostic;

use crate::event::TraceEvent;
use crate::reader::Trace;

/// Runs every structural check and returns all findings (empty = clean).
pub fn verify_trace(trace: &Trace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut last_seq: Option<u64> = None;
    let mut open_invocation: Option<(usize, ServiceId)> = None;
    let mut simulated_services: BTreeSet<ServiceId> = BTreeSet::new();

    for (idx, event) in trace.events.iter().enumerate() {
        match event {
            TraceEvent::Invocation { service, .. } => {
                if let Some((at, open)) = open_invocation.take() {
                    diags.push(Diagnostic::error(
                        "OSPT014",
                        format!("event[{at}]"),
                        format!(
                            "invocation of {} has no interval record before the next invocation",
                            open.name()
                        ),
                    ));
                }
                open_invocation = Some((idx, *service));
            }
            TraceEvent::Simulated(r) | TraceEvent::Predicted(r) => {
                if let Some(last) = last_seq {
                    if r.seq <= last {
                        diags.push(Diagnostic::error(
                            "OSPT010",
                            format!("event[{idx}]"),
                            format!("interval seq {} does not increase past {last}", r.seq),
                        ));
                    }
                }
                last_seq = Some(r.seq);
                match open_invocation.take() {
                    Some((_, open)) if open != r.service => diags.push(Diagnostic::error(
                        "OSPT011",
                        format!("event[{idx}]"),
                        format!(
                            "interval service {} disagrees with invocation {}",
                            r.service.name(),
                            open.name()
                        ),
                    )),
                    _ => {}
                }
                if matches!(event, TraceEvent::Simulated(_)) {
                    simulated_services.insert(r.service);
                } else if !simulated_services.contains(&r.service) {
                    diags.push(Diagnostic::error(
                        "OSPT012",
                        format!("event[{idx}]"),
                        format!(
                            "{} predicted before any learning window simulated it",
                            r.service.name()
                        ),
                    ));
                }
            }
            TraceEvent::Decision {
                service, predicted, ..
            } => {
                if *predicted && !simulated_services.contains(service) {
                    diags.push(Diagnostic::error(
                        "OSPT012",
                        format!("event[{idx}]"),
                        format!(
                            "predict decision for {} before any learning window simulated it",
                            service.name()
                        ),
                    ));
                }
            }
            TraceEvent::Snapshot(_) => {}
        }
    }
    if let Some((at, open)) = open_invocation {
        diags.push(Diagnostic::error(
            "OSPT014",
            format!("event[{at}]"),
            format!(
                "invocation of {} has no interval record before end of trace",
                open.name()
            ),
        ));
    }
    if trace.summary.is_none() {
        diags.push(Diagnostic::warning(
            "OSPT013",
            "trace",
            "no summary record: the recording did not run to completion",
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::record_run;
    use osprey_sim::interval::IntervalSource;
    use osprey_sim::{IntervalRecord, SimConfig};
    use osprey_workloads::Benchmark;

    fn recorded() -> Trace {
        let cfg = SimConfig::new(Benchmark::Du).with_scale(0.02).with_seed(3);
        record_run(&cfg, 64).0
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn honest_recordings_verify_clean() {
        assert_eq!(verify_trace(&recorded()), vec![]);
    }

    #[test]
    fn non_monotonic_seq_is_ospt010() {
        let mut trace = recorded();
        // Duplicate an early interval event at the end of the stream.
        let dup = *trace.intervals().next().expect("has intervals");
        // Close the stream's open structure legally first: append its
        // invocation, then the stale interval.
        trace.events.push(TraceEvent::Invocation {
            service: dup.service,
            instructions: dup.instructions,
        });
        trace.events.push(TraceEvent::Simulated(dup));
        assert!(codes(&verify_trace(&trace)).contains(&"OSPT010"));
    }

    #[test]
    fn mismatched_invocation_is_ospt011() {
        let mut trace = recorded();
        let mut wrong: Option<ServiceId> = None;
        for event in &mut trace.events {
            if let TraceEvent::Invocation { service, .. } = event {
                wrong = Some(*service);
                *service = if *service == ServiceId::SysRead {
                    ServiceId::SysWrite
                } else {
                    ServiceId::SysRead
                };
                break;
            }
        }
        assert!(wrong.is_some());
        assert!(codes(&verify_trace(&trace)).contains(&"OSPT011"));
    }

    #[test]
    fn prediction_before_learning_is_ospt012() {
        let mut trace = recorded();
        let sample = *trace.intervals().next().expect("has intervals");
        let alien = IntervalRecord {
            service: ServiceId::SysIpc, // du never invokes IPC
            seq: 0,
            source: IntervalSource::Predicted,
            ..sample
        };
        trace.events.insert(0, TraceEvent::Predicted(alien));
        trace.events.insert(
            0,
            TraceEvent::Invocation {
                service: ServiceId::SysIpc,
                instructions: alien.instructions,
            },
        );
        assert!(codes(&verify_trace(&trace)).contains(&"OSPT012"));
    }

    #[test]
    fn dangling_invocation_is_ospt014() {
        let mut trace = recorded();
        trace.events.push(TraceEvent::Invocation {
            service: ServiceId::SysBrk,
            instructions: 1,
        });
        assert!(codes(&verify_trace(&trace)).contains(&"OSPT014"));
    }

    #[test]
    fn missing_summary_is_an_ospt013_warning() {
        let mut trace = recorded();
        trace.summary = None;
        let diags = verify_trace(&trace);
        assert!(codes(&diags).contains(&"OSPT013"));
        assert!(diags.iter().all(|d| !d.is_error() || d.code != "OSPT013"));
    }
}

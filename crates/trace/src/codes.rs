//! The `OSPT0xx` diagnostic range: typed errors for trace decoding,
//! structural verification, and checkpoint restore.
//!
//! Following the workspace convention (`OSPVxxx` for the static program
//! verifier, `OSPRxxx` for the report layer), the trace subsystem owns
//! `OSPT001`–`OSPT099`:
//!
//! | code     | meaning                                               |
//! |----------|-------------------------------------------------------|
//! | OSPT001  | bad magic — not a trace/checkpoint file               |
//! | OSPT002  | truncated — data ran out mid-record                   |
//! | OSPT003  | checksum mismatch — corrupted content                 |
//! | OSPT004  | version skew — produced by a different format version |
//! | OSPT005  | malformed record (unknown tag, bad UTF-8, bad enum)   |
//! | OSPT006  | unknown service / benchmark / core-model identifier   |
//! | OSPT007  | I/O error reading or writing the file                 |
//! | OSPT008  | event count disagrees with the end-of-stream record   |
//! | OSPT010  | interval sequence numbers are not strictly increasing |
//! | OSPT011  | interval service disagrees with its invocation event  |
//! | OSPT012  | prediction precedes the first learning window         |
//! | OSPT013  | no summary record (replay impossible)                 |
//! | OSPT014  | invocation without a matching interval record         |
//! | OSPT015  | trace is not a detailed recording (replay impossible) |
//! | OSPT020  | checkpoint probe mismatch on restore                  |
//! | OSPT021  | checkpoint boundary lies beyond the end of the run    |

use osprey_report::Diagnostic;

/// OSPT001: the stream does not start with the expected magic.
pub fn bad_magic(expected: &[u8; 4], got: &[u8]) -> Diagnostic {
    Diagnostic::error(
        "OSPT001",
        "byte 0",
        format!(
            "bad magic: expected {:?}, found {:?}",
            String::from_utf8_lossy(expected),
            String::from_utf8_lossy(got)
        ),
    )
}

/// OSPT002: the stream ended in the middle of a record.
pub fn truncated(at: usize, wanted: usize, available: usize) -> Diagnostic {
    Diagnostic::error(
        "OSPT002",
        format!("byte {at}"),
        format!("truncated stream: needed {wanted} more bytes, {available} available"),
    )
}

/// OSPT003: the trailing checksum does not match the content.
pub fn checksum_mismatch(expected: u64, computed: u64) -> Diagnostic {
    Diagnostic::error(
        "OSPT003",
        "checksum",
        format!("checksum mismatch: stored {expected:#018x}, computed {computed:#018x}"),
    )
}

/// OSPT004: the file was produced by a different format version.
pub fn version_skew(found: u16, supported: u16) -> Diagnostic {
    Diagnostic::error(
        "OSPT004",
        "header",
        format!("format version {found} is not supported (this build reads version {supported})"),
    )
}

/// OSPT005: a structurally malformed record.
pub fn malformed(at: usize, what: &str) -> Diagnostic {
    Diagnostic::error("OSPT005", format!("byte {at}"), what.to_string())
}

/// OSPT006: an identifier that decodes to nothing in this build.
pub fn unknown_id(at: usize, kind: &str, value: impl std::fmt::Display) -> Diagnostic {
    Diagnostic::error(
        "OSPT006",
        format!("byte {at}"),
        format!("unknown {kind}: {value}"),
    )
}

/// OSPT007: an I/O failure while reading or writing a file.
pub fn io(path: &std::path::Path, err: &std::io::Error) -> Diagnostic {
    Diagnostic::error("OSPT007", path.display().to_string(), err.to_string())
}

/// OSPT008: the end-of-stream record counted a different number of
/// events than the stream contains.
pub fn count_mismatch(declared: u64, decoded: u64) -> Diagnostic {
    Diagnostic::error(
        "OSPT008",
        "end record",
        format!("event count mismatch: end record declares {declared}, decoded {decoded}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_in_the_ospt_range() {
        let diags = [
            bad_magic(b"OSPT", b"ELF\x7f"),
            truncated(12, 8, 3),
            checksum_mismatch(1, 2),
            version_skew(9, 1),
            malformed(0, "x"),
            unknown_id(4, "service", 250),
            io(
                std::path::Path::new("/nope"),
                &std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
            ),
            count_mismatch(10, 9),
        ];
        for d in &diags {
            assert!(d.code.starts_with("OSPT00"), "{}", d.code);
            assert!(d.is_error());
        }
    }
}

//! Interval-boundary checkpointing.
//!
//! A [`Checkpoint`] captures, at an OS-service interval boundary, the
//! run's *recipe* (the [`TraceMeta`] configuration), its *position* (how
//! many intervals have executed since cold boot, warm-up included), and a
//! *probe* of every externally observable counter — core counters, the
//! cache-hierarchy counter summary, the kernel-driven instruction stream
//! position, and the pollution RNG stream position
//! ([`osprey_sim::MachineProbe`]).
//!
//! Osprey's machine state is fully determined by `(recipe, position)`
//! because every source of randomness is explicitly seeded, so restore
//! rebuilds the cold machine and re-executes deterministically to the
//! boundary — the checkpoint-via-deterministic-replay design gem5-style
//! simulators use for portable checkpoints. The probe then *verifies*
//! the reconstruction: if any counter disagrees, the checkpoint was
//! taken from a different build or configuration and restore fails with
//! a typed `OSPT020` diagnostic instead of silently resuming a different
//! run.

use std::path::Path;

use osprey_mem::{CacheStats, HierarchySnapshot};
use osprey_report::Diagnostic;
use osprey_sim::{FullSystemSim, MachineProbe, SimConfig};

use crate::codes;
use crate::event::TraceMeta;
use crate::reader::validate_envelope;
use crate::wire::{self, Cursor};

/// A serializable interval-boundary checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The run's configuration recipe.
    pub meta: TraceMeta,
    /// The machine's counters at the boundary (includes the interval
    /// position `probe.seq`).
    pub probe: MachineProbe,
}

impl Checkpoint {
    /// Captures a checkpoint of `sim` at its current interval boundary.
    ///
    /// Call between [`FullSystemSim::execute_service`] invocations (or
    /// before/after a run); capturing mid-interval is impossible by
    /// construction since the driver API only yields at boundaries.
    pub fn capture(sim: &FullSystemSim) -> Self {
        Self {
            meta: TraceMeta::from_config(sim.config(), osprey_sim::DEFAULT_SNAPSHOT_EVERY),
            probe: sim.probe(),
        }
    }

    /// The interval position (intervals executed since cold boot).
    pub fn seq(&self) -> u64 {
        self.probe.seq
    }

    /// Encodes the checkpoint (magic `OSPC`, version, meta, probe,
    /// checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&wire::CHECKPOINT_MAGIC);
        wire::put_u16(&mut buf, wire::VERSION);
        self.meta.encode(&mut buf);
        let p = &self.probe;
        wire::put_u64(&mut buf, p.seq);
        wire::put_u64(&mut buf, p.items_consumed);
        wire::put_u64(&mut buf, p.instret);
        wire::put_u64(&mut buf, p.user_instructions);
        wire::put_u64(&mut buf, p.os_instructions);
        wire::put_u64(&mut buf, p.total_cycles);
        wire::put_u64(&mut buf, p.user_blocks);
        put_hierarchy(&mut buf, &p.caches);
        wire::put_u64(&mut buf, p.pollution_rng);
        let sum = wire::checksum(&buf);
        wire::put_u64(&mut buf, sum);
        buf
    }

    /// Decodes and validates a checkpoint stream.
    pub fn decode(bytes: &[u8]) -> Result<Self, Diagnostic> {
        let payload = validate_envelope(bytes, &wire::CHECKPOINT_MAGIC)?;
        let mut c = Cursor::new(payload);
        c.u32()?; // magic
        c.u16()?; // version
        let meta = TraceMeta::decode(&mut c)?;
        let probe = MachineProbe {
            seq: c.u64()?,
            items_consumed: c.u64()?,
            instret: c.u64()?,
            user_instructions: c.u64()?,
            os_instructions: c.u64()?,
            total_cycles: c.u64()?,
            user_blocks: c.u64()?,
            caches: get_hierarchy(&mut c)?,
            pollution_rng: c.u64()?,
        };
        if c.remaining() != 0 {
            return Err(codes::malformed(
                c.pos(),
                &format!("{} trailing bytes after probe", c.remaining()),
            ));
        }
        Ok(Self { meta, probe })
    }

    /// Writes the encoded checkpoint to `path`.
    pub fn write_to(&self, path: &Path) -> Result<(), Diagnostic> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| codes::io(parent, &e))?;
            }
        }
        std::fs::write(path, self.encode()).map_err(|e| codes::io(path, &e))
    }

    /// Reads and decodes a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, Diagnostic> {
        let bytes = std::fs::read(path).map_err(|e| codes::io(path, &e))?;
        Self::decode(&bytes)
    }

    /// Restores a machine at this checkpoint's boundary.
    ///
    /// Rebuilds the cold machine from the recipe, re-executes
    /// `probe.seq` intervals deterministically, and verifies every
    /// counter against the stored probe. Continuing the returned machine
    /// produces a run indistinguishable from one that was never
    /// checkpointed.
    pub fn restore(&self) -> Result<FullSystemSim, Diagnostic> {
        let cfg: SimConfig = self.meta.sim_config();
        let mut sim = FullSystemSim::try_new(cfg).map_err(|diags| {
            diags.into_iter().next().unwrap_or_else(|| {
                Diagnostic::error("OSPT020", "checkpoint", "program failed verification")
            })
        })?;
        while sim.probe().seq < self.probe.seq {
            let Some(inv) = sim.advance_to_service() else {
                return Err(Diagnostic::error(
                    "OSPT021",
                    "checkpoint",
                    format!(
                        "boundary seq {} lies beyond the end of the run (reached {})",
                        self.probe.seq,
                        sim.probe().seq
                    ),
                ));
            };
            sim.execute_service(&inv);
        }
        let reached = sim.probe();
        if reached != self.probe {
            return Err(Diagnostic::error(
                "OSPT020",
                "checkpoint",
                format!(
                    "probe mismatch at seq {}: stored {:?}, reconstructed {:?}",
                    self.probe.seq, self.probe, reached
                ),
            ));
        }
        Ok(sim)
    }
}

fn put_hierarchy(buf: &mut Vec<u8>, h: &HierarchySnapshot) {
    for s in [&h.l1i, &h.l1d, &h.l2] {
        wire::put_u64(buf, s.app_accesses);
        wire::put_u64(buf, s.app_misses);
        wire::put_u64(buf, s.os_accesses);
        wire::put_u64(buf, s.os_misses);
        wire::put_u64(buf, s.writebacks);
    }
}

fn get_hierarchy(c: &mut Cursor<'_>) -> Result<HierarchySnapshot, Diagnostic> {
    let mut levels = [CacheStats::default(); 3];
    for level in &mut levels {
        *level = CacheStats {
            app_accesses: c.u64()?,
            app_misses: c.u64()?,
            os_accesses: c.u64()?,
            os_misses: c.u64()?,
            writebacks: c.u64()?,
        };
    }
    Ok(HierarchySnapshot {
        l1i: levels[0],
        l1d: levels[1],
        l2: levels[2],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use osprey_workloads::Benchmark;

    fn cfg() -> SimConfig {
        SimConfig::new(Benchmark::Du).with_scale(0.02).with_seed(3)
    }

    fn run_partial(intervals: u64) -> FullSystemSim {
        let mut sim = FullSystemSim::new(cfg());
        for _ in 0..intervals {
            let inv = sim.advance_to_service().expect("short prefix");
            sim.execute_service(&inv);
        }
        sim
    }

    #[test]
    fn checkpoint_round_trips_through_bytes() {
        let sim = run_partial(25);
        let ck = Checkpoint::capture(&sim);
        let decoded = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(decoded, ck);
    }

    #[test]
    fn corrupted_checkpoint_is_rejected() {
        let ck = Checkpoint::capture(&run_partial(5));
        let mut bytes = ck.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        assert_eq!(Checkpoint::decode(&bytes).unwrap_err().code, "OSPT003");
        let trace_magic_mixup = {
            let mut b = ck.encode();
            b[..4].copy_from_slice(&wire::MAGIC);
            b
        };
        assert_eq!(
            Checkpoint::decode(&trace_magic_mixup).unwrap_err().code,
            "OSPT001"
        );
    }

    #[test]
    fn restore_reaches_the_same_probe() {
        let sim = run_partial(25);
        let ck = Checkpoint::capture(&sim);
        let restored = ck.restore().unwrap();
        assert_eq!(restored.probe(), sim.probe());
    }

    #[test]
    fn restore_then_continue_matches_uninterrupted_run() {
        let uninterrupted = FullSystemSim::new(cfg()).run_to_completion();
        let ck = Checkpoint::capture(&run_partial(30));
        let mut resumed = ck.restore().unwrap();
        let finished = resumed.run_to_completion();
        assert_eq!(finished.total_cycles, uninterrupted.total_cycles);
        assert_eq!(
            finished.total_instructions,
            uninterrupted.total_instructions
        );
        assert_eq!(finished.caches, uninterrupted.caches);
        assert_eq!(finished.intervals, uninterrupted.intervals);
    }

    #[test]
    fn stale_probe_fails_with_ospt020() {
        let mut ck = Checkpoint::capture(&run_partial(10));
        ck.probe.total_cycles += 1;
        assert_eq!(ck.restore().err().expect("must fail").code, "OSPT020");
    }

    #[test]
    fn unreachable_boundary_fails_with_ospt021() {
        let mut ck = Checkpoint::capture(&run_partial(10));
        ck.probe.seq = u64::MAX;
        assert_eq!(ck.restore().err().expect("must fail").code, "OSPT021");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("osprey-trace-ck-test");
        let path = dir.join("ck.ospc");
        let ck = Checkpoint::capture(&run_partial(5));
        ck.write_to(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

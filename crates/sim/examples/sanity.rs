//! Quick sanity sweep: runs every benchmark in detailed full-system and
//! app-only modes at quarter scale and prints headline metrics (OS
//! fraction, IPC, L2 miss behavior, simulation throughput).

use osprey_sim::{FullSystemSim, OsMode, SimConfig};
use osprey_workloads::Benchmark;
use std::time::Instant;

fn main() {
    for b in Benchmark::ALL {
        let t = Instant::now();
        let cfg = SimConfig::new(b).with_scale(0.25);
        let r = FullSystemSim::new(cfg).run_to_completion();
        let dt = t.elapsed().as_secs_f64();
        let app = FullSystemSim::new(
            SimConfig::new(b)
                .with_scale(0.25)
                .with_os_mode(OsMode::AppOnly),
        )
        .run_to_completion();
        println!(
            "{:8} instr={:>10} osfrac={:.2} ipc={:.3} l2mr={:.4} | app: instr={:>9} ipc={:.3} l2miss_ratio={:.1} exec_ratio={:.1} | {:.1}s {:.1}M i/s intervals={}",
            r.benchmark, r.total_instructions, r.os_fraction(), r.ipc(), r.l2_miss_rate(),
            app.total_instructions, app.ipc(),
            r.l2_misses() as f64 / app.l2_misses().max(1) as f64,
            r.total_cycles as f64 / app.total_cycles.max(1) as f64,
            dt, r.total_instructions as f64 / dt / 1e6, r.intervals.len()
        );
    }
}

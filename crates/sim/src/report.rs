//! Run reports and per-service aggregation.

use std::time::Duration;

use osprey_isa::ServiceId;
use osprey_mem::HierarchySnapshot;
use osprey_stats::Streaming;

use crate::interval::IntervalRecord;

/// Everything a finished (or in-progress) run can tell you.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Core-model label the run used.
    pub mode: String,
    /// Total retired instructions (user + OS).
    pub total_instructions: u64,
    /// User-mode instructions.
    pub user_instructions: u64,
    /// Kernel-mode instructions.
    pub os_instructions: u64,
    /// Total cycles (detailed plus predicted).
    pub total_cycles: u64,
    /// Cache counters including predicted contributions.
    pub caches: HierarchySnapshot,
    /// Cache counters from detailed simulation only.
    pub measured_caches: HierarchySnapshot,
    /// Every OS service interval, in execution order.
    pub intervals: Vec<IntervalRecord>,
    /// Host wall-clock time the run took.
    pub wall: Duration,
}

/// Aggregated behavior of one OS service across a run — a row of the
/// paper's Fig. 3.
#[derive(Debug, Clone)]
pub struct ServiceSummary {
    /// The service.
    pub service: ServiceId,
    /// Number of intervals observed.
    pub count: u64,
    /// Cycle statistics across intervals.
    pub cycles: Streaming,
    /// IPC statistics across intervals.
    pub ipc: Streaming,
    /// Instruction-count statistics across intervals.
    pub instructions: Streaming,
}

impl RunReport {
    /// Overall instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.total_instructions as f64 / self.total_cycles as f64
        }
    }

    /// Fraction of retired instructions executed in kernel mode
    /// (the paper reports 67–99 % for its OS-intensive applications).
    pub fn os_fraction(&self) -> f64 {
        if self.total_instructions == 0 {
            0.0
        } else {
            self.os_instructions as f64 / self.total_instructions as f64
        }
    }

    /// Cycles spent in OS service intervals.
    pub fn os_cycles(&self) -> u64 {
        self.intervals.iter().map(|r| r.cycles).sum()
    }

    /// L1 instruction-cache miss rate (including predicted activity).
    pub fn l1i_miss_rate(&self) -> f64 {
        self.caches.l1i.miss_rate()
    }

    /// L1 data-cache miss rate (including predicted activity).
    pub fn l1d_miss_rate(&self) -> f64 {
        self.caches.l1d.miss_rate()
    }

    /// Unified L2 miss rate (including predicted activity).
    pub fn l2_miss_rate(&self) -> f64 {
        self.caches.l2.miss_rate()
    }

    /// Total L2 misses (including predicted activity).
    pub fn l2_misses(&self) -> u64 {
        self.caches.l2.misses()
    }

    /// Per-service aggregation across all intervals, ordered by service
    /// index; services that never occurred are omitted.
    pub fn service_summaries(&self) -> Vec<ServiceSummary> {
        let mut map: std::collections::BTreeMap<ServiceId, ServiceSummary> = Default::default();
        for r in &self.intervals {
            let entry = map.entry(r.service).or_insert_with(|| ServiceSummary {
                service: r.service,
                count: 0,
                cycles: Streaming::new(),
                ipc: Streaming::new(),
                instructions: Streaming::new(),
            });
            entry.count += 1;
            entry.cycles.push(r.cycles as f64);
            entry.ipc.push(r.ipc());
            entry.instructions.push(r.instructions as f64);
        }
        map.into_values().collect()
    }

    /// The per-invocation cycle timeline of one service (the paper's
    /// Fig. 4 series for `sys_read`).
    pub fn service_timeline(&self, service: ServiceId) -> Vec<u64> {
        self.intervals
            .iter()
            .filter(|r| r.service == service)
            .map(|r| r.cycles)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::IntervalSource;

    fn report_with(intervals: Vec<IntervalRecord>) -> RunReport {
        RunReport {
            benchmark: "test".into(),
            mode: "ooo-cache".into(),
            total_instructions: 1_000,
            user_instructions: 400,
            os_instructions: 600,
            total_cycles: 2_000,
            caches: HierarchySnapshot::default(),
            measured_caches: HierarchySnapshot::default(),
            intervals,
            wall: Duration::from_millis(1),
        }
    }

    fn rec(service: ServiceId, instr: u64, cycles: u64) -> IntervalRecord {
        IntervalRecord {
            service,
            path: "p",
            seq: 0,
            invocation: 0,
            instructions: instr,
            loads: 0,
            stores: 0,
            branches: 0,
            cycles,
            caches: HierarchySnapshot::default(),
            source: IntervalSource::Simulated,
        }
    }

    #[test]
    fn scalar_metrics() {
        let r = report_with(vec![]);
        assert_eq!(r.ipc(), 0.5);
        assert_eq!(r.os_fraction(), 0.6);
        assert_eq!(r.os_cycles(), 0);
    }

    #[test]
    fn summaries_group_by_service() {
        let r = report_with(vec![
            rec(ServiceId::SysRead, 100, 500),
            rec(ServiceId::SysRead, 200, 900),
            rec(ServiceId::SysOpen, 50, 100),
        ]);
        let summaries = r.service_summaries();
        assert_eq!(summaries.len(), 2);
        let read = summaries
            .iter()
            .find(|s| s.service == ServiceId::SysRead)
            .unwrap();
        assert_eq!(read.count, 2);
        assert_eq!(read.cycles.mean(), 700.0);
    }

    #[test]
    fn timeline_preserves_order() {
        let r = report_with(vec![
            rec(ServiceId::SysRead, 1, 10),
            rec(ServiceId::SysOpen, 1, 99),
            rec(ServiceId::SysRead, 1, 20),
        ]);
        assert_eq!(r.service_timeline(ServiceId::SysRead), vec![10, 20]);
    }
}

//! The simulated machine and its driver loop.

use std::time::Instant;

use osprey_cpu::Core;
use osprey_isa::{Privilege, ServiceId};
use osprey_mem::{Hierarchy, HierarchySnapshot};
use osprey_os::{Kernel, ServiceInvocation};
use osprey_stats::rng::SmallRng;
use osprey_workloads::{WorkItem, Workload};

use crate::config::{OsMode, SimConfig};
use crate::interval::{IntervalRecord, IntervalSource};
use crate::report::RunReport;
use crate::trace::{CounterSnapshot, TraceSink};

/// Default interval period between [`TraceSink::on_snapshot`] callbacks.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 64;

/// A point-in-time copy of the machine's externally observable counters,
/// taken at an interval boundary.
///
/// This is what interval checkpointing serializes (alongside the
/// [`SimConfig`] recipe) and what a restore verifies against: if a
/// rebuilt machine reaches the same boundary with a different probe,
/// the checkpoint does not describe this program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProbe {
    /// OS service intervals executed since cold boot (warm-up included).
    pub seq: u64,
    /// Workload items consumed since cold boot.
    pub items_consumed: u64,
    /// Total retired instructions.
    pub instret: u64,
    /// User-mode instructions.
    pub user_instructions: u64,
    /// Kernel-mode instructions.
    pub os_instructions: u64,
    /// Total cycles (detailed plus predicted).
    pub total_cycles: u64,
    /// User-mode blocks executed.
    pub user_blocks: u64,
    /// Cache counters.
    pub caches: HierarchySnapshot,
    /// Pollution RNG stream position.
    pub pollution_rng: u64,
}

/// The bound machine: core + caches + kernel + workload.
///
/// Drive it either with [`FullSystemSim::run_to_completion`] (plain
/// full-system or application-only simulation) or with the
/// advance/execute/emulate triple (accelerated simulation under an
/// external predictor).
pub struct FullSystemSim {
    cfg: SimConfig,
    core: Box<dyn Core>,
    mem: Hierarchy,
    kernel: Kernel,
    workload: Box<dyn Workload>,
    pollution_rng: SmallRng,
    /// Total retired (functional) instructions, user + OS, simulated +
    /// emulated.
    instret: u64,
    user_instructions: u64,
    os_instructions: u64,
    /// Cycles contributed by *predicted* (not simulated) intervals.
    extra_cycles: u64,
    /// Cache activity contributed by predicted intervals.
    extra_caches: HierarchySnapshot,
    user_blocks: u64,
    seq: u64,
    per_service: [u64; ServiceId::ALL.len()],
    records: Vec<IntervalRecord>,
    started: Instant,
    /// Workload items consumed so far (to detect the warm-up boundary).
    items_consumed: usize,
    /// Set once the warm-up region has been executed and measurement
    /// baselines captured.
    measuring: bool,
    base_cycles: u64,
    base_instret: u64,
    base_user: u64,
    base_os: u64,
    base_caches: HierarchySnapshot,
    pollution_enabled: bool,
    /// Optional trace-capture observer (measurement region only).
    sink: Option<Box<dyn TraceSink>>,
    /// Intervals between periodic snapshot events.
    snapshot_every: u64,
}

impl FullSystemSim {
    /// Builds a cold machine for the given configuration, first running
    /// the static verifier over the program the configuration expands to.
    ///
    /// # Panics
    ///
    /// Panics if verification reports errors; use
    /// [`FullSystemSim::try_new`] to handle diagnostics programmatically.
    pub fn new(cfg: SimConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(sim) => sim,
            Err(diags) => panic!(
                "program failed static verification:\n{}",
                osprey_report::diagnostics_table(&diags).render()
            ),
        }
    }

    /// Builds a cold machine, rejecting configurations whose expanded
    /// program fails static verification.
    ///
    /// The workload/kernel expansion is deterministic, so the verified
    /// program is exactly the one the machine will execute. Warnings are
    /// tolerated; any error-severity diagnostic rejects the program.
    pub fn try_new(cfg: SimConfig) -> Result<Self, Vec<osprey_report::Diagnostic>> {
        let mut workload = cfg.benchmark.instantiate_scaled(cfg.seed, cfg.scale);
        let mut kernel = Kernel::with_config(cfg.kernel, cfg.seed);
        let program = osprey_verify::program_for_workload(
            cfg.benchmark.name(),
            workload.as_mut(),
            &mut kernel,
            cfg.seed,
        );
        let diags = osprey_verify::verify(&program);
        if diags.iter().any(|d| d.is_error()) {
            return Err(diags);
        }
        // Verification drained the workload and advanced the kernel.
        // Rewind the workload (a cursor reset — instantiation, e.g.
        // synthesizing a filesystem tree, is the expensive part) and boot
        // a cold kernel (cheap: empty caches and queues) instead of
        // instantiating a second workload from scratch.
        workload.reset();
        let kernel = Kernel::with_config(cfg.kernel, cfg.seed);
        Ok(Self::from_parts(cfg, workload, kernel))
    }

    /// Binds a cold machine around pre-built (unverified) parts.
    fn from_parts(cfg: SimConfig, workload: Box<dyn Workload>, kernel: Kernel) -> Self {
        let core = if cfg.reference_core {
            cfg.core.build_reference()
        } else {
            cfg.core.build()
        };
        let mem = Hierarchy::new(cfg.hierarchy());
        let records = Vec::with_capacity(workload.len_hint().min(1 << 20));
        Self {
            pollution_rng: SmallRng::seed_from_u64(cfg.seed ^ 0x706f_6c6c),
            core,
            mem,
            kernel,
            workload,
            cfg,
            instret: 0,
            user_instructions: 0,
            os_instructions: 0,
            extra_cycles: 0,
            extra_caches: HierarchySnapshot::default(),
            user_blocks: 0,
            seq: 0,
            per_service: [0; ServiceId::ALL.len()],
            records,
            started: Instant::now(),
            items_consumed: 0,
            measuring: false,
            base_cycles: 0,
            base_instret: 0,
            base_user: 0,
            base_os: 0,
            base_caches: HierarchySnapshot::default(),
            pollution_enabled: true,
            sink: None,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
        }
    }

    /// Installs a trace sink that observes every measurement-region
    /// event (invocations, simulated/predicted intervals, periodic
    /// snapshots). Replaces any previously installed sink.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Removes and returns the installed trace sink, if any.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Mutable access to the installed trace sink, letting external
    /// drivers (e.g. the accelerated simulator) append their own events
    /// — decision records — into the same stream.
    pub fn trace_sink_mut(&mut self) -> Option<&mut (dyn TraceSink + 'static)> {
        self.sink.as_deref_mut()
    }

    /// Sets the interval period between snapshot events (default
    /// [`DEFAULT_SNAPSHOT_EVERY`]).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn set_snapshot_every(&mut self, every: u64) {
        assert!(every > 0, "snapshot period must be positive");
        self.snapshot_every = every;
    }

    /// Captures the machine's externally observable counters — the
    /// state summary interval checkpointing stores and verifies.
    pub fn probe(&self) -> MachineProbe {
        MachineProbe {
            seq: self.seq,
            items_consumed: self.items_consumed as u64,
            instret: self.instret,
            user_instructions: self.user_instructions,
            os_instructions: self.os_instructions,
            total_cycles: self.total_cycles(),
            user_blocks: self.user_blocks,
            caches: self.mem.snapshot(),
            pollution_rng: self.pollution_rng.state(),
        }
    }

    /// Enables or disables the §4.5 cache-pollution model for predicted
    /// intervals (used by the pollution ablation study; on by default).
    pub fn set_pollution_enabled(&mut self, enabled: bool) {
        self.pollution_enabled = enabled;
    }

    /// `true` while the workload's warm-up region is still executing.
    ///
    /// During warm-up everything runs in full detail (so caches and
    /// kernel state reach steady state) but intervals are not recorded
    /// and counters are excluded from the report — the paper's §5.2
    /// skip-then-measure protocol. Callers driving the accelerated mode
    /// should keep executing services in detail while this is `true`.
    pub fn in_warmup(&self) -> bool {
        !self.measuring
    }

    fn maybe_begin_measurement(&mut self) {
        if self.measuring || self.items_consumed < self.workload.warmup_items() {
            return;
        }
        self.measuring = true;
        self.base_cycles = self.total_cycles();
        self.base_instret = self.instret;
        self.base_user = self.user_instructions;
        self.base_os = self.os_instructions;
        self.base_caches = self.mem.snapshot();
        self.records.clear();
        self.started = Instant::now();
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Total simulated cycles so far (detailed cycles plus predicted
    /// cycles).
    pub fn total_cycles(&self) -> u64 {
        self.core.cycles() + self.extra_cycles
    }

    /// Total retired instructions so far.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Number of completed invocations of `service`.
    pub fn invocations_of(&self, service: ServiceId) -> u64 {
        self.per_service[service.index()]
    }

    /// Runs user-mode work until the next OS service invocation (system
    /// call or due interrupt), returning it *unexecuted*, or `None` when
    /// the workload is exhausted.
    ///
    /// In [`OsMode::AppOnly`] runs this always returns `None` after
    /// draining the workload: calls are skipped and interrupts never
    /// fire.
    pub fn advance_to_service(&mut self) -> Option<ServiceInvocation> {
        let full = self.cfg.os_mode == OsMode::Full;
        loop {
            self.maybe_begin_measurement();
            if full {
                if let Some(id) = self.kernel.due_interrupt(self.instret) {
                    let inv = self.kernel.raise(id, self.instret);
                    self.emit_invocation(&inv);
                    return Some(inv);
                }
            }
            match self.workload.next_item() {
                None => {
                    self.maybe_begin_measurement();
                    return None;
                }
                Some(item) => {
                    self.items_consumed += 1;
                    match item {
                        WorkItem::Compute(spec) => self.run_user_block(&spec),
                        WorkItem::Call(req) => {
                            if full {
                                let inv = self.kernel.handle(&req, self.instret);
                                self.emit_invocation(&inv);
                                return Some(inv);
                            }
                            // Application-only simulation skips the OS
                            // entirely.
                        }
                    }
                }
            }
        }
    }

    /// Emits an invocation event for `inv` (measurement region only).
    fn emit_invocation(&mut self, inv: &ServiceInvocation) {
        if !self.measuring {
            return;
        }
        let (service, instructions) = (inv.service, inv.instr_count());
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.on_invocation(service, instructions);
        }
    }

    /// Emits the interval event for `record`, plus the periodic counter
    /// snapshot when the interval lands on the snapshot cadence
    /// (measurement region only).
    fn emit_interval(&mut self, record: &IntervalRecord) {
        if !self.measuring {
            return;
        }
        let snapshot = (self.seq.is_multiple_of(self.snapshot_every)).then(|| CounterSnapshot {
            seq: self.seq,
            instret: self.instret,
            cycles: self.total_cycles(),
            caches: self.mem.snapshot(),
        });
        if let Some(sink) = self.sink.as_deref_mut() {
            match record.source {
                IntervalSource::Simulated => sink.on_simulated(record),
                IntervalSource::Predicted => sink.on_predicted(record),
            }
            if let Some(snapshot) = snapshot {
                sink.on_snapshot(&snapshot);
            }
        }
    }

    fn run_user_block(&mut self, spec: &osprey_isa::BlockSpec) {
        self.user_blocks += 1;
        let seed = self.cfg.seed ^ self.user_blocks.wrapping_mul(0x517c_c1b7_2722_0a95);
        // One virtual call for the whole block; the core's monomorphized
        // override runs the per-instruction loop.
        self.core
            .step_block(spec, seed, &mut self.mem, Privilege::User);
        self.instret += spec.instr_count;
        self.user_instructions += spec.instr_count;
    }

    /// Executes an OS service interval on the detailed timing core and
    /// records it. Returns the interval record.
    pub fn execute_service(&mut self, inv: &ServiceInvocation) -> IntervalRecord {
        let cycles0 = self.core.cycles();
        let snap0 = self.mem.snapshot();
        let counters0 = *self.core.counters();
        for (block, seed) in inv.block_seeds() {
            self.core
                .step_block(block, seed, &mut self.mem, Privilege::Kernel);
        }
        let n = inv.instr_count();
        self.instret += n;
        self.os_instructions += n;
        let counters = self.core.counters().delta(&counters0);
        let record = IntervalRecord {
            service: inv.service,
            path: inv.path,
            seq: self.seq,
            invocation: self.per_service[inv.service.index()],
            instructions: n,
            loads: counters.loads,
            stores: counters.stores,
            branches: counters.branches,
            cycles: self.core.cycles() - cycles0,
            caches: self.mem.snapshot().delta(&snap0),
            source: IntervalSource::Simulated,
        };
        self.seq += 1;
        self.per_service[inv.service.index()] += 1;
        self.records.push(record);
        self.emit_interval(&record);
        record
    }

    /// Fast-forwards an OS service interval in emulation mode: no timing
    /// or cache state is touched; only the functional instruction count
    /// advances. Returns the interval's dynamic instruction count — the
    /// behavior signature the predictor matches against its clusters.
    ///
    /// The caller is expected to follow up with
    /// [`FullSystemSim::apply_prediction`].
    pub fn emulate_service(&mut self, inv: &ServiceInvocation) -> u64 {
        let n = inv.instr_count();
        self.instret += n;
        self.os_instructions += n;
        n
    }

    /// Accounts a *predicted* interval: adds the predicted cycles and
    /// cache activity to the run totals, applies the paper's §4.5 cache
    /// pollution model (displacing application lines for each predicted
    /// OS miss), and records the interval as predicted.
    pub fn apply_prediction(
        &mut self,
        service: ServiceId,
        instructions: u64,
        cycles: u64,
        caches: HierarchySnapshot,
    ) -> IntervalRecord {
        self.extra_cycles += cycles;
        self.extra_caches.add(&caches);
        if self.pollution_enabled {
            self.mem.pollute(
                (caches.l1i.os_accesses, caches.l1i.os_misses),
                (caches.l1d.os_accesses, caches.l1d.os_misses),
                (caches.l2.os_accesses, caches.l2.os_misses),
                &mut self.pollution_rng,
            );
        }
        let record = IntervalRecord {
            service,
            path: "(predicted)",
            seq: self.seq,
            invocation: self.per_service[service.index()],
            instructions,
            loads: 0,
            stores: 0,
            branches: 0,
            cycles,
            caches,
            source: IntervalSource::Predicted,
        };
        self.seq += 1;
        self.per_service[service.index()] += 1;
        self.records.push(record);
        self.emit_interval(&record);
        record
    }

    /// Runs the whole workload in the configured mode, executing every
    /// OS service in detail, and returns the final report.
    ///
    /// Callers that are done with the machine afterwards should prefer
    /// [`FullSystemSim::run`], which hands the interval records to the
    /// report instead of cloning them.
    pub fn run_to_completion(&mut self) -> RunReport {
        while let Some(inv) = self.advance_to_service() {
            self.execute_service(&inv);
        }
        self.report()
    }

    /// Runs the whole workload to completion and consumes the machine,
    /// moving the interval records into the report (no clone).
    pub fn run(mut self) -> RunReport {
        while let Some(inv) = self.advance_to_service() {
            self.execute_service(&inv);
        }
        self.into_report()
    }

    /// Report fields shared by [`FullSystemSim::report`] and
    /// [`FullSystemSim::into_report`]; `intervals` is supplied by the
    /// caller (cloned or moved).
    fn report_with(&self, intervals: Vec<IntervalRecord>) -> RunReport {
        let measured = self.mem.snapshot().delta(&self.base_caches);
        let mut caches = measured;
        caches.add(&self.extra_caches);
        RunReport {
            benchmark: self.workload.name().to_string(),
            mode: self.cfg.core.name().to_string(),
            total_instructions: self.instret - self.base_instret,
            user_instructions: self.user_instructions - self.base_user,
            os_instructions: self.os_instructions - self.base_os,
            total_cycles: self.total_cycles() - self.base_cycles,
            caches,
            measured_caches: measured,
            intervals,
            wall: self.started.elapsed(),
        }
    }

    /// Builds a report of everything simulated in the measurement region
    /// (warm-up activity is excluded), cloning the interval records so
    /// the machine can keep running.
    pub fn report(&self) -> RunReport {
        self.report_with(self.records.clone())
    }

    /// Consumes the machine and builds the final report, moving the
    /// interval records instead of cloning them — the cheap path for
    /// run-to-completion callers.
    pub fn into_report(mut self) -> RunReport {
        let records = std::mem::take(&mut self.records);
        self.report_with(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osprey_workloads::Benchmark;

    fn quick(benchmark: Benchmark) -> SimConfig {
        SimConfig::new(benchmark).with_scale(0.02).with_seed(3)
    }

    #[test]
    fn full_run_produces_intervals_and_cycles() {
        let mut sim = FullSystemSim::new(quick(Benchmark::AbRand));
        let report = sim.run_to_completion();
        assert!(report.total_cycles > 0);
        assert!(!report.intervals.is_empty());
        assert!(report.os_instructions > 0);
        assert!(report.user_instructions > 0);
        assert_eq!(
            report.total_instructions,
            report.user_instructions + report.os_instructions
        );
    }

    #[test]
    fn app_only_run_skips_all_services() {
        let mut sim = FullSystemSim::new(quick(Benchmark::AbRand).with_os_mode(OsMode::AppOnly));
        let report = sim.run_to_completion();
        assert!(report.intervals.is_empty());
        assert_eq!(report.os_instructions, 0);
        assert!(report.total_cycles > 0);
    }

    #[test]
    fn full_system_executes_more_instructions_than_app_only() {
        let full = FullSystemSim::new(quick(Benchmark::Iperf)).run_to_completion();
        let app = FullSystemSim::new(quick(Benchmark::Iperf).with_os_mode(OsMode::AppOnly))
            .run_to_completion();
        assert!(full.total_instructions > 2 * app.total_instructions);
        assert!(full.total_cycles > app.total_cycles);
    }

    #[test]
    fn timer_interrupts_fire_during_long_compute() {
        let mut sim = FullSystemSim::new(quick(Benchmark::Gzip).with_scale(0.1));
        let report = sim.run_to_completion();
        let timers = report
            .intervals
            .iter()
            .filter(|r| r.service == ServiceId::IntTimer)
            .count();
        assert!(timers > 0, "timer must fire during 2.4M instructions");
    }

    #[test]
    fn intervals_carry_kernel_owned_cache_activity() {
        let mut sim = FullSystemSim::new(quick(Benchmark::AbRand));
        let report = sim.run_to_completion();
        let with_os_accesses = report
            .intervals
            .iter()
            .filter(|r| r.caches.l1d.os_accesses > 0)
            .count();
        assert!(with_os_accesses > report.intervals.len() / 2);
        // User-owner activity inside OS intervals must be zero.
        for r in &report.intervals {
            assert_eq!(r.caches.l1d.app_accesses, 0, "{:?}", r.service);
        }
    }

    #[test]
    fn emulate_plus_prediction_matches_detailed_instruction_totals() {
        let cfg = quick(Benchmark::Du);
        let mut detailed = FullSystemSim::new(cfg.clone());
        let detailed_report = detailed.run_to_completion();

        let mut accel = FullSystemSim::new(cfg);
        while let Some(inv) = accel.advance_to_service() {
            let n = accel.emulate_service(&inv);
            accel.apply_prediction(inv.service, n, 1000, HierarchySnapshot::default());
        }
        let accel_report = accel.report();
        assert_eq!(
            accel_report.total_instructions,
            detailed_report.total_instructions
        );
        assert_eq!(
            accel_report.os_instructions,
            detailed_report.os_instructions
        );
    }

    #[test]
    fn predicted_cycles_accumulate_into_totals() {
        let mut sim = FullSystemSim::new(quick(Benchmark::Du));
        let inv = sim.advance_to_service().expect("du makes calls");
        let before = sim.total_cycles();
        sim.emulate_service(&inv);
        sim.apply_prediction(inv.service, 100, 12_345, HierarchySnapshot::default());
        assert_eq!(sim.total_cycles(), before + 12_345);
        let report = sim.report();
        assert_eq!(report.intervals.len(), 1);
        assert_eq!(
            report.intervals[0].source,
            crate::interval::IntervalSource::Predicted
        );
    }

    #[test]
    fn per_service_invocation_counts_track_records() {
        let mut sim = FullSystemSim::new(quick(Benchmark::AbSeq));
        let report = sim.run_to_completion();
        let reads = report
            .intervals
            .iter()
            .filter(|r| r.service == ServiceId::SysRead)
            .count() as u64;
        // `invocations_of` counts warm-up invocations too; recorded
        // intervals cover only the measurement region.
        assert!(sim.invocations_of(ServiceId::SysRead) >= reads);
        assert!(reads > 10);
    }

    #[test]
    fn try_new_accepts_all_shipped_benchmarks() {
        for b in Benchmark::ALL {
            assert!(
                FullSystemSim::try_new(quick(b)).is_ok(),
                "{b} must pass load-time verification"
            );
        }
    }

    #[derive(Default)]
    struct CaptureState {
        invocations: u64,
        simulated: u64,
        predicted: u64,
        snapshots: u64,
    }

    struct Capture(std::rc::Rc<std::cell::RefCell<CaptureState>>);

    impl TraceSink for Capture {
        fn on_invocation(&mut self, _service: ServiceId, _instructions: u64) {
            self.0.borrow_mut().invocations += 1;
        }
        fn on_simulated(&mut self, _record: &IntervalRecord) {
            self.0.borrow_mut().simulated += 1;
        }
        fn on_predicted(&mut self, _record: &IntervalRecord) {
            self.0.borrow_mut().predicted += 1;
        }
        fn on_snapshot(&mut self, _snapshot: &CounterSnapshot) {
            self.0.borrow_mut().snapshots += 1;
        }
    }

    #[test]
    fn sink_observes_exactly_the_measurement_region() {
        let state = std::rc::Rc::new(std::cell::RefCell::new(CaptureState::default()));
        let mut sim = FullSystemSim::new(quick(Benchmark::AbRand));
        sim.set_snapshot_every(16);
        sim.set_trace_sink(Box::new(Capture(std::rc::Rc::clone(&state))));
        let report = sim.run_to_completion();
        let captured = state.borrow();
        assert!(!report.intervals.is_empty());
        assert_eq!(captured.invocations, report.intervals.len() as u64);
        assert_eq!(captured.simulated, report.intervals.len() as u64);
        assert_eq!(captured.predicted, 0);
        assert!(captured.snapshots > 0);
        assert!(captured.snapshots <= captured.simulated / 16 + 1);
    }

    #[test]
    fn sink_observes_predicted_intervals_as_predictions() {
        let state = std::rc::Rc::new(std::cell::RefCell::new(CaptureState::default()));
        let mut sim = FullSystemSim::new(quick(Benchmark::Du));
        sim.set_trace_sink(Box::new(Capture(std::rc::Rc::clone(&state))));
        while let Some(inv) = sim.advance_to_service() {
            let n = sim.emulate_service(&inv);
            sim.apply_prediction(inv.service, n, 500, HierarchySnapshot::default());
        }
        let report = sim.report();
        let captured = state.borrow();
        assert_eq!(captured.predicted, report.intervals.len() as u64);
        assert_eq!(captured.simulated, 0);
    }

    #[test]
    fn probe_is_deterministic_and_advances() {
        let mut a = FullSystemSim::new(quick(Benchmark::FindOd));
        let mut b = FullSystemSim::new(quick(Benchmark::FindOd));
        for _ in 0..5 {
            let ia = a.advance_to_service().expect("service");
            let ib = b.advance_to_service().expect("service");
            a.execute_service(&ia);
            b.execute_service(&ib);
        }
        assert_eq!(a.probe(), b.probe());
        let before = a.probe();
        let inv = a.advance_to_service().expect("service");
        a.execute_service(&inv);
        let after = a.probe();
        assert_eq!(after.seq, before.seq + 1);
        assert!(after.instret > before.instret);
    }

    #[test]
    fn identical_configs_are_deterministic() {
        let a = FullSystemSim::new(quick(Benchmark::FindOd)).run_to_completion();
        let b = FullSystemSim::new(quick(Benchmark::FindOd)).run_to_completion();
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.total_instructions, b.total_instructions);
        assert_eq!(a.intervals.len(), b.intervals.len());
    }
}

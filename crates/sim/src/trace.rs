//! Trace capture hooks.
//!
//! The simulator itself knows nothing about on-disk trace formats; it
//! only exposes a [`TraceSink`] that observers can install with
//! [`crate::FullSystemSim::set_trace_sink`]. The `osprey-trace` crate
//! implements the sink on top of its binary trace writer; tests can
//! install in-memory sinks to observe the event stream directly.
//!
//! Events fire only inside the measurement region (after the workload's
//! warm-up items), mirroring exactly what the final [`crate::RunReport`]
//! covers — a recorded trace replays the report, not the warm-up.

use osprey_isa::ServiceId;
use osprey_mem::HierarchySnapshot;

use crate::interval::IntervalRecord;

/// A periodic machine-counter snapshot emitted between intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Interval sequence number the snapshot was taken at.
    pub seq: u64,
    /// Total retired instructions so far.
    pub instret: u64,
    /// Total cycles so far (detailed plus predicted).
    pub cycles: u64,
    /// Cache counters at the snapshot point.
    pub caches: HierarchySnapshot,
}

/// Observer of a running [`crate::FullSystemSim`].
///
/// All methods default to no-ops so sinks implement only what they
/// record. Callbacks arrive in stream order: an
/// [`TraceSink::on_invocation`] for every OS service invocation, then
/// either [`TraceSink::on_simulated`] (detailed execution) or a
/// [`TraceSink::on_decision`] / [`TraceSink::on_predicted`] pair
/// (accelerated prediction), with [`TraceSink::on_snapshot`]
/// interleaved every `snapshot_every` intervals.
pub trait TraceSink {
    /// An OS service invocation is about to execute; `instructions` is
    /// its dynamic instruction count — the behavior signature.
    fn on_invocation(&mut self, service: ServiceId, instructions: u64) {
        let _ = (service, instructions);
    }

    /// An interval was fully simulated on the detailed core.
    fn on_simulated(&mut self, record: &IntervalRecord) {
        let _ = record;
    }

    /// An interval was fast-forwarded and its performance predicted.
    fn on_predicted(&mut self, record: &IntervalRecord) {
        let _ = record;
    }

    /// The accelerator decided what to do with an invocation
    /// (`predicted` false = learn/simulate). `cluster` and `confidence`
    /// identify the PLT cluster a prediction would come from, when one
    /// exists.
    fn on_decision(
        &mut self,
        service: ServiceId,
        predicted: bool,
        cluster: Option<u32>,
        confidence: f64,
    ) {
        let _ = (service, predicted, cluster, confidence);
    }

    /// A periodic counter snapshot at an interval boundary.
    fn on_snapshot(&mut self, snapshot: &CounterSnapshot) {
        let _ = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting(u64);

    impl TraceSink for Counting {
        fn on_simulated(&mut self, _record: &IntervalRecord) {
            self.0 += 1;
        }
    }

    #[test]
    fn default_methods_are_noops() {
        let mut sink = Counting(0);
        sink.on_invocation(ServiceId::SysRead, 10);
        sink.on_decision(ServiceId::SysRead, true, Some(1), 0.5);
        sink.on_snapshot(&CounterSnapshot {
            seq: 0,
            instret: 0,
            cycles: 0,
            caches: HierarchySnapshot::default(),
        });
        assert_eq!(sink.0, 0);
    }
}

//! The Osprey execution-driven full-system simulator.
//!
//! Binds a processor timing core ([`osprey_cpu`]), a memory hierarchy
//! ([`osprey_mem`]), the synthetic kernel ([`osprey_os`]), and a workload
//! ([`osprey_workloads`]) into a machine, and drives it while detecting
//! **OS service intervals** at user/kernel mode-switch boundaries —
//! exactly the instrumentation the paper adds on top of Simics (§3, §5.1).
//!
//! Three operating modes mirror the paper's methodology:
//!
//! * **Full-system detailed** ([`OsMode::Full`] + a timing core): every
//!   instruction, user and kernel, runs through the timing models; every
//!   OS service interval is recorded ([`IntervalRecord`]).
//! * **Application-only** ([`OsMode::AppOnly`]): system calls and
//!   interrupts are skipped entirely, as in SimpleScalar-style simulation
//!   (the paper's Fig. 1/2 comparison).
//! * **Accelerated** (driven by `osprey-core`): the simulator exposes
//!   [`FullSystemSim::advance_to_service`] /
//!   [`FullSystemSim::execute_service`] /
//!   [`FullSystemSim::emulate_service`] so a predictor can switch each OS
//!   service between detailed simulation (learning) and emulation plus
//!   prediction.
//!
//! # Examples
//!
//! ```
//! use osprey_sim::{FullSystemSim, SimConfig};
//! use osprey_workloads::Benchmark;
//!
//! let cfg = SimConfig::new(Benchmark::Iperf).with_scale(0.01);
//! let mut sim = FullSystemSim::new(cfg);
//! let report = sim.run_to_completion();
//! assert!(report.total_cycles > 0);
//! assert!(report.os_fraction() > 0.5, "iperf is OS-intensive");
//! ```

pub mod config;
pub mod interval;
pub mod machine;
pub mod report;
pub mod trace;

pub use config::{CoreModel, OsMode, SimConfig};
pub use interval::IntervalRecord;
pub use machine::{FullSystemSim, MachineProbe, DEFAULT_SNAPSHOT_EVERY};
pub use report::RunReport;
pub use trace::{CounterSnapshot, TraceSink};

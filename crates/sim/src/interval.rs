//! OS service interval records.

use osprey_isa::ServiceId;
use osprey_mem::HierarchySnapshot;

/// How an interval's performance numbers were obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IntervalSource {
    /// Fully simulated on the detailed timing core.
    Simulated,
    /// Fast-forwarded in emulation and predicted from the PLT.
    Predicted,
}

/// One OS service interval: the contiguous kernel-mode instructions from
/// a mode switch until the return to user mode (paper §3).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IntervalRecord {
    /// Service type that caused the mode switch.
    pub service: ServiceId,
    /// Execution-path label chosen by the kernel (diagnostics only; the
    /// predictor never reads it).
    pub path: &'static str,
    /// Global interval sequence number within the run.
    pub seq: u64,
    /// Per-service invocation index (0-based).
    pub invocation: u64,
    /// Dynamic instructions in the interval — the behavior signature.
    pub instructions: u64,
    /// Loads retired in the interval (0 for predicted intervals).
    pub loads: u64,
    /// Stores retired in the interval (0 for predicted intervals).
    pub stores: u64,
    /// Branches retired in the interval (0 for predicted intervals).
    pub branches: u64,
    /// Cycles the interval took (simulated or predicted).
    pub cycles: u64,
    /// Cache activity during the interval (counter deltas).
    pub caches: HierarchySnapshot,
    /// Whether the numbers were simulated or predicted.
    pub source: IntervalSource,
}

impl IntervalRecord {
    /// Instructions per cycle for this interval (0 when no cycles).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(instr: u64, cycles: u64) -> IntervalRecord {
        IntervalRecord {
            service: ServiceId::SysRead,
            path: "test",
            seq: 0,
            invocation: 0,
            instructions: instr,
            loads: 0,
            stores: 0,
            branches: 0,
            cycles,
            caches: HierarchySnapshot::default(),
            source: IntervalSource::Simulated,
        }
    }

    #[test]
    fn ipc_divides_instructions_by_cycles() {
        assert_eq!(record(300, 1000).ipc(), 0.3);
    }

    #[test]
    fn ipc_of_zero_cycles_is_zero() {
        assert_eq!(record(300, 0).ipc(), 0.0);
    }
}

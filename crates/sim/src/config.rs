//! Simulation run configuration.

use osprey_cpu::{Core, CpuConfig, EmulationCore, InOrderCore, OooCore, Unfused};
use osprey_mem::HierarchyConfig;
use osprey_os::KernelConfig;
use osprey_workloads::Benchmark;

/// Which processor timing model to use — the paper's Table 1 mode matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreModel {
    /// Out-of-order core with caches (`ooo-cache`): the detailed
    /// full-system simulation mode.
    OooCache,
    /// Out-of-order core without caches (`ooo-nocache`).
    OooNoCache,
    /// In-order core with caches (`inorder-cache`).
    InOrderCache,
    /// In-order core without caches (`inorder-nocache`): the fastest
    /// timing mode, the baseline of Table 1.
    InOrderNoCache,
    /// Pure functional emulation (no timing at all): the fast-forward
    /// mode used during prediction periods.
    Emulation,
}

impl CoreModel {
    /// All timing-relevant modes, in Table 1 order.
    pub const TABLE1: [CoreModel; 4] = [
        CoreModel::InOrderNoCache,
        CoreModel::InOrderCache,
        CoreModel::OooNoCache,
        CoreModel::OooCache,
    ];

    /// Label matching the paper's Table 1.
    pub fn name(self) -> &'static str {
        match self {
            CoreModel::OooCache => "ooo-cache",
            CoreModel::OooNoCache => "ooo-nocache",
            CoreModel::InOrderCache => "inorder-cache",
            CoreModel::InOrderNoCache => "inorder-nocache",
            CoreModel::Emulation => "emulation",
        }
    }

    /// Instantiates the core.
    pub fn build(self) -> Box<dyn Core> {
        match self {
            CoreModel::OooCache => Box::new(OooCore::new(CpuConfig::pentium4())),
            CoreModel::OooNoCache => Box::new(OooCore::new(CpuConfig::pentium4_nocache())),
            CoreModel::InOrderCache => Box::new(InOrderCore::new(CpuConfig::pentium4())),
            CoreModel::InOrderNoCache => Box::new(InOrderCore::new(CpuConfig::pentium4_nocache())),
            CoreModel::Emulation => Box::new(EmulationCore::new()),
        }
    }

    /// Instantiates the core wrapped in [`Unfused`], forcing the
    /// trait-default per-instruction `step_block` loop.
    ///
    /// This is the reference path the fused hot-path implementations are
    /// verified against: a run built this way must produce a
    /// byte-identical `RunReport` and trace to [`CoreModel::build`]. The
    /// `hotpath` perf gate uses it for its before/after comparison.
    pub fn build_reference(self) -> Box<dyn Core> {
        match self {
            CoreModel::OooCache => Box::new(Unfused(OooCore::new(CpuConfig::pentium4()))),
            CoreModel::OooNoCache => Box::new(Unfused(OooCore::new(CpuConfig::pentium4_nocache()))),
            CoreModel::InOrderCache => Box::new(Unfused(InOrderCore::new(CpuConfig::pentium4()))),
            CoreModel::InOrderNoCache => {
                Box::new(Unfused(InOrderCore::new(CpuConfig::pentium4_nocache())))
            }
            CoreModel::Emulation => Box::new(Unfused(EmulationCore::new())),
        }
    }
}

impl std::fmt::Display for CoreModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether OS services are simulated at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsMode {
    /// Full-system simulation: kernel intervals execute on the timing
    /// core and interrupts fire.
    Full,
    /// Application-only simulation: system calls and interrupts are
    /// skipped (SimpleScalar-style).
    AppOnly,
}

/// Configuration of one simulation run.
///
/// # Examples
///
/// ```
/// use osprey_sim::{OsMode, SimConfig};
/// use osprey_workloads::Benchmark;
///
/// let cfg = SimConfig::new(Benchmark::AbRand)
///     .with_l2_bytes(512 * 1024)
///     .with_os_mode(OsMode::AppOnly)
///     .with_scale(0.1);
/// assert_eq!(cfg.l2_bytes, 512 * 1024);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Workload to run.
    pub benchmark: Benchmark,
    /// Master seed (workload, kernel, and pollution randomness derive
    /// from it).
    pub seed: u64,
    /// Workload scale factor (1.0 = paper-like default length).
    pub scale: f64,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// Processor timing model.
    pub core: CoreModel,
    /// Full-system or application-only.
    pub os_mode: OsMode,
    /// Synthetic-kernel tunables.
    pub kernel: KernelConfig,
    /// Use the unfused per-instruction reference core
    /// ([`CoreModel::build_reference`]) instead of the fused hot path.
    /// Timing-identical by contract; only wall-clock differs.
    pub reference_core: bool,
}

impl SimConfig {
    /// A full-system, detailed (ooo-cache), 1 MiB-L2 run of `benchmark` —
    /// the paper's default machine.
    pub fn new(benchmark: Benchmark) -> Self {
        Self {
            benchmark,
            seed: 1,
            scale: 1.0,
            l2_bytes: 1024 * 1024,
            core: CoreModel::OooCache,
            os_mode: OsMode::Full,
            kernel: KernelConfig::default(),
            reference_core: false,
        }
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the workload scale.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Sets the L2 capacity.
    pub fn with_l2_bytes(mut self, bytes: u64) -> Self {
        self.l2_bytes = bytes;
        self
    }

    /// Sets the processor model.
    pub fn with_core(mut self, core: CoreModel) -> Self {
        self.core = core;
        self
    }

    /// Sets full-system vs application-only mode.
    pub fn with_os_mode(mut self, mode: OsMode) -> Self {
        self.os_mode = mode;
        self
    }

    /// Sets kernel tunables.
    pub fn with_kernel(mut self, kernel: KernelConfig) -> Self {
        self.kernel = kernel;
        self
    }

    /// Runs on the unfused per-instruction reference core. The fused and
    /// reference paths are timing-identical; this exists so tools (the
    /// `hotpath` gate) can compare their wall clocks and reports.
    pub fn with_reference_core(mut self) -> Self {
        self.reference_core = true;
        self
    }

    /// The memory-hierarchy configuration implied by this run config.
    pub fn hierarchy(&self) -> HierarchyConfig {
        HierarchyConfig::pentium4(self.l2_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_order_matches_paper() {
        let names: Vec<_> = CoreModel::TABLE1.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            [
                "inorder-nocache",
                "inorder-cache",
                "ooo-nocache",
                "ooo-cache"
            ]
        );
    }

    #[test]
    fn build_produces_working_cores() {
        use osprey_isa::{BlockSpec, Privilege};
        use osprey_mem::Hierarchy;
        for model in CoreModel::TABLE1 {
            let mut core = model.build();
            let mut mem = Hierarchy::new(HierarchyConfig::default());
            for instr in BlockSpec::new(0x1000, 100).generate(1) {
                core.step(&instr, &mut mem, Privilege::User);
            }
            assert_eq!(core.counters().instructions, 100, "{model}");
            assert!(core.cycles() > 0, "{model}");
        }
    }

    #[test]
    fn emulation_core_has_no_cycles() {
        use osprey_isa::{BlockSpec, Privilege};
        use osprey_mem::Hierarchy;
        let mut core = CoreModel::Emulation.build();
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        for instr in BlockSpec::new(0x1000, 50).generate(1) {
            core.step(&instr, &mut mem, Privilege::User);
        }
        assert_eq!(core.cycles(), 0);
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = SimConfig::new(Benchmark::Du)
            .with_seed(7)
            .with_scale(0.5)
            .with_l2_bytes(2 * 1024 * 1024)
            .with_core(CoreModel::InOrderCache)
            .with_os_mode(OsMode::AppOnly);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.scale, 0.5);
        assert_eq!(cfg.hierarchy().l2.size, 2 * 1024 * 1024);
        assert_eq!(cfg.core, CoreModel::InOrderCache);
        assert_eq!(cfg.os_mode, OsMode::AppOnly);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn rejects_zero_scale() {
        SimConfig::new(Benchmark::Du).with_scale(0.0);
    }
}

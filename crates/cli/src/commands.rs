//! CLI subcommand implementations.

use osprey_core::accel::{AccelConfig, AcceleratedSim};
use osprey_report::Table;
use osprey_sim::{FullSystemSim, OsMode, RunReport, SimConfig};
use osprey_workloads::Benchmark;

use crate::args::{ArgError, ParsedArgs};

/// The `osprey help` text.
pub fn help_text() -> String {
    "osprey — accelerated full-system simulation (ISPASS 2007 reproduction)

USAGE:
    osprey <command> [--option value ...]

COMMANDS:
    run        simulate one benchmark and print its report
                 --benchmark <name>   (default iperf)
                 --mode detailed|app-only|accelerated   (default detailed)
                 --strategy best-match|eager|delayed|statistical
                 --scale <f>          workload scale (default 1.0)
                 --l2 <size>          L2 capacity, e.g. 512K, 1M (default 1M)
                 --seed <n>           master seed (default 1)
    compare    detailed vs accelerated: coverage, error, wall speedup
                 (same options as run)
    services   per-OS-service profile of a detailed run (paper Fig. 3)
                 (same options as run)
    window     learning-window calculator (paper Eq. 3 / Fig. 7)
                 --pmin <f>  (default 0.03)   --doc <f>  (default 0.95)
    verify     static program verification (privilege bracketing, spec
               well-formedness, dead blocks, interval bounds)
                 --benchmark <name>   verify one benchmark (default iperf)
                 --scale <f>          workload scale (default 0.1)
                 --seed <n>           master seed (default 1)
                 --fixture <name>     verify a broken fixture instead
                 --fixture all        run every broken fixture
                 --format table|csv   diagnostics output (default table)
    list       list available benchmarks
    help       this text
"
    .to_string()
}

fn sim_config(parsed: &ParsedArgs) -> Result<SimConfig, ArgError> {
    let benchmark = parsed.benchmark()?;
    let scale = parsed.get_parsed("scale", 1.0, "a positive number")?;
    let seed = parsed.get_parsed("seed", 1u64, "an integer")?;
    if scale <= 0.0 {
        return Err(ArgError::Invalid {
            key: "scale".into(),
            value: scale.to_string(),
            expected: "a positive number",
        });
    }
    Ok(SimConfig::new(benchmark)
        .with_scale(scale)
        .with_seed(seed)
        .with_l2_bytes(parsed.l2_bytes()?))
}

fn render_report(report: &RunReport) -> String {
    let mut t = Table::new(["metric", "value"]);
    t.row(["benchmark", report.benchmark.as_str()]);
    t.row(["core model", report.mode.as_str()]);
    t.row(["instructions", &report.total_instructions.to_string()]);
    t.row(["  user", &report.user_instructions.to_string()]);
    t.row(["  OS", &report.os_instructions.to_string()]);
    t.row([
        "OS fraction",
        &format!("{:.1}%", report.os_fraction() * 100.0),
    ]);
    t.row(["cycles", &report.total_cycles.to_string()]);
    t.row(["IPC", &format!("{:.3}", report.ipc())]);
    t.row([
        "L1I miss rate",
        &format!("{:.2}%", report.l1i_miss_rate() * 100.0),
    ]);
    t.row([
        "L1D miss rate",
        &format!("{:.2}%", report.l1d_miss_rate() * 100.0),
    ]);
    t.row([
        "L2 miss rate",
        &format!("{:.2}%", report.l2_miss_rate() * 100.0),
    ]);
    t.row(["OS intervals", &report.intervals.len().to_string()]);
    t.row(["wall time", &format!("{:.2?}", report.wall)]);
    t.render()
}

fn cmd_run(parsed: &ParsedArgs) -> Result<String, ArgError> {
    let cfg = sim_config(parsed)?;
    let mode = parsed
        .options
        .get("mode")
        .map(String::as_str)
        .unwrap_or("detailed");
    let report = match mode {
        "detailed" => FullSystemSim::new(cfg).run_to_completion(),
        "app-only" => FullSystemSim::new(cfg.with_os_mode(OsMode::AppOnly)).run_to_completion(),
        "accelerated" => {
            let strategy = parsed.strategy()?;
            let out = AcceleratedSim::new(cfg, AccelConfig::with_strategy(strategy)).run();
            let mut text = render_report(&out.report);
            text.push_str(&format!(
                "coverage: {:.1}%  ({} re-learning events)\n",
                out.coverage() * 100.0,
                out.stats.relearn_events()
            ));
            return Ok(text);
        }
        other => {
            return Err(ArgError::Invalid {
                key: "mode".into(),
                value: other.to_string(),
                expected: "detailed, app-only, or accelerated",
            })
        }
    };
    Ok(render_report(&report))
}

fn cmd_compare(parsed: &ParsedArgs) -> Result<String, ArgError> {
    let cfg = sim_config(parsed)?;
    let strategy = parsed.strategy()?;
    let detailed = FullSystemSim::new(cfg.clone()).run_to_completion();
    let accel = AcceleratedSim::new(cfg, AccelConfig::with_strategy(strategy)).run();
    let err = osprey_stats::summary::abs_relative_error(
        accel.report.total_cycles as f64,
        detailed.total_cycles as f64,
    );
    let mut t = Table::new(["metric", "detailed", "accelerated"]);
    t.row([
        "cycles".to_string(),
        detailed.total_cycles.to_string(),
        accel.report.total_cycles.to_string(),
    ]);
    t.row([
        "IPC".to_string(),
        format!("{:.3}", detailed.ipc()),
        format!("{:.3}", accel.report.ipc()),
    ]);
    t.row([
        "L2 miss rate".to_string(),
        format!("{:.2}%", detailed.l2_miss_rate() * 100.0),
        format!("{:.2}%", accel.report.l2_miss_rate() * 100.0),
    ]);
    t.row([
        "wall time".to_string(),
        format!("{:.2?}", detailed.wall),
        format!("{:.2?}", accel.report.wall),
    ]);
    let mut out = t.render();
    out.push_str(&format!(
        "\ncoverage {:.1}%, execution-time error {:.2}%, wall speedup {:.1}x\n",
        accel.coverage() * 100.0,
        err * 100.0,
        detailed.wall.as_secs_f64() / accel.report.wall.as_secs_f64().max(1e-9),
    ));
    Ok(out)
}

fn cmd_services(parsed: &ParsedArgs) -> Result<String, ArgError> {
    let cfg = sim_config(parsed)?;
    let report = FullSystemSim::new(cfg).run_to_completion();
    let mut t = Table::new([
        "service",
        "count",
        "mean instr",
        "mean cycles",
        "stddev",
        "mean IPC",
    ]);
    for s in report.service_summaries() {
        t.row([
            s.service.name().to_string(),
            s.count.to_string(),
            format!("{:.0}", s.instructions.mean()),
            format!("{:.0}", s.cycles.mean()),
            format!("{:.0}", s.cycles.population_std_dev()),
            format!("{:.3}", s.ipc.mean()),
        ]);
    }
    Ok(t.render())
}

fn cmd_window(parsed: &ParsedArgs) -> Result<String, ArgError> {
    let p_min = parsed.get_parsed("pmin", 0.03, "a probability in (0,1]")?;
    let doc = parsed.get_parsed("doc", 0.95, "a confidence in (0,1)")?;
    match osprey_stats::learning_window(p_min, doc) {
        Some(n) => Ok(format!(
            "capturing clusters with occurrence probability >= {:.1}% at {:.0}% \
             confidence requires a learning window of {n} invocations\n",
            p_min * 100.0,
            doc * 100.0
        )),
        None => Err(ArgError::Invalid {
            key: "pmin/doc".into(),
            value: format!("{p_min}/{doc}"),
            expected: "pmin in (0,1], doc in (0,1)",
        }),
    }
}

fn render_diagnostics(diags: &[osprey_report::Diagnostic], format: &str) -> String {
    if format == "csv" {
        osprey_report::diagnostics_csv(diags)
    } else {
        osprey_report::diagnostics_table(diags).render()
    }
}

fn cmd_verify(parsed: &ParsedArgs) -> Result<String, ArgError> {
    let format = parsed
        .options
        .get("format")
        .map(String::as_str)
        .unwrap_or("table");
    if !matches!(format, "table" | "csv") {
        return Err(ArgError::Invalid {
            key: "format".into(),
            value: format.to_string(),
            expected: "table or csv",
        });
    }

    if let Some(raw) = parsed.options.get("fixture") {
        let fixtures: Vec<&osprey_verify::fixtures::Fixture> = if raw == "all" {
            osprey_verify::fixtures::ALL.iter().collect()
        } else {
            let fixture =
                osprey_verify::fixtures::by_name(raw).ok_or_else(|| ArgError::Invalid {
                    key: "fixture".into(),
                    value: raw.clone(),
                    expected: "`all` or a fixture name (see `osprey verify --fixture all`)",
                })?;
            vec![fixture]
        };
        let mut out = String::new();
        for f in fixtures {
            let diags = osprey_verify::verify(&(f.build)());
            out.push_str(&format!(
                "fixture {} (expects {}):\n{}\n",
                f.name,
                f.expected_code,
                render_diagnostics(&diags, format)
            ));
        }
        return Ok(out);
    }

    let benchmark = parsed.benchmark()?;
    let scale = parsed.get_parsed("scale", 0.1, "a positive number")?;
    let seed = parsed.get_parsed("seed", 1u64, "an integer")?;
    if scale <= 0.0 {
        return Err(ArgError::Invalid {
            key: "scale".into(),
            value: scale.to_string(),
            expected: "a positive number",
        });
    }
    let diags = osprey_verify::verify_benchmark(benchmark, seed, scale);
    if diags.is_empty() {
        Ok(format!(
            "{benchmark}: ok (no diagnostics at scale {scale}, seed {seed})\n"
        ))
    } else {
        Ok(format!(
            "{benchmark}: {} diagnostic(s)\n{}",
            diags.len(),
            render_diagnostics(&diags, format)
        ))
    }
}

fn cmd_list() -> String {
    let mut t = Table::new(["benchmark", "category", "OS-intensive"]);
    for b in Benchmark::ALL {
        let category = match b {
            Benchmark::AbRand | Benchmark::AbSeq => "web server",
            Benchmark::Du | Benchmark::FindOd => "unix tools",
            Benchmark::Iperf => "network",
            _ => "SPEC-like compute",
        };
        t.row([
            b.name(),
            category,
            if b.is_os_intensive() { "yes" } else { "no" },
        ]);
    }
    t.render()
}

/// Executes a parsed command line, returning the text to print.
///
/// # Examples
///
/// ```
/// use osprey_cli::{dispatch, parse};
///
/// let parsed = parse(&["list".into()]).unwrap();
/// let out = dispatch(&parsed).unwrap();
/// assert!(out.contains("iperf"));
/// ```
pub fn dispatch(parsed: &ParsedArgs) -> Result<String, ArgError> {
    match parsed.command.as_str() {
        "run" => cmd_run(parsed),
        "compare" => cmd_compare(parsed),
        "services" => cmd_services(parsed),
        "window" => cmd_window(parsed),
        "verify" => cmd_verify(parsed),
        "list" => Ok(cmd_list()),
        "help" | "--help" | "-h" => Ok(help_text()),
        other => Err(ArgError::Unexpected(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run(parts: &[&str]) -> Result<String, ArgError> {
        let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        dispatch(&parse(&argv).unwrap())
    }

    #[test]
    fn list_names_all_benchmarks() {
        let out = run(&["list"]).unwrap();
        for b in Benchmark::ALL {
            assert!(out.contains(b.name()), "missing {b}");
        }
    }

    #[test]
    fn window_matches_the_paper() {
        let out = run(&["window"]).unwrap();
        assert!(out.contains("99 invocations"), "{out}");
    }

    #[test]
    fn run_prints_a_report() {
        let out = run(&["run", "--benchmark", "du", "--scale", "0.02"]).unwrap();
        assert!(out.contains("OS fraction"));
        assert!(out.contains("du"));
    }

    #[test]
    fn run_accelerated_prints_coverage() {
        let out = run(&[
            "run",
            "--benchmark",
            "iperf",
            "--scale",
            "0.05",
            "--mode",
            "accelerated",
        ])
        .unwrap();
        assert!(out.contains("coverage"));
    }

    #[test]
    fn compare_reports_error_and_speedup() {
        let out = run(&["compare", "--benchmark", "du", "--scale", "0.05"]).unwrap();
        assert!(out.contains("execution-time error"));
        assert!(out.contains("wall speedup"));
    }

    #[test]
    fn services_lists_kernel_services() {
        let out = run(&["services", "--benchmark", "du", "--scale", "0.05"]).unwrap();
        assert!(out.contains("sys_lstat64"));
    }

    #[test]
    fn verify_passes_clean_benchmarks() {
        let out = run(&["verify", "--benchmark", "du", "--scale", "0.05"]).unwrap();
        assert!(out.contains("du: ok"), "{out}");
    }

    #[test]
    fn verify_flags_each_fixture_with_its_code() {
        let out = run(&["verify", "--fixture", "all"]).unwrap();
        for f in osprey_verify::fixtures::ALL {
            assert!(out.contains(f.name), "missing fixture {}", f.name);
            assert!(out.contains(f.expected_code), "missing {}", f.expected_code);
        }
    }

    #[test]
    fn verify_emits_csv_diagnostics() {
        let out = run(&["verify", "--fixture", "zero-budget", "--format", "csv"]).unwrap();
        assert!(out.contains("code,severity,location,message"), "{out}");
        assert!(out.contains("OSPV011"), "{out}");
    }

    #[test]
    fn verify_rejects_unknown_fixture() {
        let err = run(&["verify", "--fixture", "nope"]).unwrap_err();
        assert!(matches!(err, ArgError::Invalid { .. }));
    }

    #[test]
    fn bad_mode_is_rejected() {
        let err = run(&["run", "--mode", "psychic"]).unwrap_err();
        assert!(matches!(err, ArgError::Invalid { .. }));
    }

    #[test]
    fn unknown_command_is_rejected() {
        let err = run(&["frobnicate"]).unwrap_err();
        assert_eq!(err, ArgError::Unexpected("frobnicate".into()));
    }

    #[test]
    fn help_mentions_every_command() {
        let h = help_text();
        for cmd in ["run", "compare", "services", "window", "list"] {
            assert!(h.contains(cmd));
        }
    }
}

//! CLI subcommand implementations.

use std::path::PathBuf;
use std::sync::Arc;

use osprey_core::accel::{AccelConfig, AccelOutcome, AcceleratedSim};
use osprey_core::RelearnStrategy;
use osprey_exec::{default_workers, run_jobs, Job};
use osprey_report::Table;
use osprey_sim::{FullSystemSim, OsMode, RunReport, SimConfig};
use osprey_trace::{verify_trace, ReplayOutcome, ReplaySim, TraceEvent, TraceReader};
use osprey_workloads::Benchmark;

use crate::args::{benchmark_by_name, ArgError, ParsedArgs};

/// The `osprey help` text.
pub fn help_text() -> String {
    "osprey — accelerated full-system simulation (ISPASS 2007 reproduction)

USAGE:
    osprey <command> [--option value ...]

COMMANDS:
    run        simulate one benchmark and print its report
                 --benchmark <name>   (default iperf)
                 --mode detailed|app-only|accelerated   (default detailed)
                 --strategy best-match|eager|delayed|statistical
                 --scale <f>          workload scale (default 1.0)
                 --l2 <size>          L2 capacity, e.g. 512K, 1M (default 1M)
                 --seed <n>           master seed (default 1)
    compare    detailed vs accelerated: coverage, error, wall speedup
                 (same options as run)
                 --jobs <n>           run the two simulations in parallel
                                      (default 1: serial, for clean walls)
    sweep      run a whole benchmark sweep through the experiment engine
               and record wall-clock scaling in results/BENCH_sweep.json
                 --benchmarks all|os-intensive|<name,name,...> (default all)
                 --mode detailed|app-only|accelerated   (default detailed)
                 --strategy best-match|eager|delayed|statistical
                 --jobs <n>           worker threads (default: $OSPREY_JOBS
                                      or the machine's parallelism)
                 --scale/--l2/--seed  as for run
    services   per-OS-service profile of a detailed run (paper Fig. 3)
                 (same options as run)
    window     learning-window calculator (paper Eq. 3 / Fig. 7)
                 --pmin <f>  (default 0.03)   --doc <f>  (default 0.95)
    record     record one detailed run into a binary trace file
                 --out <file>         trace path (default
                                      results/traces/<bench>_seed<seed>.ospt)
                 --snapshot-every <n> intervals between counter snapshots
                                      (default 64)
                 --strategy <name>    strategy for the printed replay
                                      evaluation (default statistical)
                 --benchmark/--scale/--l2/--seed  as for run
    replay     re-evaluate predictor configurations from a trace, never
               re-simulating; output is byte-identical to the evaluation
               section `record` printed
                 --trace <file>       recorded trace (required)
                 --strategies all|<name,name,...>  fan out one job per
                                      strategy (default: the --strategy)
                 --jobs <n>           worker threads (default: $OSPREY_JOBS
                                      or the machine's parallelism)
    trace-info decode a trace and print its header, event counts, and
               structural checks; corrupt or skewed files exit nonzero
                 --trace <file>       recorded trace (required)
    verify     static program verification (privilege bracketing, spec
               well-formedness, dead blocks, interval bounds)
                 --benchmark <name>   verify one benchmark (default iperf)
                 --scale <f>          workload scale (default 0.1)
                 --seed <n>           master seed (default 1)
                 --fixture <name>     verify a broken fixture instead
                 --fixture all        run every broken fixture
                 --trace <file>       run structural trace checks
                                      (OSPT01x) on a recording instead
                 --format table|csv   diagnostics output (default table)
    list       list available benchmarks
    help       this text
"
    .to_string()
}

fn sim_config(parsed: &ParsedArgs) -> Result<SimConfig, ArgError> {
    let benchmark = parsed.benchmark()?;
    let scale = parsed.get_parsed("scale", 1.0, "a positive number")?;
    let seed = parsed.get_parsed("seed", 1u64, "an integer")?;
    if scale <= 0.0 {
        return Err(ArgError::Invalid {
            key: "scale".into(),
            value: scale.to_string(),
            expected: "a positive number",
        });
    }
    Ok(SimConfig::new(benchmark)
        .with_scale(scale)
        .with_seed(seed)
        .with_l2_bytes(parsed.l2_bytes()?))
}

fn render_report(report: &RunReport) -> String {
    let mut t = Table::new(["metric", "value"]);
    t.row(["benchmark", report.benchmark.as_str()]);
    t.row(["core model", report.mode.as_str()]);
    t.row(["instructions", &report.total_instructions.to_string()]);
    t.row(["  user", &report.user_instructions.to_string()]);
    t.row(["  OS", &report.os_instructions.to_string()]);
    t.row([
        "OS fraction",
        &format!("{:.1}%", report.os_fraction() * 100.0),
    ]);
    t.row(["cycles", &report.total_cycles.to_string()]);
    t.row(["IPC", &format!("{:.3}", report.ipc())]);
    t.row([
        "L1I miss rate",
        &format!("{:.2}%", report.l1i_miss_rate() * 100.0),
    ]);
    t.row([
        "L1D miss rate",
        &format!("{:.2}%", report.l1d_miss_rate() * 100.0),
    ]);
    t.row([
        "L2 miss rate",
        &format!("{:.2}%", report.l2_miss_rate() * 100.0),
    ]);
    t.row(["OS intervals", &report.intervals.len().to_string()]);
    t.row(["wall time", &format!("{:.2?}", report.wall)]);
    t.render()
}

fn cmd_run(parsed: &ParsedArgs) -> Result<String, ArgError> {
    let cfg = sim_config(parsed)?;
    let mode = parsed
        .options
        .get("mode")
        .map(String::as_str)
        .unwrap_or("detailed");
    let report = match mode {
        "detailed" => FullSystemSim::new(cfg).run(),
        "app-only" => FullSystemSim::new(cfg.with_os_mode(OsMode::AppOnly)).run(),
        "accelerated" => {
            let strategy = parsed.strategy()?;
            let out = AcceleratedSim::new(cfg, AccelConfig::with_strategy(strategy)).run();
            let mut text = render_report(&out.report);
            text.push_str(&format!(
                "coverage: {:.1}%  ({} re-learning events)\n",
                out.coverage() * 100.0,
                out.stats.relearn_events()
            ));
            return Ok(text);
        }
        other => {
            return Err(ArgError::Invalid {
                key: "mode".into(),
                value: other.to_string(),
                expected: "detailed, app-only, or accelerated",
            })
        }
    };
    Ok(render_report(&report))
}

/// One half of a `compare` invocation, so both halves can share the
/// experiment engine's job type.
enum CompareHalf {
    /// The detailed baseline run.
    Detailed(Box<RunReport>),
    /// The accelerated run.
    Accel(Box<AccelOutcome>),
}

fn cmd_compare(parsed: &ParsedArgs) -> Result<String, ArgError> {
    let cfg = sim_config(parsed)?;
    let strategy = parsed.strategy()?;
    // Serial by default: the wall-speedup column compares the two runs'
    // own wall times, which stay cleanest on an otherwise idle machine.
    // `--jobs 2` runs both simulations concurrently instead.
    let workers = parsed.jobs()?.unwrap_or(1);
    let detailed_cfg = cfg.clone();
    let jobs = vec![
        Job::new("detailed", move || {
            CompareHalf::Detailed(Box::new(FullSystemSim::new(detailed_cfg).run()))
        }),
        Job::new("accelerated", move || {
            CompareHalf::Accel(Box::new(
                AcceleratedSim::new(cfg, AccelConfig::with_strategy(strategy)).run(),
            ))
        }),
    ];
    let mut halves = run_jobs(jobs, workers).into_values();
    let (detailed, accel) = match (halves.remove(0), halves.remove(0)) {
        (CompareHalf::Detailed(d), CompareHalf::Accel(a)) => (*d, *a),
        _ => unreachable!("engine returns jobs in submission order"),
    };
    let err = osprey_stats::summary::abs_relative_error(
        accel.report.total_cycles as f64,
        detailed.total_cycles as f64,
    );
    let mut t = Table::new(["metric", "detailed", "accelerated"]);
    t.row([
        "cycles".to_string(),
        detailed.total_cycles.to_string(),
        accel.report.total_cycles.to_string(),
    ]);
    t.row([
        "IPC".to_string(),
        format!("{:.3}", detailed.ipc()),
        format!("{:.3}", accel.report.ipc()),
    ]);
    t.row([
        "L2 miss rate".to_string(),
        format!("{:.2}%", detailed.l2_miss_rate() * 100.0),
        format!("{:.2}%", accel.report.l2_miss_rate() * 100.0),
    ]);
    t.row([
        "wall time".to_string(),
        format!("{:.2?}", detailed.wall),
        format!("{:.2?}", accel.report.wall),
    ]);
    let mut out = t.render();
    out.push_str(&format!(
        "\ncoverage {:.1}%, execution-time error {:.2}%, wall speedup {:.1}x\n",
        accel.coverage() * 100.0,
        err * 100.0,
        detailed.wall.as_secs_f64() / accel.report.wall.as_secs_f64().max(1e-9),
    ));
    Ok(out)
}

/// Resolves the `--benchmarks` selector: `all`, `os-intensive`, or a
/// comma-separated list of paper names.
fn benchmarks_from(parsed: &ParsedArgs) -> Result<Vec<Benchmark>, ArgError> {
    let raw = parsed
        .options
        .get("benchmarks")
        .map(String::as_str)
        .unwrap_or("all");
    match raw {
        "all" => Ok(Benchmark::ALL.to_vec()),
        "os-intensive" => Ok(Benchmark::OS_INTENSIVE.to_vec()),
        list => list
            .split(',')
            .map(|name| {
                benchmark_by_name(name.trim()).ok_or_else(|| ArgError::Invalid {
                    key: "benchmarks".into(),
                    value: name.trim().to_string(),
                    expected: "all, os-intensive, or comma-separated benchmark names",
                })
            })
            .collect(),
    }
}

fn cmd_sweep(parsed: &ParsedArgs) -> Result<String, ArgError> {
    let benchmarks = benchmarks_from(parsed)?;
    let scale = parsed.get_parsed("scale", 1.0, "a positive number")?;
    let seed = parsed.get_parsed("seed", 1u64, "an integer")?;
    if scale <= 0.0 {
        return Err(ArgError::Invalid {
            key: "scale".into(),
            value: scale.to_string(),
            expected: "a positive number",
        });
    }
    let l2 = parsed.l2_bytes()?;
    let mode = parsed
        .options
        .get("mode")
        .map(String::as_str)
        .unwrap_or("detailed");
    let strategy = parsed.strategy()?;
    let workers = parsed.jobs()?.unwrap_or_else(default_workers);
    let jobs: Vec<Job<RunReport>> = benchmarks
        .iter()
        .map(|&b| {
            let cfg = SimConfig::new(b)
                .with_scale(scale)
                .with_seed(seed)
                .with_l2_bytes(l2);
            sweep_job(b, cfg, mode, strategy)
        })
        .collect::<Result<_, _>>()?;
    let run = run_jobs(jobs, workers);

    let mut t = Table::new([
        "benchmark",
        "instructions",
        "cycles",
        "IPC",
        "L2 miss rate",
        "OS intervals",
    ]);
    for r in &run.results {
        t.row([
            r.value.benchmark.clone(),
            r.value.total_instructions.to_string(),
            r.value.total_cycles.to_string(),
            format!("{:.3}", r.value.ipc()),
            format!("{:.2}%", r.value.l2_miss_rate() * 100.0),
            r.value.intervals.len().to_string(),
        ]);
    }
    // Stdout carries only deterministic simulated quantities, so a
    // parallel sweep's output is byte-identical to a serial one; the
    // wall-clock scaling goes to results/BENCH_sweep.json and stderr.
    let summary = run.summary("BENCH");
    match summary.write_to_results() {
        Ok(path) => eprintln!(
            "[osprey-exec] {} jobs on {} workers, serial estimate {:.0} ms, wall {:.0} ms, \
             speedup {:.2}x -> {}",
            summary.jobs.len(),
            run.workers,
            summary.serial_estimate.as_secs_f64() * 1e3,
            summary.parallel_wall.as_secs_f64() * 1e3,
            summary.speedup(),
            path.display()
        ),
        Err(e) => eprintln!("[osprey-exec] warning: BENCH_sweep.json not written: {e}"),
    }
    let mut out = t.render();
    out.push_str("sweep timing recorded in results/BENCH_sweep.json\n");
    Ok(out)
}

/// Builds the engine job for one sweep row.
fn sweep_job(
    b: Benchmark,
    cfg: SimConfig,
    mode: &str,
    strategy: RelearnStrategy,
) -> Result<Job<RunReport>, ArgError> {
    match mode {
        "detailed" => Ok(Job::sim(b.name(), cfg)),
        "app-only" => Ok(Job::new(b.name(), move || {
            FullSystemSim::new(cfg.with_os_mode(OsMode::AppOnly)).run()
        })),
        "accelerated" => Ok(Job::new(b.name(), move || {
            AcceleratedSim::new(cfg, AccelConfig::with_strategy(strategy))
                .run()
                .report
        })),
        other => Err(ArgError::Invalid {
            key: "mode".into(),
            value: other.to_string(),
            expected: "detailed, app-only, or accelerated",
        }),
    }
}

/// Renders a replayed outcome. Shared by `record` (its evaluation
/// section) and `replay`, and deliberately free of wall-clock times, so
/// the two commands' stdout agree byte for byte.
fn render_replay(strategy: &str, outcome: &ReplayOutcome) -> String {
    let r = &outcome.report;
    let mut t = Table::new(["metric", "value"]);
    t.row(["benchmark", r.benchmark.as_str()]);
    t.row(["strategy", strategy]);
    t.row(["instructions", &r.total_instructions.to_string()]);
    t.row(["cycles", &r.total_cycles.to_string()]);
    t.row(["IPC", &format!("{:.3}", r.ipc())]);
    t.row(["L2 miss rate", &format!("{:.2}%", r.l2_miss_rate() * 100.0)]);
    t.row(["OS intervals", &r.intervals.len().to_string()]);
    t.row(["coverage", &format!("{:.1}%", outcome.coverage() * 100.0)]);
    t.row([
        "re-learning events",
        &outcome.stats.relearn_events().to_string(),
    ]);
    t.render()
}

fn cmd_record(parsed: &ParsedArgs) -> Result<String, ArgError> {
    let cfg = sim_config(parsed)?;
    let snapshot_every = parsed.get_parsed(
        "snapshot-every",
        osprey_sim::DEFAULT_SNAPSHOT_EVERY,
        "a positive interval count",
    )?;
    if snapshot_every == 0 {
        return Err(ArgError::Invalid {
            key: "snapshot-every".into(),
            value: "0".into(),
            expected: "a positive interval count",
        });
    }
    let path = match parsed.options.get("out") {
        Some(p) => PathBuf::from(p),
        None => PathBuf::from("results/traces").join(format!(
            "{}_seed{}.ospt",
            cfg.benchmark.name(),
            cfg.seed
        )),
    };
    let (bytes, _live) = osprey_trace::record_bytes(&cfg, snapshot_every);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| ArgError::Trace(osprey_trace::codes::io(parent, &e)))?;
        }
    }
    std::fs::write(&path, &bytes)
        .map_err(|e| ArgError::Trace(osprey_trace::codes::io(&path, &e)))?;
    let trace = TraceReader::from_bytes(&bytes)?;
    let mut out = format!(
        "recorded {} -> {} ({} events, {} bytes)\n",
        cfg.benchmark.name(),
        path.display(),
        trace.events.len(),
        bytes.len()
    );
    // The printed evaluation goes through the replay engine, so
    // `osprey replay --trace <file>` with the same strategy reproduces
    // this section byte-identically.
    let strategy_name = parsed
        .options
        .get("strategy")
        .map(String::as_str)
        .unwrap_or("statistical");
    let outcome = ReplaySim::new(&trace, AccelConfig::with_strategy(parsed.strategy()?))?.run();
    out.push_str(&render_replay(strategy_name, &outcome));
    Ok(out)
}

fn cmd_replay(parsed: &ParsedArgs) -> Result<String, ArgError> {
    let path = parsed.trace_path()?;
    let trace = Arc::new(TraceReader::open(&path)?);
    // Surface trace-shape problems (no summary, not detailed) before
    // fanning out worker jobs.
    ReplaySim::new(&trace, AccelConfig::default())?;
    let strategies = parsed.strategies()?;
    let workers = parsed.jobs()?.unwrap_or_else(default_workers);
    let jobs: Vec<Job<(String, ReplayOutcome)>> = strategies
        .into_iter()
        .map(|(name, strategy)| {
            let trace = Arc::clone(&trace);
            let label = name.clone();
            Job::new(name, move || {
                let outcome = ReplaySim::new(&trace, AccelConfig::with_strategy(strategy))
                    .expect("trace validated before dispatch")
                    .run();
                (label, outcome)
            })
        })
        .collect();
    let run = run_jobs(jobs, workers);
    let summary = run.summary("replay");
    // Stdout carries only deterministic replayed quantities; the
    // wall-clock story goes to stderr (cf. sweep).
    eprintln!(
        "[osprey-exec] replayed {} configuration(s) on {} workers, wall {:.0} ms",
        summary.jobs.len(),
        run.workers,
        summary.parallel_wall.as_secs_f64() * 1e3,
    );
    let mut out = String::new();
    for (name, outcome) in run.into_values() {
        out.push_str(&render_replay(&name, &outcome));
    }
    Ok(out)
}

fn cmd_trace_info(parsed: &ParsedArgs) -> Result<String, ArgError> {
    let path = parsed.trace_path()?;
    let bytes =
        std::fs::read(&path).map_err(|e| ArgError::Trace(osprey_trace::codes::io(&path, &e)))?;
    let trace = TraceReader::from_bytes(&bytes)?;
    let (mut invocations, mut simulated, mut predicted, mut decisions, mut snapshots) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for event in &trace.events {
        match event {
            TraceEvent::Invocation { .. } => invocations += 1,
            TraceEvent::Simulated(_) => simulated += 1,
            TraceEvent::Predicted(_) => predicted += 1,
            TraceEvent::Decision { .. } => decisions += 1,
            TraceEvent::Snapshot(_) => snapshots += 1,
        }
    }
    let m = &trace.meta;
    let mut t = Table::new(["field", "value"]);
    t.row(["file", &path.display().to_string()]);
    t.row(["format", &format!("OSPT v{}", osprey_trace::wire::VERSION)]);
    t.row(["size", &format!("{} bytes", bytes.len())]);
    t.row(["benchmark", m.benchmark.name()]);
    t.row(["seed", &m.seed.to_string()]);
    t.row(["scale", &m.scale.to_string()]);
    t.row(["L2 bytes", &m.l2_bytes.to_string()]);
    t.row(["core model", m.core.name()]);
    t.row([
        "OS mode",
        match m.os_mode {
            OsMode::Full => "full-system",
            OsMode::AppOnly => "app-only",
        },
    ]);
    t.row(["snapshot every", &m.snapshot_every.to_string()]);
    t.row(["events", &trace.events.len().to_string()]);
    t.row(["  invocations", &invocations.to_string()]);
    t.row(["  simulated intervals", &simulated.to_string()]);
    t.row(["  predicted intervals", &predicted.to_string()]);
    t.row(["  decisions", &decisions.to_string()]);
    t.row(["  snapshots", &snapshots.to_string()]);
    t.row([
        "summary",
        if trace.summary.is_some() { "yes" } else { "no" },
    ]);
    t.row(["detailed", if trace.is_detailed() { "yes" } else { "no" }]);
    let mut out = t.render();
    let diags = verify_trace(&trace);
    if let Some(first_error) = diags.iter().find(|d| d.is_error()).cloned() {
        eprint!("{}", osprey_report::diagnostics_table(&diags).render());
        return Err(ArgError::Trace(first_error));
    }
    if diags.is_empty() {
        out.push_str("structure: ok\n");
    } else {
        out.push_str(&osprey_report::diagnostics_table(&diags).render());
    }
    Ok(out)
}

fn cmd_services(parsed: &ParsedArgs) -> Result<String, ArgError> {
    let cfg = sim_config(parsed)?;
    let report = FullSystemSim::new(cfg).run();
    let mut t = Table::new([
        "service",
        "count",
        "mean instr",
        "mean cycles",
        "stddev",
        "mean IPC",
    ]);
    for s in report.service_summaries() {
        t.row([
            s.service.name().to_string(),
            s.count.to_string(),
            format!("{:.0}", s.instructions.mean()),
            format!("{:.0}", s.cycles.mean()),
            format!("{:.0}", s.cycles.population_std_dev()),
            format!("{:.3}", s.ipc.mean()),
        ]);
    }
    Ok(t.render())
}

fn cmd_window(parsed: &ParsedArgs) -> Result<String, ArgError> {
    let p_min = parsed.get_parsed("pmin", 0.03, "a probability in (0,1]")?;
    let doc = parsed.get_parsed("doc", 0.95, "a confidence in (0,1)")?;
    match osprey_stats::learning_window(p_min, doc) {
        Some(n) => Ok(format!(
            "capturing clusters with occurrence probability >= {:.1}% at {:.0}% \
             confidence requires a learning window of {n} invocations\n",
            p_min * 100.0,
            doc * 100.0
        )),
        None => Err(ArgError::Invalid {
            key: "pmin/doc".into(),
            value: format!("{p_min}/{doc}"),
            expected: "pmin in (0,1], doc in (0,1)",
        }),
    }
}

fn render_diagnostics(diags: &[osprey_report::Diagnostic], format: &str) -> String {
    if format == "csv" {
        osprey_report::diagnostics_csv(diags)
    } else {
        osprey_report::diagnostics_table(diags).render()
    }
}

fn cmd_verify(parsed: &ParsedArgs) -> Result<String, ArgError> {
    let format = parsed
        .options
        .get("format")
        .map(String::as_str)
        .unwrap_or("table");
    if !matches!(format, "table" | "csv") {
        return Err(ArgError::Invalid {
            key: "format".into(),
            value: format.to_string(),
            expected: "table or csv",
        });
    }

    if parsed.options.contains_key("trace") {
        let path = parsed.trace_path()?;
        let trace = TraceReader::open(&path)?;
        let diags = verify_trace(&trace);
        return Ok(if diags.is_empty() {
            format!("{}: ok (structural trace checks passed)\n", path.display())
        } else {
            format!(
                "{}: {} diagnostic(s)\n{}",
                path.display(),
                diags.len(),
                render_diagnostics(&diags, format)
            )
        });
    }

    if let Some(raw) = parsed.options.get("fixture") {
        let fixtures: Vec<&osprey_verify::fixtures::Fixture> = if raw == "all" {
            osprey_verify::fixtures::ALL.iter().collect()
        } else {
            let fixture =
                osprey_verify::fixtures::by_name(raw).ok_or_else(|| ArgError::Invalid {
                    key: "fixture".into(),
                    value: raw.clone(),
                    expected: "`all` or a fixture name (see `osprey verify --fixture all`)",
                })?;
            vec![fixture]
        };
        let mut out = String::new();
        for f in fixtures {
            let diags = osprey_verify::verify(&(f.build)());
            out.push_str(&format!(
                "fixture {} (expects {}):\n{}\n",
                f.name,
                f.expected_code,
                render_diagnostics(&diags, format)
            ));
        }
        return Ok(out);
    }

    let benchmark = parsed.benchmark()?;
    let scale = parsed.get_parsed("scale", 0.1, "a positive number")?;
    let seed = parsed.get_parsed("seed", 1u64, "an integer")?;
    if scale <= 0.0 {
        return Err(ArgError::Invalid {
            key: "scale".into(),
            value: scale.to_string(),
            expected: "a positive number",
        });
    }
    let diags = osprey_verify::verify_benchmark(benchmark, seed, scale);
    if diags.is_empty() {
        Ok(format!(
            "{benchmark}: ok (no diagnostics at scale {scale}, seed {seed})\n"
        ))
    } else {
        Ok(format!(
            "{benchmark}: {} diagnostic(s)\n{}",
            diags.len(),
            render_diagnostics(&diags, format)
        ))
    }
}

fn cmd_list() -> String {
    let mut t = Table::new(["benchmark", "category", "OS-intensive"]);
    for b in Benchmark::ALL {
        let category = match b {
            Benchmark::AbRand | Benchmark::AbSeq => "web server",
            Benchmark::Du | Benchmark::FindOd => "unix tools",
            Benchmark::Iperf => "network",
            _ => "SPEC-like compute",
        };
        t.row([
            b.name(),
            category,
            if b.is_os_intensive() { "yes" } else { "no" },
        ]);
    }
    t.render()
}

/// Executes a parsed command line, returning the text to print.
///
/// # Examples
///
/// ```
/// use osprey_cli::{dispatch, parse};
///
/// let parsed = parse(&["list".into()]).unwrap();
/// let out = dispatch(&parsed).unwrap();
/// assert!(out.contains("iperf"));
/// ```
pub fn dispatch(parsed: &ParsedArgs) -> Result<String, ArgError> {
    match parsed.command.as_str() {
        "run" => cmd_run(parsed),
        "compare" => cmd_compare(parsed),
        "sweep" => cmd_sweep(parsed),
        "record" => cmd_record(parsed),
        "replay" => cmd_replay(parsed),
        "trace-info" => cmd_trace_info(parsed),
        "services" => cmd_services(parsed),
        "window" => cmd_window(parsed),
        "verify" => cmd_verify(parsed),
        "list" => Ok(cmd_list()),
        "help" | "--help" | "-h" => Ok(help_text()),
        other => Err(ArgError::Unexpected(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run(parts: &[&str]) -> Result<String, ArgError> {
        let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        dispatch(&parse(&argv).unwrap())
    }

    #[test]
    fn list_names_all_benchmarks() {
        let out = run(&["list"]).unwrap();
        for b in Benchmark::ALL {
            assert!(out.contains(b.name()), "missing {b}");
        }
    }

    #[test]
    fn window_matches_the_paper() {
        let out = run(&["window"]).unwrap();
        assert!(out.contains("99 invocations"), "{out}");
    }

    #[test]
    fn run_prints_a_report() {
        let out = run(&["run", "--benchmark", "du", "--scale", "0.02"]).unwrap();
        assert!(out.contains("OS fraction"));
        assert!(out.contains("du"));
    }

    #[test]
    fn run_accelerated_prints_coverage() {
        let out = run(&[
            "run",
            "--benchmark",
            "iperf",
            "--scale",
            "0.05",
            "--mode",
            "accelerated",
        ])
        .unwrap();
        assert!(out.contains("coverage"));
    }

    #[test]
    fn compare_reports_error_and_speedup() {
        let out = run(&["compare", "--benchmark", "du", "--scale", "0.05"]).unwrap();
        assert!(out.contains("execution-time error"));
        assert!(out.contains("wall speedup"));
    }

    #[test]
    fn sweep_runs_selected_benchmarks_in_parallel() {
        let out = run(&[
            "sweep",
            "--benchmarks",
            "du,iperf",
            "--scale",
            "0.05",
            "--jobs",
            "2",
        ])
        .unwrap();
        assert!(out.contains("du"), "{out}");
        assert!(out.contains("iperf"), "{out}");
        assert!(out.contains("BENCH_sweep.json"), "{out}");
    }

    #[test]
    fn sweep_output_is_identical_serial_and_parallel() {
        let base = [
            "sweep",
            "--benchmarks",
            "os-intensive",
            "--scale",
            "0.05",
            "--jobs",
        ];
        let mut serial_args: Vec<&str> = base.to_vec();
        serial_args.push("1");
        let mut parallel_args: Vec<&str> = base.to_vec();
        parallel_args.push("4");
        assert_eq!(run(&serial_args).unwrap(), run(&parallel_args).unwrap());
    }

    #[test]
    fn sweep_rejects_unknown_benchmark() {
        let err = run(&["sweep", "--benchmarks", "nginx"]).unwrap_err();
        assert!(matches!(err, ArgError::Invalid { .. }));
    }

    #[test]
    fn compare_accepts_jobs_option() {
        let out = run(&[
            "compare",
            "--benchmark",
            "iperf",
            "--scale",
            "0.05",
            "--jobs",
            "2",
        ])
        .unwrap();
        assert!(out.contains("coverage"), "{out}");
    }

    #[test]
    fn services_lists_kernel_services() {
        let out = run(&["services", "--benchmark", "du", "--scale", "0.05"]).unwrap();
        assert!(out.contains("sys_lstat64"));
    }

    #[test]
    fn verify_passes_clean_benchmarks() {
        let out = run(&["verify", "--benchmark", "du", "--scale", "0.05"]).unwrap();
        assert!(out.contains("du: ok"), "{out}");
    }

    #[test]
    fn verify_flags_each_fixture_with_its_code() {
        let out = run(&["verify", "--fixture", "all"]).unwrap();
        for f in osprey_verify::fixtures::ALL {
            assert!(out.contains(f.name), "missing fixture {}", f.name);
            assert!(out.contains(f.expected_code), "missing {}", f.expected_code);
        }
    }

    #[test]
    fn verify_emits_csv_diagnostics() {
        let out = run(&["verify", "--fixture", "zero-budget", "--format", "csv"]).unwrap();
        assert!(out.contains("code,severity,location,message"), "{out}");
        assert!(out.contains("OSPV011"), "{out}");
    }

    #[test]
    fn verify_rejects_unknown_fixture() {
        let err = run(&["verify", "--fixture", "nope"]).unwrap_err();
        assert!(matches!(err, ArgError::Invalid { .. }));
    }

    fn temp_trace(name: &str) -> std::path::PathBuf {
        std::env::temp_dir()
            .join(format!("osprey-cli-trace-{}", std::process::id()))
            .join(name)
    }

    #[test]
    fn record_then_replay_is_byte_identical_at_any_job_count() {
        let path = temp_trace("du_roundtrip.ospt");
        let path_str = path.display().to_string();
        let recorded = run(&[
            "record",
            "--benchmark",
            "du",
            "--scale",
            "0.02",
            "--seed",
            "3",
            "--out",
            &path_str,
        ])
        .unwrap();
        assert!(recorded.contains("recorded du"), "{recorded}");
        let serial = run(&["replay", "--trace", &path_str, "--jobs", "1"]).unwrap();
        let parallel = run(&["replay", "--trace", &path_str, "--jobs", "4"]).unwrap();
        assert_eq!(serial, parallel, "replay must not depend on --jobs");
        // The evaluation section record printed IS the replay output.
        assert!(
            recorded.ends_with(&serial),
            "record evaluation must match replay output:\n{recorded}\nvs\n{serial}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_fans_out_over_strategies() {
        let path = temp_trace("du_strategies.ospt");
        let path_str = path.display().to_string();
        run(&[
            "record",
            "--benchmark",
            "du",
            "--scale",
            "0.02",
            "--out",
            &path_str,
        ])
        .unwrap();
        let out = run(&[
            "replay",
            "--trace",
            &path_str,
            "--strategies",
            "best-match,eager",
            "--jobs",
            "2",
        ])
        .unwrap();
        assert!(out.contains("best-match"), "{out}");
        assert!(out.contains("eager"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_info_describes_and_verifies_a_recording() {
        let path = temp_trace("du_info.ospt");
        let path_str = path.display().to_string();
        run(&[
            "record",
            "--benchmark",
            "du",
            "--scale",
            "0.02",
            "--out",
            &path_str,
        ])
        .unwrap();
        let out = run(&["trace-info", "--trace", &path_str]).unwrap();
        assert!(out.contains("OSPT v1"), "{out}");
        assert!(out.contains("du"), "{out}");
        assert!(out.contains("simulated intervals"), "{out}");
        assert!(out.contains("structure: ok"), "{out}");

        let verified = run(&["verify", "--trace", &path_str]).unwrap();
        assert!(verified.contains("ok"), "{verified}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_traces_fail_with_typed_diagnostics() {
        let path = temp_trace("du_corrupt.ospt");
        let path_str = path.display().to_string();
        run(&[
            "record",
            "--benchmark",
            "du",
            "--scale",
            "0.02",
            "--out",
            &path_str,
        ])
        .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        match run(&["trace-info", "--trace", &path_str]) {
            Err(ArgError::Trace(d)) => assert_eq!(d.code, "OSPT003"),
            other => panic!("expected OSPT003, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_requires_a_trace_option() {
        let err = run(&["replay"]).unwrap_err();
        assert!(matches!(err, ArgError::Invalid { .. }));
    }

    #[test]
    fn bad_mode_is_rejected() {
        let err = run(&["run", "--mode", "psychic"]).unwrap_err();
        assert!(matches!(err, ArgError::Invalid { .. }));
    }

    #[test]
    fn unknown_command_is_rejected() {
        let err = run(&["frobnicate"]).unwrap_err();
        assert_eq!(err, ArgError::Unexpected("frobnicate".into()));
    }

    #[test]
    fn help_mentions_every_command() {
        let h = help_text();
        for cmd in ["run", "compare", "sweep", "services", "window", "list"] {
            assert!(h.contains(cmd));
        }
        assert!(h.contains("--jobs"));
    }
}

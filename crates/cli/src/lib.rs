//! Library backing the `osprey` command-line tool.
//!
//! The CLI wraps the Osprey workspace for interactive use:
//!
//! ```text
//! osprey run       --benchmark ab-rand --mode accelerated --scale 0.5
//! osprey compare   --benchmark iperf --strategy statistical
//! osprey services  --benchmark ab-seq
//! osprey window    --pmin 0.03 --doc 0.95
//! osprey list
//! ```
//!
//! All subcommands are implemented as functions returning the rendered
//! output string, so they are unit-testable without spawning processes.

pub mod args;
pub mod commands;

pub use args::{parse, ArgError, ParsedArgs};
pub use commands::{dispatch, help_text};

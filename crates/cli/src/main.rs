//! The `osprey` command-line tool. See [`osprey_cli`] for the library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match osprey_cli::parse(&args) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("error: {err}");
            eprint!("{}", osprey_cli::help_text());
            std::process::exit(2);
        }
    };
    match osprey_cli::dispatch(&parsed) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

//! Minimal dependency-free argument parsing for the `osprey` CLI.

use std::collections::HashMap;

use osprey_core::RelearnStrategy;
use osprey_workloads::Benchmark;

/// A parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` options.
    pub options: HashMap<String, String>,
}

/// Errors produced while interpreting the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--key` with no following value.
    MissingValue(String),
    /// An argument that is neither a subcommand nor a `--key`.
    Unexpected(String),
    /// A value failed to parse.
    Invalid {
        /// The option name.
        key: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A trace or checkpoint operation failed with a typed diagnostic
    /// (`OSPT0xx`).
    Trace(osprey_report::Diagnostic),
}

impl From<osprey_report::Diagnostic> for ArgError {
    fn from(diag: osprey_report::Diagnostic) -> Self {
        ArgError::Trace(diag)
    }
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand; try `osprey help`"),
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::Unexpected(a) => write!(f, "unexpected argument `{a}`"),
            ArgError::Invalid {
                key,
                value,
                expected,
            } => write!(
                f,
                "invalid value `{value}` for --{key}: expected {expected}"
            ),
            ArgError::Trace(d) => write!(f, "{} [{}]: {}", d.code, d.location, d.message),
        }
    }
}

impl std::error::Error for ArgError {}

/// Splits raw arguments (without the program name) into a subcommand and
/// `--key value` pairs.
///
/// # Examples
///
/// ```
/// use osprey_cli::args::parse;
///
/// let parsed = parse(&["run".into(), "--benchmark".into(), "du".into()]).unwrap();
/// assert_eq!(parsed.command, "run");
/// assert_eq!(parsed.options["benchmark"], "du");
/// ```
pub fn parse(args: &[String]) -> Result<ParsedArgs, ArgError> {
    let mut iter = args.iter();
    let command = iter.next().ok_or(ArgError::MissingCommand)?.clone();
    let mut options = HashMap::new();
    while let Some(arg) = iter.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| ArgError::Unexpected(arg.clone()))?;
        let value = iter
            .next()
            .ok_or_else(|| ArgError::MissingValue(key.to_string()))?;
        options.insert(key.to_string(), value.clone());
    }
    Ok(ParsedArgs { command, options })
}

impl ParsedArgs {
    /// Reads an option parsed with `FromStr`, or the default.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::Invalid {
                key: key.to_string(),
                value: raw.clone(),
                expected,
            }),
        }
    }

    /// Reads the benchmark option (default `iperf`).
    pub fn benchmark(&self) -> Result<Benchmark, ArgError> {
        let raw = self
            .options
            .get("benchmark")
            .map(String::as_str)
            .unwrap_or("iperf");
        benchmark_by_name(raw).ok_or(ArgError::Invalid {
            key: "benchmark".into(),
            value: raw.to_string(),
            expected: "one of ab-rand, ab-seq, du, find-od, iperf, gzip, vpr, art, swim",
        })
    }

    /// Reads the re-learning strategy option (default `statistical`).
    pub fn strategy(&self) -> Result<RelearnStrategy, ArgError> {
        let raw = self
            .options
            .get("strategy")
            .map(String::as_str)
            .unwrap_or("statistical");
        strategy_by_name(raw).ok_or(ArgError::Invalid {
            key: "strategy".into(),
            value: raw.to_string(),
            expected: "one of best-match, eager, delayed, statistical",
        })
    }

    /// Reads the `--jobs` worker-count option. `None` means the option
    /// was absent, letting each command pick its own default (serial
    /// for `compare`, whose wall-clock comparison is the point; the
    /// machine's parallelism for `sweep`).
    pub fn jobs(&self) -> Result<Option<usize>, ArgError> {
        match self.options.get("jobs") {
            None => Ok(None),
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n > 0 => Ok(Some(n)),
                _ => Err(ArgError::Invalid {
                    key: "jobs".into(),
                    value: raw.clone(),
                    expected: "a positive worker count",
                }),
            },
        }
    }

    /// Reads the required `--trace <file>` option.
    pub fn trace_path(&self) -> Result<std::path::PathBuf, ArgError> {
        self.options
            .get("trace")
            .map(std::path::PathBuf::from)
            .ok_or(ArgError::Invalid {
                key: "trace".into(),
                value: "(missing)".into(),
                expected: "a trace file path (--trace <file>)",
            })
    }

    /// Reads the `--strategies` selector: `all` or a comma-separated
    /// list of strategy names. Falls back to the single `--strategy`
    /// option (default `statistical`) when absent.
    pub fn strategies(&self) -> Result<Vec<(String, RelearnStrategy)>, ArgError> {
        const ALL: [&str; 4] = ["best-match", "eager", "delayed", "statistical"];
        let named = |name: &str| -> Result<(String, RelearnStrategy), ArgError> {
            strategy_by_name(name)
                .map(|s| (name.to_string(), s))
                .ok_or(ArgError::Invalid {
                    key: "strategies".into(),
                    value: name.to_string(),
                    expected: "all, or comma-separated strategy names",
                })
        };
        match self.options.get("strategies").map(String::as_str) {
            None => {
                let name = self
                    .options
                    .get("strategy")
                    .map(String::as_str)
                    .unwrap_or("statistical");
                Ok(vec![(name.to_string(), self.strategy()?)])
            }
            Some("all") => ALL.iter().map(|n| named(n)).collect(),
            Some(list) => list.split(',').map(|n| named(n.trim())).collect(),
        }
    }

    /// Reads the L2 size option, accepting `512K`/`1M`-style suffixes
    /// (default 1 MiB).
    pub fn l2_bytes(&self) -> Result<u64, ArgError> {
        let raw = self.options.get("l2").map(String::as_str).unwrap_or("1M");
        parse_size(raw).ok_or(ArgError::Invalid {
            key: "l2".into(),
            value: raw.to_string(),
            expected: "a size such as 512K, 1M, 2M",
        })
    }
}

/// Looks a benchmark up by its paper name.
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| b.name() == name)
}

/// Looks a re-learning strategy up by name (paper parameters).
pub fn strategy_by_name(name: &str) -> Option<RelearnStrategy> {
    match name {
        "best-match" => Some(RelearnStrategy::BestMatch),
        "eager" => Some(RelearnStrategy::Eager),
        "delayed" => Some(RelearnStrategy::Delayed { threshold: 4 }),
        "statistical" => Some(RelearnStrategy::Statistical {
            p_min: 0.03,
            alpha: 0.05,
            min_epos: 4,
        }),
        _ => None,
    }
}

/// Parses `4096`, `512K`, `1M`, `2G` into bytes.
pub fn parse_size(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    let (digits, multiplier) = match raw.chars().last()? {
        'k' | 'K' => (&raw[..raw.len() - 1], 1024),
        'm' | 'M' => (&raw[..raw.len() - 1], 1024 * 1024),
        'g' | 'G' => (&raw[..raw.len() - 1], 1024 * 1024 * 1024),
        _ => (raw, 1),
    };
    let value: u64 = digits.parse().ok()?;
    value.checked_mul(multiplier).filter(|&v| v > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let p = parse(&argv(&["compare", "--benchmark", "du", "--scale", "0.5"])).unwrap();
        assert_eq!(p.command, "compare");
        assert_eq!(p.options.len(), 2);
        assert_eq!(p.benchmark().unwrap(), Benchmark::Du);
        assert_eq!(p.get_parsed("scale", 1.0, "a number").unwrap(), 0.5);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse(&[]), Err(ArgError::MissingCommand));
        assert_eq!(
            parse(&argv(&["run", "stray"])),
            Err(ArgError::Unexpected("stray".into()))
        );
        assert_eq!(
            parse(&argv(&["run", "--scale"])),
            Err(ArgError::MissingValue("scale".into()))
        );
    }

    #[test]
    fn benchmark_names_cover_the_suite() {
        for b in Benchmark::ALL {
            assert_eq!(benchmark_by_name(b.name()), Some(b));
        }
        assert_eq!(benchmark_by_name("nginx"), None);
    }

    #[test]
    fn strategy_names_resolve() {
        assert_eq!(
            strategy_by_name("best-match"),
            Some(RelearnStrategy::BestMatch)
        );
        assert_eq!(strategy_by_name("eager"), Some(RelearnStrategy::Eager));
        assert!(matches!(
            strategy_by_name("delayed"),
            Some(RelearnStrategy::Delayed { threshold: 4 })
        ));
        assert!(matches!(
            strategy_by_name("statistical"),
            Some(RelearnStrategy::Statistical { .. })
        ));
        assert_eq!(strategy_by_name("psychic"), None);
    }

    #[test]
    fn sizes_parse_with_suffixes() {
        assert_eq!(parse_size("4096"), Some(4096));
        assert_eq!(parse_size("512K"), Some(512 * 1024));
        assert_eq!(parse_size("1M"), Some(1024 * 1024));
        assert_eq!(parse_size("2g"), Some(2 * 1024 * 1024 * 1024));
        assert_eq!(parse_size("0"), None);
        assert_eq!(parse_size("abc"), None);
        assert_eq!(parse_size(""), None);
    }

    #[test]
    fn defaults_apply_when_options_absent() {
        let p = parse(&argv(&["run"])).unwrap();
        assert_eq!(p.benchmark().unwrap(), Benchmark::Iperf);
        assert_eq!(p.l2_bytes().unwrap(), 1024 * 1024);
        assert!(matches!(
            p.strategy().unwrap(),
            RelearnStrategy::Statistical { .. }
        ));
    }

    #[test]
    fn jobs_option_parses_and_validates() {
        let p = parse(&argv(&["sweep", "--jobs", "4"])).unwrap();
        assert_eq!(p.jobs().unwrap(), Some(4));
        let p = parse(&argv(&["sweep"])).unwrap();
        assert_eq!(p.jobs().unwrap(), None);
        let p = parse(&argv(&["sweep", "--jobs", "0"])).unwrap();
        assert!(matches!(p.jobs(), Err(ArgError::Invalid { .. })));
    }

    #[test]
    fn strategies_selector_resolves_lists_and_defaults() {
        let p = parse(&argv(&["replay", "--strategies", "best-match, eager"])).unwrap();
        let list = p.strategies().unwrap();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].0, "best-match");
        assert_eq!(list[1].1, RelearnStrategy::Eager);

        let p = parse(&argv(&["replay", "--strategies", "all"])).unwrap();
        assert_eq!(p.strategies().unwrap().len(), 4);

        let p = parse(&argv(&["replay", "--strategy", "eager"])).unwrap();
        let list = p.strategies().unwrap();
        assert_eq!(list, vec![("eager".to_string(), RelearnStrategy::Eager)]);

        let p = parse(&argv(&["replay", "--strategies", "psychic"])).unwrap();
        assert!(matches!(p.strategies(), Err(ArgError::Invalid { .. })));
    }

    #[test]
    fn trace_path_is_required() {
        let p = parse(&argv(&["replay", "--trace", "a.ospt"])).unwrap();
        assert_eq!(p.trace_path().unwrap(), std::path::PathBuf::from("a.ospt"));
        let p = parse(&argv(&["replay"])).unwrap();
        assert!(matches!(p.trace_path(), Err(ArgError::Invalid { .. })));
    }

    #[test]
    fn invalid_values_are_reported_with_context() {
        let p = parse(&argv(&["run", "--l2", "huge"])).unwrap();
        match p.l2_bytes() {
            Err(ArgError::Invalid { key, .. }) => assert_eq!(key, "l2"),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }
}

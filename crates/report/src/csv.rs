//! Minimal CSV emission (comma-separated, quoted only when needed).

/// Serializes rows of string-like cells to CSV.
///
/// Cells containing commas, quotes, or newlines are quoted with doubled
/// inner quotes, per RFC 4180.
///
/// # Examples
///
/// ```
/// let csv = osprey_report::to_csv(&[
///     vec!["bench".to_string(), "value".to_string()],
///     vec!["ab,rand".to_string(), "1.5".to_string()],
/// ]);
/// assert_eq!(csv, "bench,value\n\"ab,rand\",1.5\n");
/// ```
pub fn to_csv(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        let mut first = true;
        for cell in row {
            if !first {
                out.push(',');
            }
            first = false;
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                out.push('"');
                out.push_str(&cell.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(cell);
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(cells: &[&str]) -> Vec<String> {
        cells.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn plain_cells_are_unquoted() {
        assert_eq!(to_csv(&[row(&["a", "b"])]), "a,b\n");
    }

    #[test]
    fn special_cells_are_quoted_and_escaped() {
        assert_eq!(to_csv(&[row(&["a,b"])]), "\"a,b\"\n");
        assert_eq!(to_csv(&[row(&["say \"hi\""])]), "\"say \"\"hi\"\"\"\n");
        assert_eq!(to_csv(&[row(&["two\nlines"])]), "\"two\nlines\"\n");
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert_eq!(to_csv(&[]), "");
    }
}

//! Text rendering for Osprey experiment reports: aligned ASCII tables,
//! horizontal bar charts, sparse scatter plots, and CSV emission.
//!
//! Every figure/table regenerator in `osprey-bench` prints through this
//! crate so the output style is uniform.
//!
//! # Examples
//!
//! ```
//! use osprey_report::Table;
//!
//! let mut t = Table::new(["benchmark", "speedup"]);
//! t.row(["iperf", "15.6x"]);
//! t.row(["du", "7.1x"]);
//! let text = t.render();
//! assert!(text.contains("iperf"));
//! assert!(text.lines().count() >= 4);
//! ```

pub mod chart;
pub mod csv;
pub mod diag;
pub mod table;

pub use chart::{bar_chart, scatter};
pub use csv::to_csv;
pub use diag::{diagnostics_csv, diagnostics_table, Diagnostic, Severity};
pub use table::Table;

//! Aligned ASCII tables.

use crate::diag::Diagnostic;

/// A simple column-aligned text table.
///
/// The first column is left-aligned; all other columns are
/// right-aligned, which suits label-then-numbers layouts.
///
/// # Examples
///
/// ```
/// use osprey_report::Table;
///
/// let mut t = Table::new(["name", "value"]);
/// t.row(["alpha", "1.00"]);
/// let s = t.render();
/// assert!(s.starts_with("name"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's. Callers
    /// assembling rows from untrusted input should use
    /// [`Table::try_row`] instead.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        if let Err(d) = self.try_row(cells) {
            panic!("row width must match header width: {d}");
        }
        self
    }

    /// Appends a row, reporting a width mismatch as an `OSPR001`
    /// [`Diagnostic`] instead of panicking.
    pub fn try_row<I, S>(&mut self, cells: I) -> Result<&mut Self, Diagnostic>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        if row.len() != self.headers.len() {
            return Err(Diagnostic::error(
                "OSPR001",
                format!("table row {}", self.rows.len()),
                format!(
                    "row has {} cells but the header has {} columns",
                    row.len(),
                    self.headers.len()
                ),
            ));
        }
        self.rows.push(row);
        Ok(self)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["bench", "cycles"]);
        t.row(["ab-rand", "123"]);
        t.row(["du", "4567890"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width (alignment).
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].ends_with("4567890"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn try_row_reports_ragged_rows_as_diagnostics() {
        let mut t = Table::new(["a", "b"]);
        let err = t.try_row(["only-one"]).unwrap_err();
        assert_eq!(err.code, "OSPR001");
        assert!(err.is_error());
        assert!(t.is_empty(), "failed row must not be recorded");
        assert!(t.try_row(["x", "y"]).is_ok());
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["x"]);
        assert_eq!(t.len(), 1);
    }
}

//! ASCII bar charts and scatter plots.

/// Renders a horizontal bar chart.
///
/// Bars are scaled so the longest equals `width` characters.
///
/// # Examples
///
/// ```
/// let s = osprey_report::bar_chart(
///     "speedups",
///     &[("iperf".to_string(), 15.6), ("du".to_string(), 7.1)],
///     40,
/// );
/// assert!(s.contains("iperf"));
/// assert!(s.contains('#'));
/// ```
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let mut out = format!("{title}\n");
    let max = rows
        .iter()
        .map(|(_, v)| v.abs())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in rows {
        let n = ((value.abs() / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:<label_w$}  {:>10.4}  {}\n",
            label,
            value,
            "#".repeat(n)
        ));
    }
    out
}

/// Renders a sparse scatter plot of `(x, y)` points into a
/// `width` × `height` character grid, with axis ranges annotated.
///
/// Intended for quick visual inspection of series like the paper's Fig. 4
/// (per-invocation cycles) and Fig. 5 (instruction/cycle bubbles).
///
/// # Examples
///
/// ```
/// let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, (i * i) as f64)).collect();
/// let s = osprey_report::scatter(&pts, 40, 10);
/// assert!(s.contains('*'));
/// ```
pub fn scatter(points: &[(f64, f64)], width: usize, height: usize) -> String {
    if points.is_empty() || width == 0 || height == 0 {
        return String::from("(no data)\n");
    }
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let span_x = (max_x - min_x).max(f64::MIN_POSITIVE);
    let span_y = (max_y - min_y).max(f64::MIN_POSITIVE);
    let mut grid = vec![vec![' '; width]; height];
    for &(x, y) in points {
        let cx = (((x - min_x) / span_x) * (width - 1) as f64).round() as usize;
        let cy = (((y - min_y) / span_y) * (height - 1) as f64).round() as usize;
        grid[height - 1 - cy][cx] = '*';
    }
    let mut out = String::new();
    out.push_str(&format!("y: {min_y:.0} .. {max_y:.0}\n"));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("x: {min_x:.0} .. {max_x:.0}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_width() {
        let s = bar_chart("t", &[("a".into(), 1.0), ("b".into(), 2.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        let hashes = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes(lines[2]), 10, "largest bar fills the width");
        assert_eq!(hashes(lines[1]), 5);
    }

    #[test]
    fn bar_chart_handles_zeroes() {
        let s = bar_chart("t", &[("z".into(), 0.0)], 10);
        assert!(s.contains('z'));
    }

    #[test]
    fn scatter_places_extremes() {
        let s = scatter(&[(0.0, 0.0), (10.0, 10.0)], 20, 5);
        let lines: Vec<&str> = s.lines().collect();
        // First grid row (max y) has a star at the right edge.
        assert!(lines[1].ends_with('*'));
        // Last grid row (min y) has a star at the left edge.
        assert!(lines[5].starts_with("|*"));
    }

    #[test]
    fn scatter_of_nothing_is_graceful() {
        assert_eq!(scatter(&[], 10, 5), "(no data)\n");
    }
}

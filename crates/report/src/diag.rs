//! Machine-readable diagnostics.
//!
//! The static verifier (`osprey-verify`) and the user-facing tools report
//! problems as [`Diagnostic`]s: a stable error code, a severity, a
//! location string, and a human-readable message. Keeping the type here —
//! next to the table/CSV renderers — lets every layer (verifier, CLI,
//! report emission itself) speak the same error language and lets scripts
//! consume diagnostics as CSV.

use crate::table::Table;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not fatal; simulation may proceed.
    Warning,
    /// A correctness problem; the program must not be simulated.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One verifier or tool finding.
///
/// # Examples
///
/// ```
/// use osprey_report::{Diagnostic, Severity};
///
/// let d = Diagnostic::error("OSPV011", "block[2]", "instruction budget is zero");
/// assert_eq!(d.severity, Severity::Error);
/// assert!(d.to_string().contains("OSPV011"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`OSPVxxx` for verifier findings,
    /// `OSPRxxx` for report-layer errors).
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Where the problem is (block index, program name, option name, ...).
    pub location: String,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    pub fn error(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            code,
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
        }
    }

    /// Creates a warning-severity diagnostic.
    pub fn warning(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            code,
            severity: Severity::Warning,
            location: location.into(),
            message: message.into(),
        }
    }

    /// `true` for [`Severity::Error`] diagnostics.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

impl std::error::Error for Diagnostic {}

/// Renders diagnostics as an aligned table (code, severity, location,
/// message), for terminal consumption.
pub fn diagnostics_table(diags: &[Diagnostic]) -> Table {
    let mut t = Table::new(["code", "severity", "location", "message"]);
    for d in diags {
        t.row([
            d.code.to_string(),
            d.severity.to_string(),
            d.location.clone(),
            d.message.clone(),
        ]);
    }
    t
}

/// Renders diagnostics as CSV with a header row, for script consumption.
pub fn diagnostics_csv(diags: &[Diagnostic]) -> String {
    let mut rows = vec![vec![
        "code".to_string(),
        "severity".to_string(),
        "location".to_string(),
        "message".to_string(),
    ]];
    for d in diags {
        rows.push(vec![
            d.code.to_string(),
            d.severity.to_string(),
            d.location.clone(),
            d.message.clone(),
        ]);
    }
    crate::csv::to_csv(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_all_fields() {
        let d = Diagnostic::warning("OSPV014", "block[0]", "memory region is empty");
        let s = d.to_string();
        for part in ["warning", "OSPV014", "block[0]", "memory region is empty"] {
            assert!(s.contains(part), "missing {part} in {s}");
        }
    }

    #[test]
    fn severities_order_warning_below_error() {
        assert!(Severity::Warning < Severity::Error);
        assert!(Diagnostic::error("X", "y", "z").is_error());
        assert!(!Diagnostic::warning("X", "y", "z").is_error());
    }

    #[test]
    fn table_and_csv_list_every_diagnostic() {
        let diags = vec![
            Diagnostic::error("OSPV001", "block[1]", "return without entry"),
            Diagnostic::warning("OSPV014", "block[2]", "empty region"),
        ];
        let table = diagnostics_table(&diags).render();
        assert!(table.contains("OSPV001") && table.contains("OSPV014"));
        let csv = diagnostics_csv(&diags);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("code,severity,location,message\n"));
    }
}

//! The Performance Lookup Table (PLT).
//!
//! One PLT exists per OS service type (paper §4.3). Entries are scaled
//! clusters; a separate list tracks *outlier clusters* — signatures seen
//! during prediction periods that match no entry — including the
//! estimated-probability-of-occurrence (EPO) samples the Statistical
//! re-learning strategy tests (§4.4).

use crate::cluster::{PredictedPerf, ScaledCluster};

/// Bookkeeping for a signature cluster observed only as an outlier.
///
/// Unlike regular PLT entries, outlier entries carry no performance
/// numbers — the instances were never fully simulated.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OutlierEntry {
    centroid: f64,
    members: u64,
    range_frac: f64,
    /// Per-service invocation indices at which this outlier occurred.
    occurrences: Vec<u64>,
    /// EPO samples (paper Eq. 4): occurrences within the trailing window,
    /// divided by the window length, one sample per match.
    epos: Vec<f64>,
}

impl OutlierEntry {
    fn new(signature: u64, invocation: u64, range_frac: f64) -> Self {
        Self {
            centroid: signature as f64,
            members: 1,
            range_frac,
            occurrences: vec![invocation],
            epos: Vec::new(),
        }
    }

    fn matches(&self, signature: u64) -> bool {
        (signature as f64 - self.centroid).abs() <= self.range_frac * self.centroid
    }

    /// Records another occurrence at per-service invocation index
    /// `invocation`, producing a new EPO over the trailing `window`
    /// invocations.
    fn record(&mut self, signature: u64, invocation: u64, window: u64) {
        self.members += 1;
        self.centroid += (signature as f64 - self.centroid) / self.members as f64;
        self.occurrences.push(invocation);
        let lo = invocation.saturating_sub(window);
        let in_window = self
            .occurrences
            .iter()
            .filter(|&&i| i > lo && i <= invocation)
            .count();
        self.epos.push(in_window as f64 / window as f64);
    }

    /// Number of times this outlier has occurred.
    pub fn count(&self) -> u64 {
        self.members
    }

    /// The EPO samples collected so far.
    pub fn epos(&self) -> &[f64] {
        &self.epos
    }
}

/// The per-service Performance Lookup Table.
///
/// # Examples
///
/// ```
/// use osprey_core::Plt;
///
/// let mut plt = Plt::new(0.05);
/// plt.learn(10_000, 20_000, &Default::default());
/// plt.learn(50_000, 90_000, &Default::default());
/// // An in-range signature matches; prediction comes from the cluster.
/// assert!(plt.lookup(10_200).is_some());
/// // A far-off signature is an outlier but still gets a best-match
/// // prediction from the closest centroid.
/// assert!(plt.lookup(30_000).is_none());
/// assert!(plt.closest(30_000).is_some());
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Plt {
    clusters: Vec<ScaledCluster>,
    outliers: Vec<OutlierEntry>,
    range_frac: f64,
}

impl Plt {
    /// Creates an empty PLT with the given cluster range fraction.
    ///
    /// # Panics
    ///
    /// Panics if `range_frac` is not in `(0, 1)`.
    pub fn new(range_frac: f64) -> Self {
        assert!(
            range_frac > 0.0 && range_frac < 1.0,
            "range fraction must be in (0, 1)"
        );
        Self {
            clusters: Vec::new(),
            outliers: Vec::new(),
            range_frac,
        }
    }

    /// Number of regular (learned) clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` when no cluster has been learned.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The learned clusters.
    pub fn clusters(&self) -> &[ScaledCluster] {
        &self.clusters
    }

    /// The outstanding outlier entries.
    pub fn outliers(&self) -> &[OutlierEntry] {
        &self.outliers
    }

    /// Absorbs a fully simulated instance during a learning period: added
    /// to the best matching cluster, or seeds a new cluster.
    pub fn learn(&mut self, signature: u64, cycles: u64, caches: &osprey_mem::HierarchySnapshot) {
        match self.best_matching(signature) {
            Some(idx) => self.clusters[idx].add(signature, cycles, caches),
            None => self.clusters.push(ScaledCluster::seed(
                signature,
                cycles,
                *caches,
                self.range_frac,
            )),
        }
    }

    /// Index of the best *matching* cluster (closest centroid among those
    /// whose range contains the signature), if any. Ranges may overlap;
    /// the closest centroid wins (paper §4.2).
    fn best_matching(&self, signature: u64) -> Option<usize> {
        self.clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.matches(signature))
            .min_by(|(_, a), (_, b)| {
                a.distance(signature)
                    .partial_cmp(&b.distance(signature))
                    .expect("distances are finite")
            })
            .map(|(i, _)| i)
    }

    /// Predicts from the best matching cluster, or `None` if the
    /// signature is an outlier.
    pub fn lookup(&self, signature: u64) -> Option<PredictedPerf> {
        self.best_matching(signature)
            .map(|idx| self.clusters[idx].predict())
    }

    /// Predicts from the cluster with the closest centroid regardless of
    /// range — the fallback used for outliers (§4.4). `None` only when
    /// the PLT is empty.
    pub fn closest(&self, signature: u64) -> Option<PredictedPerf> {
        self.clusters
            .iter()
            .min_by(|a, b| {
                a.distance(signature)
                    .partial_cmp(&b.distance(signature))
                    .expect("distances are finite")
            })
            .map(|c| c.predict())
    }

    /// Identifies which cluster a prediction for `signature` would draw
    /// from: the best *matching* cluster when the signature is in range,
    /// otherwise the closest cluster (the outlier fallback, §4.4).
    ///
    /// Returns the cluster index together with a confidence score — the
    /// chosen cluster's share of all learned instances, so a prediction
    /// from a dominant behavior point scores near 1.0 while one from a
    /// rarely seen cluster scores near 0. `None` only when the PLT is
    /// empty.
    pub fn prediction_source(&self, signature: u64) -> Option<(usize, f64)> {
        let idx = self.best_matching(signature).or_else(|| {
            self.clusters
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.distance(signature)
                        .partial_cmp(&b.distance(signature))
                        .expect("distances are finite")
                })
                .map(|(i, _)| i)
        })?;
        let total: u64 = self.clusters.iter().map(|c| c.members()).sum();
        let confidence = if total == 0 {
            0.0
        } else {
            self.clusters[idx].members() as f64 / total as f64
        };
        Some((idx, confidence))
    }

    /// Records an outlier occurrence at per-service invocation index
    /// `invocation`, with EPOs computed over `window` trailing
    /// invocations. Returns the index of the outlier entry it joined.
    pub fn record_outlier(&mut self, signature: u64, invocation: u64, window: u64) -> usize {
        if let Some(idx) = self.outliers.iter().position(|o| o.matches(signature)) {
            self.outliers[idx].record(signature, invocation, window);
            idx
        } else {
            self.outliers
                .push(OutlierEntry::new(signature, invocation, self.range_frac));
            self.outliers.len() - 1
        }
    }

    /// Clears all outlier entries (done when re-learning triggers,
    /// paper §4.4).
    pub fn clear_outliers(&mut self) {
        self.outliers.clear();
    }

    /// Mean coefficient of variation of cycle counts across clusters,
    /// weighted by member count — the "Clustered" bars of Fig. 6.
    pub fn mean_cycles_cv(&self) -> f64 {
        let total: u64 = self.clusters.iter().map(|c| c.members()).sum();
        if total == 0 {
            return 0.0;
        }
        self.clusters
            .iter()
            .map(|c| c.cycles_cv() * c.members() as f64)
            .sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osprey_mem::HierarchySnapshot;

    fn snap() -> HierarchySnapshot {
        HierarchySnapshot::default()
    }

    #[test]
    fn learning_groups_similar_signatures() {
        let mut plt = Plt::new(0.05);
        plt.learn(10_000, 100, &snap());
        plt.learn(10_200, 110, &snap());
        plt.learn(10_100, 105, &snap());
        assert_eq!(plt.len(), 1);
        assert_eq!(plt.clusters()[0].members(), 3);
    }

    #[test]
    fn learning_separates_distinct_signatures() {
        let mut plt = Plt::new(0.05);
        plt.learn(10_000, 100, &snap());
        plt.learn(20_000, 300, &snap());
        plt.learn(40_000, 900, &snap());
        assert_eq!(plt.len(), 3);
    }

    #[test]
    fn overlapping_ranges_pick_closest_centroid() {
        let mut plt = Plt::new(0.20);
        plt.learn(10_000, 100, &snap());
        plt.learn(12_500, 999, &snap()); // outside 10k ± 2k: a new cluster
        assert_eq!(plt.len(), 2);
        // Both clusters' ranges cover 10_700 (10k ± 2k and 12.5k ± 2.5k);
        // the closer centroid (10_000) must win.
        let p = plt.lookup(10_700).unwrap();
        assert_eq!(p.cycles, 100);
    }

    #[test]
    fn lookup_fails_for_outliers_but_closest_succeeds() {
        let mut plt = Plt::new(0.05);
        plt.learn(10_000, 100, &snap());
        plt.learn(50_000, 500, &snap());
        assert!(plt.lookup(25_000).is_none());
        assert_eq!(plt.closest(25_000).unwrap().cycles, 100);
        assert_eq!(plt.closest(40_000).unwrap().cycles, 500);
    }

    #[test]
    fn empty_plt_predicts_nothing() {
        let plt = Plt::new(0.05);
        assert!(plt.is_empty());
        assert!(plt.lookup(100).is_none());
        assert!(plt.closest(100).is_none());
    }

    #[test]
    fn outlier_entries_accumulate_and_produce_epos() {
        let mut plt = Plt::new(0.05);
        plt.learn(10_000, 100, &snap());
        let idx = plt.record_outlier(30_000, 200, 100);
        assert_eq!(plt.outliers()[idx].count(), 1);
        assert!(
            plt.outliers()[idx].epos().is_empty(),
            "first sighting has no EPO"
        );
        // Three more occurrences within the same window of 100.
        plt.record_outlier(30_100, 210, 100);
        plt.record_outlier(29_900, 220, 100);
        plt.record_outlier(30_050, 230, 100);
        let o = &plt.outliers()[idx];
        assert_eq!(o.count(), 4);
        assert_eq!(o.epos().len(), 3);
        // At invocation 230, 4 occurrences in the last 100 -> EPO 0.04.
        assert!((o.epos()[2] - 0.04).abs() < 1e-12);
    }

    #[test]
    fn distinct_outliers_get_distinct_entries() {
        let mut plt = Plt::new(0.05);
        plt.record_outlier(30_000, 1, 100);
        plt.record_outlier(90_000, 2, 100);
        assert_eq!(plt.outliers().len(), 2);
    }

    #[test]
    fn clear_outliers_resets_tracking() {
        let mut plt = Plt::new(0.05);
        plt.record_outlier(30_000, 1, 100);
        plt.clear_outliers();
        assert!(plt.outliers().is_empty());
    }

    #[test]
    fn prediction_source_reports_cluster_and_confidence() {
        let mut plt = Plt::new(0.05);
        assert_eq!(plt.prediction_source(10_000), None);
        for _ in 0..3 {
            plt.learn(10_000, 100, &snap());
        }
        plt.learn(50_000, 500, &snap());
        // In-range signature: the matching cluster, 3 of 4 instances.
        let (idx, conf) = plt.prediction_source(10_100).unwrap();
        assert_eq!(plt.clusters()[idx].predict().cycles, 100);
        assert!((conf - 0.75).abs() < 1e-12);
        // Outlier: falls back to the closest cluster, 1 of 4 instances.
        let (idx, conf) = plt.prediction_source(45_000).unwrap();
        assert_eq!(plt.clusters()[idx].predict().cycles, 500);
        assert!((conf - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mean_cycles_cv_weights_by_members() {
        let mut plt = Plt::new(0.05);
        // Tight cluster with many members.
        for _ in 0..10 {
            plt.learn(10_000, 1_000, &snap());
        }
        assert!(plt.mean_cycles_cv() < 0.01);
    }
}

//! Re-learning strategies (paper §4.4).
//!
//! The initial learning window can miss behavior points whose occurrences
//! are not i.i.d. — ab-seq's late-appearing file sizes are the canonical
//! case. During prediction, every signature that matches no PLT cluster is
//! an *outlier*; the strategy decides whether an outlier stream justifies
//! a new learning window.

use osprey_stats::student_t::upper_confidence_bound;

use crate::plt::OutlierEntry;

/// How to react to outliers during prediction periods.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RelearnStrategy {
    /// Never re-learn; always predict outliers from the closest cluster.
    /// Highest coverage, worst accuracy.
    BestMatch,
    /// Re-learn on the first outlier. Best accuracy, lowest coverage.
    Eager,
    /// Re-learn once an outlier cluster has occurred `threshold` times
    /// (the paper waits for 4).
    Delayed {
        /// Occurrences required before re-learning.
        threshold: u64,
    },
    /// Re-learn when a one-sided Student-t upper confidence bound on the
    /// outlier cluster's occurrence probability cannot rule out that it
    /// exceeds `p_min` (paper Eq. 4–8). Requires at least `min_epos` EPO
    /// samples (the paper waits for 4).
    Statistical {
        /// Minimum occurrence probability considered important.
        p_min: f64,
        /// Significance level of the t-test (the paper uses 0.05).
        alpha: f64,
        /// EPO samples required before testing.
        min_epos: usize,
    },
}

impl RelearnStrategy {
    /// The paper's four evaluated strategies with its parameters.
    pub const ALL: [RelearnStrategy; 4] = [
        RelearnStrategy::BestMatch,
        RelearnStrategy::Statistical {
            p_min: 0.03,
            alpha: 0.05,
            min_epos: 4,
        },
        RelearnStrategy::Delayed { threshold: 4 },
        RelearnStrategy::Eager,
    ];

    /// Label matching the paper's Fig. 11.
    pub fn name(self) -> &'static str {
        match self {
            RelearnStrategy::BestMatch => "Best-Match",
            RelearnStrategy::Eager => "Eager",
            RelearnStrategy::Delayed { .. } => "Delayed",
            RelearnStrategy::Statistical { .. } => "Statistical",
        }
    }

    /// Decides whether an outlier occurrence should trigger re-learning.
    ///
    /// `entry` is the outlier-cluster entry *after* the current
    /// occurrence has been recorded.
    pub fn should_relearn(self, entry: &OutlierEntry) -> bool {
        match self {
            RelearnStrategy::BestMatch => false,
            RelearnStrategy::Eager => true,
            RelearnStrategy::Delayed { threshold } => entry.count() >= threshold,
            RelearnStrategy::Statistical {
                p_min,
                alpha,
                min_epos,
            } => {
                let epos = entry.epos();
                if epos.len() < min_epos {
                    return false;
                }
                match upper_confidence_bound(epos, alpha) {
                    // B_y >= p_min: we cannot rule out that this cluster
                    // is important; conservatively re-learn.
                    Some(bound) => bound >= p_min,
                    None => false,
                }
            }
        }
    }
}

impl std::fmt::Display for RelearnStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plt::Plt;

    /// Builds an outlier entry with the given occurrence pattern by
    /// replaying it through a PLT.
    fn entry_with(occurrences: &[u64], window: u64) -> OutlierEntry {
        let mut plt = Plt::new(0.05);
        let mut idx = 0;
        for &inv in occurrences {
            idx = plt.record_outlier(30_000, inv, window);
        }
        plt.outliers()[idx].clone()
    }

    #[test]
    fn best_match_never_relearns() {
        let e = entry_with(&[1, 2, 3, 4, 5, 6, 7, 8], 100);
        assert!(!RelearnStrategy::BestMatch.should_relearn(&e));
    }

    #[test]
    fn eager_relearns_immediately() {
        let e = entry_with(&[1], 100);
        assert!(RelearnStrategy::Eager.should_relearn(&e));
    }

    #[test]
    fn delayed_waits_for_threshold() {
        let strategy = RelearnStrategy::Delayed { threshold: 4 };
        assert!(!strategy.should_relearn(&entry_with(&[1, 2, 3], 100)));
        assert!(strategy.should_relearn(&entry_with(&[1, 2, 3, 4], 100)));
    }

    #[test]
    fn statistical_triggers_on_frequent_outliers() {
        // Dense occurrences: ~10% of the last 100 invocations each time.
        let occurrences: Vec<u64> = (0..12).map(|i| 200 + i * 10).collect();
        let strategy = RelearnStrategy::Statistical {
            p_min: 0.03,
            alpha: 0.05,
            min_epos: 4,
        };
        assert!(strategy.should_relearn(&entry_with(&occurrences, 100)));
    }

    #[test]
    fn statistical_ignores_rare_outliers() {
        // Five occurrences spread over 5000 invocations: EPO ~ 1-2%.
        let occurrences: Vec<u64> = (0..6).map(|i| 1_000 + i * 900).collect();
        let strategy = RelearnStrategy::Statistical {
            p_min: 0.03,
            alpha: 0.05,
            min_epos: 4,
        };
        assert!(!strategy.should_relearn(&entry_with(&occurrences, 100)));
    }

    #[test]
    fn statistical_waits_for_enough_epos() {
        // Three occurrences = two EPOs < min_epos.
        let strategy = RelearnStrategy::Statistical {
            p_min: 0.03,
            alpha: 0.05,
            min_epos: 4,
        };
        assert!(!strategy.should_relearn(&entry_with(&[10, 11, 12], 100)));
    }

    #[test]
    fn all_contains_paper_strategies_in_fig11_order() {
        let names: Vec<_> = RelearnStrategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["Best-Match", "Statistical", "Delayed", "Eager"]);
    }
}

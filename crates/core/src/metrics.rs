//! Coverage and accuracy accounting for accelerated runs.

use std::collections::BTreeMap;

use osprey_isa::ServiceId;

/// Per-service and aggregate counts of simulated vs predicted instances.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccelStats {
    per_service: BTreeMap<ServiceId, (u64, u64)>, // (simulated, predicted)
    relearn_events: u64,
    /// OS instructions executed on the detailed core (learning periods).
    pub simulated_os_instructions: u64,
    /// OS instructions fast-forwarded in emulation (prediction periods).
    pub predicted_os_instructions: u64,
}

impl AccelStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one fully simulated instance of `service`.
    pub fn count_simulated(&mut self, service: ServiceId, instructions: u64) {
        self.per_service.entry(service).or_insert((0, 0)).0 += 1;
        self.simulated_os_instructions += instructions;
    }

    /// Records one predicted instance of `service`.
    pub fn count_predicted(&mut self, service: ServiceId, instructions: u64) {
        self.per_service.entry(service).or_insert((0, 0)).1 += 1;
        self.predicted_os_instructions += instructions;
    }

    /// Records a re-learning trigger.
    pub fn count_relearn(&mut self) {
        self.relearn_events += 1;
    }

    /// Total OS service invocations.
    pub fn total_invocations(&self) -> u64 {
        self.per_service.values().map(|(s, p)| s + p).sum()
    }

    /// Total predicted invocations.
    pub fn predicted_invocations(&self) -> u64 {
        self.per_service.values().map(|(_, p)| p).sum()
    }

    /// The paper's *coverage*: fraction of OS service invocations whose
    /// detailed simulation was skipped (§6.2).
    pub fn coverage(&self) -> f64 {
        let total = self.total_invocations();
        if total == 0 {
            0.0
        } else {
            self.predicted_invocations() as f64 / total as f64
        }
    }

    /// Coverage of one service.
    pub fn service_coverage(&self, service: ServiceId) -> f64 {
        match self.per_service.get(&service) {
            Some(&(s, p)) if s + p > 0 => p as f64 / (s + p) as f64,
            _ => 0.0,
        }
    }

    /// Number of re-learning events across all services.
    pub fn relearn_events(&self) -> u64 {
        self.relearn_events
    }

    /// Fraction of OS *instructions* fast-forwarded (used for Eq. 10
    /// speedup estimates, where X is instruction-weighted).
    pub fn instruction_coverage(&self) -> f64 {
        let total = self.simulated_os_instructions + self.predicted_os_instructions;
        if total == 0 {
            0.0
        } else {
            self.predicted_os_instructions as f64 / total as f64
        }
    }

    /// Iterates `(service, simulated, predicted)` rows.
    pub fn iter(&self) -> impl Iterator<Item = (ServiceId, u64, u64)> + '_ {
        self.per_service
            .iter()
            .map(|(&s, &(sim, pred))| (s, sim, pred))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_counts_predicted_fraction() {
        let mut stats = AccelStats::new();
        for _ in 0..11 {
            stats.count_simulated(ServiceId::SysRead, 1_000);
        }
        for _ in 0..89 {
            stats.count_predicted(ServiceId::SysRead, 1_000);
        }
        assert!((stats.coverage() - 0.89).abs() < 1e-12);
        assert_eq!(stats.total_invocations(), 100);
    }

    #[test]
    fn per_service_coverage_is_independent() {
        let mut stats = AccelStats::new();
        stats.count_simulated(ServiceId::SysRead, 10);
        stats.count_predicted(ServiceId::SysRead, 10);
        stats.count_simulated(ServiceId::SysOpen, 10);
        assert_eq!(stats.service_coverage(ServiceId::SysRead), 0.5);
        assert_eq!(stats.service_coverage(ServiceId::SysOpen), 0.0);
        assert_eq!(stats.service_coverage(ServiceId::SysClose), 0.0);
    }

    #[test]
    fn instruction_coverage_weights_by_size() {
        let mut stats = AccelStats::new();
        stats.count_simulated(ServiceId::SysExecve, 100_000);
        stats.count_predicted(ServiceId::SysGettimeofday, 400);
        // Invocation coverage is 50%, instruction coverage is tiny.
        assert_eq!(stats.coverage(), 0.5);
        assert!(stats.instruction_coverage() < 0.01);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = AccelStats::new();
        assert_eq!(stats.coverage(), 0.0);
        assert_eq!(stats.instruction_coverage(), 0.0);
        assert_eq!(stats.relearn_events(), 0);
    }
}

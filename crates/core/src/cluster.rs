//! Scaled clusters: behavior points identified by instruction-count
//! signatures.
//!
//! The paper's §4.2: a fixed-size instruction bin is too coarse for small
//! services and too fine for large ones, so clusters *scale* — the range
//! is a fraction (±5 %) of the centroid. The centroid is the arithmetic
//! mean of the member signatures and moves as members are added.

use osprey_mem::{CacheStats, HierarchySnapshot};
use osprey_sim::IntervalRecord;
use osprey_stats::Streaming;

/// The fraction of the centroid that defines a cluster's range
/// (the paper uses centroid ± 5 %).
pub const DEFAULT_RANGE_FRAC: f64 = 0.05;

/// Performance predicted for one OS service instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedPerf {
    /// Predicted cycles.
    pub cycles: u64,
    /// Predicted cache activity (kernel-owner accesses and misses).
    pub caches: HierarchySnapshot,
}

/// One behavior point of an OS service.
///
/// # Examples
///
/// ```
/// use osprey_core::ScaledCluster;
///
/// let mut c = ScaledCluster::seed(10_000, 20_000, Default::default(), 0.05);
/// assert!(c.matches(10_400)); // within +5%
/// assert!(!c.matches(11_000));
/// c.add(10_400, 21_000, &Default::default());
/// assert_eq!(c.centroid(), 10_200.0);
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScaledCluster {
    centroid: f64,
    members: u64,
    range_frac: f64,
    cycles: Streaming,
    l1i_accesses: Streaming,
    l1i_misses: Streaming,
    l1d_accesses: Streaming,
    l1d_misses: Streaming,
    l2_accesses: Streaming,
    l2_misses: Streaming,
}

impl ScaledCluster {
    /// Creates a cluster from its first member.
    ///
    /// # Panics
    ///
    /// Panics if `range_frac` is not in `(0, 1)` or `signature` is 0.
    pub fn seed(signature: u64, cycles: u64, caches: HierarchySnapshot, range_frac: f64) -> Self {
        assert!(
            range_frac > 0.0 && range_frac < 1.0,
            "range fraction must be in (0, 1)"
        );
        assert!(signature > 0, "a signature is a positive instruction count");
        let mut c = Self {
            centroid: 0.0,
            members: 0,
            range_frac,
            cycles: Streaming::new(),
            l1i_accesses: Streaming::new(),
            l1i_misses: Streaming::new(),
            l1d_accesses: Streaming::new(),
            l1d_misses: Streaming::new(),
            l2_accesses: Streaming::new(),
            l2_misses: Streaming::new(),
        };
        c.add(signature, cycles, &caches);
        c
    }

    /// Creates a cluster from a simulated interval record.
    pub fn from_record(record: &IntervalRecord, range_frac: f64) -> Self {
        Self::seed(
            record.instructions,
            record.cycles,
            record.caches,
            range_frac,
        )
    }

    /// Current centroid (mean member signature).
    pub fn centroid(&self) -> f64 {
        self.centroid
    }

    /// Number of instances absorbed.
    pub fn members(&self) -> u64 {
        self.members
    }

    /// Whether `signature` falls within the cluster's scaled range.
    pub fn matches(&self, signature: u64) -> bool {
        self.distance(signature) <= self.range_frac * self.centroid
    }

    /// Absolute distance from the centroid.
    pub fn distance(&self, signature: u64) -> f64 {
        (signature as f64 - self.centroid).abs()
    }

    /// Adds an instance, updating the centroid and performance
    /// statistics.
    pub fn add(&mut self, signature: u64, cycles: u64, caches: &HierarchySnapshot) {
        self.members += 1;
        self.centroid += (signature as f64 - self.centroid) / self.members as f64;
        self.cycles.push(cycles as f64);
        self.l1i_accesses.push(caches.l1i.os_accesses as f64);
        self.l1i_misses.push(caches.l1i.os_misses as f64);
        self.l1d_accesses.push(caches.l1d.os_accesses as f64);
        self.l1d_misses.push(caches.l1d.os_misses as f64);
        self.l2_accesses.push(caches.l2.os_accesses as f64);
        self.l2_misses.push(caches.l2.os_misses as f64);
    }

    /// Adds an instance from a simulated interval record.
    pub fn add_record(&mut self, record: &IntervalRecord) {
        self.add(record.instructions, record.cycles, &record.caches);
    }

    /// Predicts the performance of an instance matching this cluster:
    /// the recorded means of its members.
    pub fn predict(&self) -> PredictedPerf {
        let stat = |s: &Streaming| s.mean().round().max(0.0) as u64;
        let level = |acc: &Streaming, miss: &Streaming| CacheStats {
            app_accesses: 0,
            app_misses: 0,
            os_accesses: stat(acc),
            os_misses: stat(miss),
            writebacks: 0,
        };
        PredictedPerf {
            cycles: stat(&self.cycles),
            caches: HierarchySnapshot {
                l1i: level(&self.l1i_accesses, &self.l1i_misses),
                l1d: level(&self.l1d_accesses, &self.l1d_misses),
                l2: level(&self.l2_accesses, &self.l2_misses),
            },
        }
    }

    /// Coefficient of variation of the member cycle counts — the
    /// uniformity metric of the paper's Fig. 6.
    pub fn cycles_cv(&self) -> f64 {
        self.cycles.cv()
    }

    /// Cycle statistics of the members.
    pub fn cycles_stats(&self) -> &Streaming {
        &self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(l2_misses: u64) -> HierarchySnapshot {
        let mut s = HierarchySnapshot::default();
        s.l2.os_misses = l2_misses;
        s.l2.os_accesses = l2_misses * 4;
        s
    }

    #[test]
    fn range_scales_with_centroid() {
        let small = ScaledCluster::seed(1_000, 1, snap(0), 0.05);
        let large = ScaledCluster::seed(100_000, 1, snap(0), 0.05);
        assert!(small.matches(1_049));
        assert!(!small.matches(1_051));
        assert!(large.matches(104_900));
        assert!(!large.matches(105_100));
    }

    #[test]
    fn centroid_is_running_mean() {
        let mut c = ScaledCluster::seed(100, 10, snap(0), 0.05);
        c.add(200, 20, &snap(0));
        c.add(300, 30, &snap(0));
        assert_eq!(c.centroid(), 200.0);
        assert_eq!(c.members(), 3);
    }

    #[test]
    fn prediction_is_member_mean() {
        let mut c = ScaledCluster::seed(1_000, 5_000, snap(10), 0.05);
        c.add(1_020, 7_000, &snap(20));
        let p = c.predict();
        assert_eq!(p.cycles, 6_000);
        assert_eq!(p.caches.l2.os_misses, 15);
        assert_eq!(p.caches.l2.os_accesses, 60);
        assert_eq!(p.caches.l2.app_accesses, 0, "predictions are OS-owned");
    }

    #[test]
    fn range_updates_as_centroid_moves() {
        let mut c = ScaledCluster::seed(1_000, 1, snap(0), 0.05);
        assert!(!c.matches(1_100));
        // Drag the centroid upward.
        for _ in 0..20 {
            c.add(1_050, 1, &snap(0));
        }
        assert!(c.matches(1_090), "centroid {:.0}", c.centroid());
    }

    #[test]
    fn cv_reflects_cycle_dispersion() {
        let mut tight = ScaledCluster::seed(1_000, 10_000, snap(0), 0.05);
        tight.add(1_000, 10_100, &snap(0));
        let mut loose = ScaledCluster::seed(1_000, 10_000, snap(0), 0.05);
        loose.add(1_000, 50_000, &snap(0));
        assert!(tight.cycles_cv() < loose.cycles_cv());
    }

    #[test]
    #[should_panic(expected = "range fraction")]
    fn rejects_bad_range() {
        ScaledCluster::seed(100, 1, snap(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive instruction count")]
    fn rejects_zero_signature() {
        ScaledCluster::seed(0, 1, snap(0), 0.05);
    }
}

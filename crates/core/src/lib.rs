//! Osprey core: online learning and prediction of OS-service performance
//! for accelerating full-system simulation.
//!
//! This crate is the reproduction of the paper's contribution (§4):
//!
//! * **Behavior signatures and scaled clusters** ([`cluster`]) — an OS
//!   service instance is identified by its dynamic instruction count; a
//!   cluster has a centroid (running mean of member signatures) and a
//!   ±5 % range, and carries the performance statistics (cycles, cache
//!   misses/accesses) recorded while learning.
//! * **Performance Lookup Table** ([`plt`]) — one per OS service type,
//!   holding its clusters and outlier bookkeeping.
//! * **Learning control** ([`learning`]) — the delayed start (skip the
//!   first 5 invocations), the statically sized initial learning window
//!   (~100 invocations for p_min = 3 %, DoC = 95 %; paper Eq. 1–3), and
//!   the switch into prediction.
//! * **Re-learning strategies** ([`relearn`]) — Best-Match, Eager,
//!   Delayed, and the Student-t-based Statistical strategy (paper
//!   Eq. 4–8).
//! * **The accelerated simulator** ([`accel`]) — drives
//!   [`osprey_sim::FullSystemSim`], executing each OS service either in
//!   detailed mode (learning) or in emulation + prediction mode, applying
//!   the §4.5 cache-pollution model for predicted intervals.
//! * **Speedup estimation** ([`speedup`]) — measures the wall-clock cost
//!   of the simulator's modes (Table 1) and evaluates the paper's Eq. 10
//!   (Table 2).
//!
//! # Examples
//!
//! Accelerating a small iperf run with the Statistical strategy:
//!
//! ```
//! use osprey_core::accel::{AcceleratedSim, AccelConfig};
//! use osprey_sim::SimConfig;
//! use osprey_workloads::Benchmark;
//!
//! let sim_cfg = SimConfig::new(Benchmark::Iperf).with_scale(0.05);
//! let mut accel = AcceleratedSim::new(sim_cfg, AccelConfig::default());
//! let outcome = accel.run();
//! assert!(outcome.coverage() > 0.0 && outcome.coverage() < 1.0);
//! ```

pub mod accel;
pub mod cluster;
pub mod learning;
pub mod metrics;
pub mod plt;
pub mod relearn;
pub mod signature;
pub mod speedup;

pub use accel::{AccelConfig, AccelOutcome, AcceleratedSim};
pub use cluster::{PredictedPerf, ScaledCluster};
pub use learning::{Decision, ServiceLearner};
pub use metrics::AccelStats;
pub use plt::Plt;
pub use relearn::RelearnStrategy;
pub use signature::{MixPlt, MixSignature};
pub use speedup::{estimated_speedup, measure_mode_slowdowns, ModeSlowdowns};

//! The accelerated full-system simulator (paper §4.5).
//!
//! Wraps [`osprey_sim::FullSystemSim`] and, for every OS service
//! invocation, consults the per-service [`ServiceLearner`]:
//!
//! * during warm-up/learning periods the interval is fully simulated on
//!   the detailed core and its characteristics recorded in the PLT;
//! * during prediction periods the interval is fast-forwarded in
//!   emulation, its signature (dynamic instruction count) is matched
//!   against the PLT, and its cycles and cache misses are *predicted*.
//!   Predicted OS misses displace application cache lines through the
//!   pollution model, so the application's subsequent cache behavior
//!   still feels the OS.

use std::collections::HashMap;

use osprey_isa::ServiceId;
use osprey_sim::{FullSystemSim, RunReport, SimConfig, TraceSink};

use crate::learning::{Decision, ServiceLearner};
use crate::metrics::AccelStats;
use crate::relearn::RelearnStrategy;

/// Parameters of the acceleration scheme.
///
/// The default is the paper's operating point: Statistical re-learning,
/// p_min = 3 %, 95 % confidence (⇒ learning window 100), warm-up 5,
/// ±5 % scaled clusters, EPO window W = 100.
#[derive(Debug, Clone, Copy)]
pub struct AccelConfig {
    /// Re-learning strategy.
    pub strategy: RelearnStrategy,
    /// Initial (and re-)learning window length in invocations.
    pub learning_window: u64,
    /// Invocations to skip before learning starts (initialization
    /// effects).
    pub warmup: u64,
    /// Scaled-cluster range as a fraction of the centroid.
    pub cluster_range: f64,
    /// Moving-window length for EPO estimation.
    pub epo_window: u64,
    /// Cold-start delay applied when a *re*-learning window opens.
    pub relearn_warmup: u64,
    /// Whether predicted intervals apply the §4.5 cache-pollution model
    /// (disable only for the pollution ablation study).
    pub pollution: bool,
}

impl Default for AccelConfig {
    fn default() -> Self {
        Self {
            strategy: RelearnStrategy::Statistical {
                p_min: 0.03,
                alpha: 0.05,
                min_epos: 4,
            },
            learning_window: 100,
            warmup: 5,
            cluster_range: 0.05,
            epo_window: 100,
            relearn_warmup: 5,
            pollution: true,
        }
    }
}

impl AccelConfig {
    /// The paper's configuration with a different re-learning strategy.
    pub fn with_strategy(strategy: RelearnStrategy) -> Self {
        Self {
            strategy,
            ..Self::default()
        }
    }
}

/// Result of an accelerated run.
#[derive(Debug, Clone)]
pub struct AccelOutcome {
    /// The run report (cycles and cache counters combine simulated and
    /// predicted contributions).
    pub report: RunReport,
    /// Coverage and re-learning statistics.
    pub stats: AccelStats,
    /// Clusters learned per service at the end of the run.
    pub clusters_per_service: Vec<(ServiceId, usize)>,
}

impl AccelOutcome {
    /// The paper's headline coverage metric.
    pub fn coverage(&self) -> f64 {
        self.stats.coverage()
    }
}

/// The accelerated simulator.
///
/// # Examples
///
/// ```
/// use osprey_core::accel::{AccelConfig, AcceleratedSim};
/// use osprey_core::RelearnStrategy;
/// use osprey_sim::SimConfig;
/// use osprey_workloads::Benchmark;
///
/// let cfg = SimConfig::new(Benchmark::Du).with_scale(0.05);
/// let outcome =
///     AcceleratedSim::new(cfg, AccelConfig::with_strategy(RelearnStrategy::Eager)).run();
/// assert!(outcome.report.total_cycles > 0);
/// ```
pub struct AcceleratedSim {
    sim: FullSystemSim,
    cfg: AccelConfig,
    learners: HashMap<ServiceId, ServiceLearner>,
    stats: AccelStats,
}

impl AcceleratedSim {
    /// Builds an accelerated simulator over a cold machine.
    pub fn new(sim_cfg: SimConfig, cfg: AccelConfig) -> Self {
        let mut sim = FullSystemSim::new(sim_cfg);
        sim.set_pollution_enabled(cfg.pollution);
        Self {
            sim,
            cfg,
            learners: HashMap::new(),
            stats: AccelStats::new(),
        }
    }

    /// Processes one OS service invocation. Returns `false` when the
    /// workload is exhausted.
    pub fn step(&mut self) -> bool {
        let Some(inv) = self.sim.advance_to_service() else {
            return false;
        };
        if self.sim.in_warmup() {
            // The workload's warm-up region runs in full detail and is
            // invisible to the learners (the paper skips it entirely).
            self.sim.execute_service(&inv);
            return true;
        }
        let cfg = &self.cfg;
        let learner = self.learners.entry(inv.service).or_insert_with(|| {
            ServiceLearner::with_relearn_warmup(
                cfg.strategy,
                cfg.learning_window,
                cfg.warmup,
                cfg.cluster_range,
                cfg.epo_window,
                cfg.relearn_warmup,
            )
        });
        match learner.decide() {
            Decision::Simulate => {
                let relearns_before = learner.relearn_count();
                if let Some(sink) = self.sim.trace_sink_mut() {
                    sink.on_decision(inv.service, false, None, 0.0);
                }
                let record = self.sim.execute_service(&inv);
                learner.observe_simulated(&record);
                debug_assert_eq!(learner.relearn_count(), relearns_before);
                self.stats.count_simulated(inv.service, record.instructions);
            }
            Decision::Predict => {
                let relearns_before = learner.relearn_count();
                let signature = self.sim.emulate_service(&inv);
                // Resolve the source cluster before predict() mutates
                // outlier state: lookup and prediction_source see the
                // same PLT the prediction will draw from.
                let source = learner.plt().prediction_source(signature);
                if let Some(sink) = self.sim.trace_sink_mut() {
                    let (cluster, confidence) =
                        source.map_or((None, 0.0), |(i, c)| (Some(i as u32), c));
                    sink.on_decision(inv.service, true, cluster, confidence);
                }
                let perf = learner.predict(signature);
                if learner.relearn_count() > relearns_before {
                    self.stats.count_relearn();
                }
                self.sim
                    .apply_prediction(inv.service, signature, perf.cycles, perf.caches);
                self.stats.count_predicted(inv.service, signature);
            }
        }
        true
    }

    /// Runs the whole workload and returns the outcome.
    pub fn run(mut self) -> AccelOutcome {
        while self.step() {}
        self.into_outcome()
    }

    /// Finishes early (or after [`AcceleratedSim::run`]-style stepping)
    /// and produces the outcome.
    pub fn into_outcome(self) -> AccelOutcome {
        let mut clusters: Vec<(ServiceId, usize)> = self
            .learners
            .iter()
            .map(|(&s, l)| (s, l.plt().len()))
            .collect();
        clusters.sort_by_key(|&(s, _)| s);
        AccelOutcome {
            report: self.sim.into_report(),
            stats: self.stats,
            clusters_per_service: clusters,
        }
    }

    /// Access to the per-service learners (e.g. for cluster CV analysis,
    /// Fig. 6).
    pub fn learners(&self) -> impl Iterator<Item = (ServiceId, &ServiceLearner)> {
        self.learners.iter().map(|(&s, l)| (s, l))
    }

    /// Coverage so far.
    pub fn coverage(&self) -> f64 {
        self.stats.coverage()
    }

    /// Installs a trace sink on the underlying machine. The sink then
    /// observes every invocation, interval, and snapshot the machine
    /// emits, plus this accelerator's learn/predict decisions.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sim.set_trace_sink(sink);
    }

    /// Removes and returns the installed trace sink, if any.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sim.take_trace_sink()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osprey_workloads::Benchmark;

    fn quick(benchmark: Benchmark, scale: f64) -> SimConfig {
        SimConfig::new(benchmark).with_scale(scale).with_seed(5)
    }

    #[test]
    fn accelerated_run_covers_most_iperf_invocations() {
        let outcome =
            AcceleratedSim::new(quick(Benchmark::Iperf, 0.5), AccelConfig::default()).run();
        // iperf is the most repetitive workload: coverage should be high
        // once the ~105-instance warm-up+learning completes.
        assert!(
            outcome.coverage() > 0.7,
            "iperf coverage = {}",
            outcome.coverage()
        );
    }

    #[test]
    fn accelerated_cycles_track_detailed_cycles() {
        let cfg = quick(Benchmark::Iperf, 0.5);
        let detailed = FullSystemSim::new(cfg.clone()).run_to_completion();
        let accel = AcceleratedSim::new(cfg, AccelConfig::default()).run();
        let err = (accel.report.total_cycles as f64 - detailed.total_cycles as f64).abs()
            / detailed.total_cycles as f64;
        assert!(err < 0.15, "execution-time error {err}");
        assert_eq!(
            accel.report.total_instructions, detailed.total_instructions,
            "functional instruction stream must be identical"
        );
    }

    #[test]
    fn best_match_has_highest_coverage_eager_lowest() {
        let run = |strategy| {
            AcceleratedSim::new(
                quick(Benchmark::AbSeq, 0.15),
                AccelConfig::with_strategy(strategy),
            )
            .run()
        };
        let best = run(RelearnStrategy::BestMatch);
        let eager = run(RelearnStrategy::Eager);
        assert!(
            best.coverage() >= eager.coverage(),
            "Best-Match {} vs Eager {}",
            best.coverage(),
            eager.coverage()
        );
        assert_eq!(best.stats.relearn_events(), 0);
    }

    #[test]
    fn learners_build_multiple_clusters_for_sys_read() {
        let sim_cfg = quick(Benchmark::AbRand, 0.4);
        let mut accel = AcceleratedSim::new(sim_cfg, AccelConfig::default());
        while accel.step() {}
        let read_clusters = accel
            .learners()
            .find(|(s, _)| *s == osprey_isa::ServiceId::SysRead)
            .map(|(_, l)| l.plt().len())
            .unwrap_or(0);
        assert!(
            read_clusters >= 2,
            "sys_read must show multiple behavior points, got {read_clusters}"
        );
    }

    #[test]
    fn trace_sink_observes_every_decision() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct State {
            simulate: u64,
            predict: u64,
            sourced: u64,
        }
        #[derive(Clone, Default)]
        struct Capture(Rc<RefCell<State>>);
        impl TraceSink for Capture {
            fn on_decision(
                &mut self,
                _service: ServiceId,
                predicted: bool,
                cluster: Option<u32>,
                confidence: f64,
            ) {
                let mut s = self.0.borrow_mut();
                if predicted {
                    s.predict += 1;
                    if cluster.is_some() {
                        assert!(
                            confidence > 0.0 && confidence <= 1.0,
                            "confidence {confidence} out of range"
                        );
                        s.sourced += 1;
                    }
                } else {
                    s.simulate += 1;
                }
            }
        }

        let capture = Capture::default();
        let mut accel = AcceleratedSim::new(quick(Benchmark::Du, 0.3), AccelConfig::default());
        accel.set_trace_sink(Box::new(capture.clone()));
        while accel.step() {}
        drop(accel.take_trace_sink());
        let outcome = accel.into_outcome();
        let s = capture.0.borrow();
        let simulated = outcome.stats.total_invocations() - outcome.stats.predicted_invocations();
        assert_eq!(s.simulate, simulated);
        assert_eq!(s.predict, outcome.stats.predicted_invocations());
        assert!(s.predict > 0);
        assert_eq!(s.sourced, s.predict, "every prediction names its cluster");
    }

    #[test]
    fn predicted_intervals_appear_in_report() {
        let outcome = AcceleratedSim::new(quick(Benchmark::Du, 0.3), AccelConfig::default()).run();
        let predicted = outcome
            .report
            .intervals
            .iter()
            .filter(|r| r.source == osprey_sim::interval::IntervalSource::Predicted)
            .count() as u64;
        assert_eq!(predicted, outcome.stats.predicted_invocations());
        assert!(predicted > 0);
    }
}

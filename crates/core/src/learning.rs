//! Per-service learning control: the delayed start, the initial learning
//! window, prediction, and re-learning transitions (paper §4.3–4.4).

use osprey_sim::IntervalRecord;
use osprey_stats::binomial::learning_window;

use crate::cluster::PredictedPerf;
use crate::plt::Plt;
use crate::relearn::RelearnStrategy;

/// What the accelerated simulator should do with the next instance of a
/// service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Fully simulate (warm-up or learning period); the resulting record
    /// must be fed back via [`ServiceLearner::observe_simulated`].
    Simulate,
    /// Fast-forward in emulation and predict via
    /// [`ServiceLearner::predict`].
    Predict,
}

/// Which phase the learner is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Initialization effects: simulate but do not record (the paper
    /// skips the first 5 invocations, §4.4).
    Warmup { remaining: u64 },
    /// (Re-)learning window: simulate and record.
    Learning { remaining: u64 },
    /// Prediction period.
    Predicting,
}

/// Controls learning and prediction for one OS service type.
///
/// # Examples
///
/// ```
/// use osprey_core::{Decision, RelearnStrategy, ServiceLearner};
///
/// let mut learner = ServiceLearner::paper_default(RelearnStrategy::BestMatch);
/// // The first 5 invocations are warm-up, the next ~99 are learning.
/// assert_eq!(learner.decide(), Decision::Simulate);
/// ```
#[derive(Debug, Clone)]
pub struct ServiceLearner {
    plt: Plt,
    phase: Phase,
    strategy: RelearnStrategy,
    window: u64,
    warmup: u64,
    relearn_warmup: u64,
    /// Per-service invocation counter (used for EPO windows).
    invocation: u64,
    /// Moving-window length for EPO computation.
    epo_window: u64,
    relearn_count: u64,
}

impl ServiceLearner {
    /// Creates a learner with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0 or `range_frac` is not in `(0, 1)`.
    pub fn new(
        strategy: RelearnStrategy,
        window: u64,
        warmup: u64,
        range_frac: f64,
        epo_window: u64,
    ) -> Self {
        Self::with_relearn_warmup(strategy, window, warmup, range_frac, epo_window, warmup)
    }

    /// Like [`ServiceLearner::new`] but with a distinct cold-start delay
    /// for *re*-learning windows.
    ///
    /// After a long prediction period the simulated caches hold little of
    /// a service's working set, so the first re-simulated instances are
    /// unrepresentatively expensive — the same initialization effect the
    /// paper's delayed start addresses (§4.4), and the same knob its
    /// §6.1 delay-5-to-25 experiment turns.
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0 or `range_frac` is not in `(0, 1)`.
    pub fn with_relearn_warmup(
        strategy: RelearnStrategy,
        window: u64,
        warmup: u64,
        range_frac: f64,
        epo_window: u64,
        relearn_warmup: u64,
    ) -> Self {
        assert!(window > 0, "learning window must be positive");
        Self {
            plt: Plt::new(range_frac),
            phase: if warmup > 0 {
                Phase::Warmup { remaining: warmup }
            } else {
                Phase::Learning { remaining: window }
            },
            strategy,
            window,
            warmup,
            relearn_warmup,
            invocation: 0,
            epo_window,
            relearn_count: 0,
        }
    }

    /// The paper's operating point: warm-up 5, learning window sized for
    /// p_min = 3 % at 95 % confidence (~100), ±5 % clusters, EPO window
    /// W = 100.
    pub fn paper_default(strategy: RelearnStrategy) -> Self {
        let window = learning_window(0.03, 0.95)
            .expect("valid parameters")
            .max(100);
        Self::new(strategy, window, 5, 0.05, 100)
    }

    /// Cold-start delay applied before the initial learning window.
    pub fn warmup(&self) -> u64 {
        self.warmup
    }

    /// The PLT this learner has built.
    pub fn plt(&self) -> &Plt {
        &self.plt
    }

    /// How many times re-learning has been triggered.
    pub fn relearn_count(&self) -> u64 {
        self.relearn_count
    }

    /// Per-service invocations observed so far.
    pub fn invocations(&self) -> u64 {
        self.invocation
    }

    /// `true` while the learner is in a warm-up or learning period.
    pub fn is_learning(&self) -> bool {
        !matches!(self.phase, Phase::Predicting)
    }

    /// What to do with the next instance of this service.
    pub fn decide(&self) -> Decision {
        match self.phase {
            Phase::Warmup { .. } | Phase::Learning { .. } => Decision::Simulate,
            // A PLT can only be empty here if re-learning cleared nothing
            // and the window produced nothing — impossible in practice,
            // but guard anyway.
            Phase::Predicting if self.plt.is_empty() => Decision::Simulate,
            Phase::Predicting => Decision::Predict,
        }
    }

    /// Feeds back a fully simulated interval (after a
    /// [`Decision::Simulate`]).
    pub fn observe_simulated(&mut self, record: &IntervalRecord) {
        self.invocation += 1;
        match self.phase {
            Phase::Warmup { remaining } => {
                // Initialization effects: characteristics are not
                // recorded (cold caches, one-time setup).
                self.phase = if remaining > 1 {
                    Phase::Warmup {
                        remaining: remaining - 1,
                    }
                } else {
                    Phase::Learning {
                        remaining: self.window,
                    }
                };
            }
            Phase::Learning { remaining } => {
                self.plt
                    .learn(record.instructions.max(1), record.cycles, &record.caches);
                self.phase = if remaining > 1 {
                    Phase::Learning {
                        remaining: remaining - 1,
                    }
                } else {
                    Phase::Predicting
                };
            }
            Phase::Predicting => {
                // A guarded simulate on an empty PLT: learn from it.
                self.plt
                    .learn(record.instructions.max(1), record.cycles, &record.caches);
            }
        }
    }

    /// Predicts the performance of an instance with the given signature
    /// (after a [`Decision::Predict`]); updates outlier tracking and
    /// possibly triggers re-learning for *subsequent* instances.
    ///
    /// Always returns a prediction (outliers fall back to the closest
    /// cluster, §4.4).
    ///
    /// # Panics
    ///
    /// Panics if called while the learner is not predicting or the PLT is
    /// empty (i.e. [`ServiceLearner::decide`] was not honored).
    pub fn predict(&mut self, signature: u64) -> PredictedPerf {
        assert!(
            matches!(self.phase, Phase::Predicting),
            "predict() called outside a prediction period"
        );
        self.invocation += 1;
        if let Some(perf) = self.plt.lookup(signature) {
            return perf;
        }
        // Outlier: predict from the closest cluster, then let the
        // strategy decide whether to re-learn.
        let perf = self
            .plt
            .closest(signature)
            .expect("decide() guards against an empty PLT");
        let idx = self
            .plt
            .record_outlier(signature, self.invocation, self.epo_window);
        if self.strategy.should_relearn(&self.plt.outliers()[idx]) {
            self.relearn_count += 1;
            self.plt.clear_outliers();
            // Re-enter through the same cold-start delay as the initial
            // learning period (§4.4): after a long prediction period the
            // simulated caches no longer hold this service's working set,
            // so the first few re-simulated instances are as unrepresen-
            // tative as the very first invocations were.
            self.phase = if self.relearn_warmup > 0 {
                Phase::Warmup {
                    remaining: self.relearn_warmup,
                }
            } else {
                Phase::Learning {
                    remaining: self.window,
                }
            };
        }
        perf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osprey_isa::ServiceId;
    use osprey_mem::HierarchySnapshot;
    use osprey_sim::interval::IntervalSource;

    fn record(instr: u64, cycles: u64) -> IntervalRecord {
        IntervalRecord {
            service: ServiceId::SysRead,
            path: "t",
            seq: 0,
            invocation: 0,
            instructions: instr,
            loads: 0,
            stores: 0,
            branches: 0,
            cycles,
            caches: HierarchySnapshot::default(),
            source: IntervalSource::Simulated,
        }
    }

    fn drive_to_predicting(learner: &mut ServiceLearner, instr: u64, cycles: u64) {
        while learner.is_learning() {
            assert_eq!(learner.decide(), Decision::Simulate);
            learner.observe_simulated(&record(instr, cycles));
        }
    }

    #[test]
    fn warmup_then_learning_then_predicting() {
        let mut learner = ServiceLearner::new(RelearnStrategy::BestMatch, 10, 5, 0.05, 100);
        for i in 0..5 {
            assert_eq!(learner.decide(), Decision::Simulate, "warmup {i}");
            learner.observe_simulated(&record(1_000, 2_000));
        }
        // Warm-up instances must not have been recorded.
        assert!(learner.plt().is_empty());
        for i in 0..10 {
            assert_eq!(learner.decide(), Decision::Simulate, "learning {i}");
            learner.observe_simulated(&record(1_000, 2_000));
        }
        assert_eq!(learner.decide(), Decision::Predict);
        assert_eq!(learner.plt().len(), 1);
    }

    #[test]
    fn prediction_returns_learned_performance() {
        let mut learner = ServiceLearner::new(RelearnStrategy::BestMatch, 8, 0, 0.05, 100);
        drive_to_predicting(&mut learner, 5_000, 12_000);
        let p = learner.predict(5_100);
        assert_eq!(p.cycles, 12_000);
    }

    #[test]
    fn best_match_predicts_outliers_without_relearning() {
        let mut learner = ServiceLearner::new(RelearnStrategy::BestMatch, 4, 0, 0.05, 100);
        drive_to_predicting(&mut learner, 5_000, 12_000);
        for _ in 0..50 {
            let p = learner.predict(50_000); // gross outlier
            assert_eq!(p.cycles, 12_000, "closest-cluster fallback");
        }
        assert_eq!(learner.relearn_count(), 0);
        assert_eq!(learner.decide(), Decision::Predict);
    }

    #[test]
    fn eager_relearns_on_first_outlier() {
        let mut learner = ServiceLearner::new(RelearnStrategy::Eager, 4, 0, 0.05, 100);
        drive_to_predicting(&mut learner, 5_000, 12_000);
        learner.predict(50_000);
        assert_eq!(learner.relearn_count(), 1);
        assert_eq!(learner.decide(), Decision::Simulate, "back to learning");
        // The new learning window absorbs the new behavior point.
        for _ in 0..4 {
            learner.observe_simulated(&record(50_000, 90_000));
        }
        assert_eq!(learner.decide(), Decision::Predict);
        assert_eq!(learner.predict(50_200).cycles, 90_000);
    }

    #[test]
    fn delayed_relearns_after_four_occurrences() {
        let mut learner =
            ServiceLearner::new(RelearnStrategy::Delayed { threshold: 4 }, 4, 0, 0.05, 100);
        drive_to_predicting(&mut learner, 5_000, 12_000);
        for _ in 0..3 {
            learner.predict(50_000);
            assert_eq!(learner.relearn_count(), 0);
        }
        learner.predict(50_000);
        assert_eq!(learner.relearn_count(), 1);
    }

    #[test]
    fn statistical_relearns_on_dense_outliers_only() {
        let strategy = RelearnStrategy::Statistical {
            p_min: 0.03,
            alpha: 0.05,
            min_epos: 4,
        };
        // Dense: every prediction is the same outlier -> EPO climbs fast.
        let mut dense = ServiceLearner::new(strategy, 4, 0, 0.05, 100);
        drive_to_predicting(&mut dense, 5_000, 12_000);
        for _ in 0..6 {
            if dense.decide() != Decision::Predict {
                break; // re-learning has kicked in
            }
            dense.predict(50_000);
        }
        assert_eq!(dense.relearn_count(), 1);

        // Sparse: outlier every ~200 invocations -> EPO ~ 0.005.
        let mut sparse = ServiceLearner::new(strategy, 4, 0, 0.05, 100);
        drive_to_predicting(&mut sparse, 5_000, 12_000);
        for _ in 0..8 {
            for _ in 0..200 {
                sparse.predict(5_000); // in-cluster
            }
            sparse.predict(50_000); // rare outlier
        }
        assert_eq!(sparse.relearn_count(), 0, "rare outliers must not trigger");
    }

    #[test]
    fn paper_default_window_is_about_100() {
        let learner = ServiceLearner::paper_default(RelearnStrategy::BestMatch);
        assert_eq!(learner.window, 100);
        assert_eq!(learner.warmup(), 5);
    }

    #[test]
    #[should_panic(expected = "outside a prediction period")]
    fn predict_requires_prediction_phase() {
        let mut learner = ServiceLearner::new(RelearnStrategy::Eager, 4, 0, 0.05, 100);
        learner.predict(1_000);
    }

    #[test]
    fn multiple_behavior_points_all_learned() {
        let mut learner = ServiceLearner::new(RelearnStrategy::BestMatch, 12, 0, 0.05, 100);
        let points = [(2_000u64, 4_000u64), (10_000, 22_000), (40_000, 95_000)];
        let mut i = 0;
        while learner.is_learning() {
            let (instr, cycles) = points[i % 3];
            learner.observe_simulated(&record(instr, cycles));
            i += 1;
        }
        assert_eq!(learner.plt().len(), 3);
        assert_eq!(learner.predict(2_050).cycles, 4_000);
        assert_eq!(learner.predict(10_100).cycles, 22_000);
        assert_eq!(learner.predict(39_500).cycles, 95_000);
    }
}

//! Simulation-speedup estimation (paper §6.4, Table 1 and Table 2).
//!
//! The paper could not switch Simics modes dynamically, so it *measured*
//! the relative wall-clock cost of the simulation modes (Table 1) and
//! estimated the end-to-end speedup of accelerated simulation with
//! Eq. 9–10:
//!
//! ```text
//! speedup = N / (X * (T_profile / T_full) + (N - X))
//! ```
//!
//! where `N` is the total instruction count, `X` the instructions
//! fast-forwarded during prediction periods, and `T_profile/T_full` the
//! per-instruction cost ratio between the fast-forward mode and detailed
//! mode. Osprey does the same with its own cores.

use std::time::Instant;

use osprey_sim::{CoreModel, FullSystemSim, SimConfig};
use osprey_workloads::Benchmark;

/// Wall-clock slowdown of each simulation mode relative to
/// `inorder-nocache` — Osprey's Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeSlowdowns {
    /// Seconds per simulated instruction in `inorder-nocache` mode.
    pub base_secs_per_instr: f64,
    /// `inorder-cache` slowdown (×).
    pub inorder_cache: f64,
    /// `ooo-nocache` slowdown (×).
    pub ooo_nocache: f64,
    /// `ooo-cache` slowdown (×) — the detailed full-system mode.
    pub ooo_cache: f64,
    /// Pure functional emulation slowdown (×, typically < 1: faster than
    /// the in-order no-cache timing mode).
    pub emulation: f64,
}

impl ModeSlowdowns {
    /// The `T_profile / T_full` ratio of Eq. 10, taking
    /// `inorder-nocache` as the fast-forward profiling mode and
    /// `ooo-cache` as the detailed mode (as the paper does — "probably
    /// slower than necessary").
    pub fn profile_over_full(&self) -> f64 {
        1.0 / self.ooo_cache
    }
}

/// Measures per-instruction wall-clock cost of every mode by running the
/// same workload through each core model — Osprey's version of the
/// paper's Table 1 measurement.
///
/// `scale` controls the measurement workload length; 0.1–0.5 gives
/// stable ratios in a few seconds on a laptop.
///
/// # Panics
///
/// Panics if `scale` is not strictly positive.
pub fn measure_mode_slowdowns(benchmark: Benchmark, seed: u64, scale: f64) -> ModeSlowdowns {
    assert!(scale > 0.0, "scale must be positive");
    let mut secs = [0.0f64; 5];
    let models = [
        CoreModel::InOrderNoCache,
        CoreModel::InOrderCache,
        CoreModel::OooNoCache,
        CoreModel::OooCache,
        CoreModel::Emulation,
    ];
    for (i, model) in models.iter().enumerate() {
        let cfg = SimConfig::new(benchmark)
            .with_seed(seed)
            .with_scale(scale)
            .with_core(*model);
        let started = Instant::now();
        let report = FullSystemSim::new(cfg).run_to_completion();
        secs[i] = started.elapsed().as_secs_f64() / report.total_instructions.max(1) as f64;
    }
    let base = secs[0].max(f64::MIN_POSITIVE);
    ModeSlowdowns {
        base_secs_per_instr: base,
        inorder_cache: secs[1] / base,
        ooo_nocache: secs[2] / base,
        ooo_cache: secs[3] / base,
        emulation: secs[4] / base,
    }
}

/// The paper's Eq. 10: estimated end-to-end simulation speedup when `x`
/// of the `n` total instructions are fast-forwarded and fast-forwarding
/// costs `profile_over_full` of detailed simulation per instruction.
///
/// # Panics
///
/// Panics if `x > n` or `profile_over_full` is not in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use osprey_core::estimated_speedup;
///
/// // The paper's example ratio: T_profile/T_full = 1/133. With ~89% of
/// // instructions fast-forwarded the speedup approaches 1/0.117 ≈ 8.6.
/// let s = estimated_speedup(1_000_000, 890_000, 1.0 / 133.0);
/// assert!(s > 8.0 && s < 9.0);
/// ```
pub fn estimated_speedup(n: u64, x: u64, profile_over_full: f64) -> f64 {
    assert!(x <= n, "fast-forwarded instructions cannot exceed total");
    assert!(
        profile_over_full > 0.0 && profile_over_full <= 1.0,
        "fast-forward must not be slower than detailed simulation"
    );
    if n == 0 {
        return 1.0;
    }
    n as f64 / (x as f64 * profile_over_full + (n - x) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq10_limits() {
        // Nothing fast-forwarded: no speedup.
        assert_eq!(estimated_speedup(1_000, 0, 1.0 / 133.0), 1.0);
        // Everything fast-forwarded: the full mode ratio.
        let s = estimated_speedup(1_000, 1_000, 1.0 / 133.0);
        assert!((s - 133.0).abs() < 1e-9);
        // Empty run: neutral.
        assert_eq!(estimated_speedup(0, 0, 0.5), 1.0);
    }

    #[test]
    fn eq10_matches_paper_arithmetic() {
        // Paper Table 2 sanity: with 1/133 ratio, X/N = 0.6 gives
        // N / (0.6N/133 + 0.4N) ≈ 2.47.
        let s = estimated_speedup(1_000_000, 600_000, 1.0 / 133.0);
        assert!((s - 2.47).abs() < 0.02, "s = {s}");
    }

    #[test]
    #[should_panic(expected = "cannot exceed total")]
    fn eq10_rejects_x_above_n() {
        estimated_speedup(10, 11, 0.5);
    }

    #[test]
    fn mode_measurement_orders_modes_sensibly() {
        let slow = measure_mode_slowdowns(Benchmark::Iperf, 1, 0.05);
        // Detailed ooo-cache must be the most expensive mode; adding
        // caches or out-of-order bookkeeping can never be free.
        assert!(slow.ooo_cache >= 1.0);
        assert!(slow.ooo_cache >= slow.inorder_cache * 0.9);
        assert!(slow.profile_over_full() <= 1.0);
        assert!(slow.base_secs_per_instr > 0.0);
        assert!(
            slow.emulation <= 1.2,
            "emulation must not cost more than timing"
        );
    }
}

//! Extended behavior signatures — the paper's stated future work.
//!
//! The paper identifies behavior points by dynamic instruction count
//! alone, noting (§3) that "other metrics such as the mix of
//! instructions, branch history, or Basic Block Vector may also serve as
//! good bases for constructing signatures. However, since
//! instruction-based signatures already give a high prediction accuracy,
//! we leave this exploration for future work."
//!
//! This module implements that exploration: a [`MixSignature`] extends
//! the instruction count with the interval's load and branch counts —
//! both observable in functional emulation, so the requirement that
//! signatures must be obtainable without timing models still holds. A
//! [`MixPlt`] clusters on the extended signature; the
//! `ablation_signature` bench binary compares the cluster quality of the
//! two signature schemes.

use osprey_sim::IntervalRecord;
use osprey_stats::Streaming;

/// An extended behavior signature: instruction count plus instruction-mix
/// components, all countable in emulation mode.
///
/// # Examples
///
/// ```
/// use osprey_core::signature::MixSignature;
///
/// let a = MixSignature { instructions: 10_000, loads: 2_500, branches: 1_500 };
/// let near = MixSignature { instructions: 10_200, loads: 2_550, branches: 1_480 };
/// let far = MixSignature { instructions: 10_200, loads: 4_000, branches: 1_480 };
/// assert!(a.matches(&near, 0.05));
/// assert!(!a.matches(&far, 0.05), "same length, different mix");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MixSignature {
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Dynamic load count.
    pub loads: u64,
    /// Dynamic branch count.
    pub branches: u64,
}

impl MixSignature {
    /// Extracts the signature from a simulated interval record.
    pub fn from_record(record: &IntervalRecord) -> Self {
        Self {
            instructions: record.instructions.max(1),
            loads: record.loads,
            branches: record.branches,
        }
    }

    /// Whether every component of `other` falls within ±`range` of this
    /// signature's corresponding component (components that are zero in
    /// both match trivially).
    pub fn matches(&self, other: &MixSignature, range: f64) -> bool {
        let within = |a: u64, b: u64| -> bool {
            if a == 0 && b == 0 {
                return true;
            }
            (b as f64 - a as f64).abs() <= range * (a as f64).max(1.0)
        };
        within(self.instructions, other.instructions)
            && within(self.loads, other.loads)
            && within(self.branches, other.branches)
    }

    /// Normalized Manhattan distance between signatures (sum of relative
    /// component distances).
    pub fn distance(&self, other: &MixSignature) -> f64 {
        let rel = |a: u64, b: u64| -> f64 {
            if a == 0 && b == 0 {
                0.0
            } else {
                (b as f64 - a as f64).abs() / (a as f64).max(1.0)
            }
        };
        rel(self.instructions, other.instructions)
            + rel(self.loads, other.loads)
            + rel(self.branches, other.branches)
    }
}

/// A cluster in the extended-signature space.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MixCluster {
    centroid: MixSignature,
    members: u64,
    cycles: Streaming,
}

impl MixCluster {
    fn new(sig: MixSignature, cycles: u64) -> Self {
        let mut c = Self {
            centroid: sig,
            members: 0,
            cycles: Streaming::new(),
        };
        c.add(sig, cycles);
        c
    }

    fn add(&mut self, sig: MixSignature, cycles: u64) {
        self.members += 1;
        let blend = |c: u64, x: u64, n: u64| -> u64 {
            (c as f64 + (x as f64 - c as f64) / n as f64)
                .round()
                .max(0.0) as u64
        };
        self.centroid = MixSignature {
            instructions: blend(self.centroid.instructions, sig.instructions, self.members),
            loads: blend(self.centroid.loads, sig.loads, self.members),
            branches: blend(self.centroid.branches, sig.branches, self.members),
        };
        self.cycles.push(cycles as f64);
    }

    /// Cluster centroid.
    pub fn centroid(&self) -> MixSignature {
        self.centroid
    }

    /// Number of absorbed instances.
    pub fn members(&self) -> u64 {
        self.members
    }

    /// Mean cycles of the members.
    pub fn mean_cycles(&self) -> f64 {
        self.cycles.mean()
    }

    /// Coefficient of variation of member cycles.
    pub fn cycles_cv(&self) -> f64 {
        self.cycles.cv()
    }
}

/// A Performance Lookup Table keyed by [`MixSignature`].
///
/// # Examples
///
/// ```
/// use osprey_core::signature::{MixPlt, MixSignature};
///
/// let mut plt = MixPlt::new(0.05);
/// let copyish = MixSignature { instructions: 10_000, loads: 4_200, branches: 600 };
/// let ctrlish = MixSignature { instructions: 10_000, loads: 3_200, branches: 2_200 };
/// plt.learn(copyish, 9_000);
/// plt.learn(ctrlish, 30_000);
/// // The same instruction count resolves to different clusters by mix.
/// assert_eq!(plt.len(), 2);
/// assert_eq!(plt.predict_cycles(&copyish), Some(9_000.0));
/// assert_eq!(plt.predict_cycles(&ctrlish), Some(30_000.0));
/// ```
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MixPlt {
    clusters: Vec<MixCluster>,
    range: f64,
}

impl MixPlt {
    /// Creates an empty table with the given per-component range
    /// fraction.
    ///
    /// # Panics
    ///
    /// Panics if `range` is not in `(0, 1)`.
    pub fn new(range: f64) -> Self {
        assert!(range > 0.0 && range < 1.0, "range must be in (0, 1)");
        Self {
            clusters: Vec::new(),
            range,
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` when no cluster exists.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The clusters.
    pub fn clusters(&self) -> &[MixCluster] {
        &self.clusters
    }

    /// Absorbs one instance.
    pub fn learn(&mut self, sig: MixSignature, cycles: u64) {
        let best = self
            .clusters
            .iter_mut()
            .filter(|c| c.centroid.matches(&sig, self.range))
            .min_by(|a, b| {
                a.centroid
                    .distance(&sig)
                    .partial_cmp(&b.centroid.distance(&sig))
                    .expect("distances are finite")
            });
        match best {
            Some(cluster) => cluster.add(sig, cycles),
            None => self.clusters.push(MixCluster::new(sig, cycles)),
        }
    }

    /// Predicts cycles for a signature, or `None` for an outlier.
    pub fn predict_cycles(&self, sig: &MixSignature) -> Option<f64> {
        self.clusters
            .iter()
            .filter(|c| c.centroid.matches(sig, self.range))
            .min_by(|a, b| {
                a.centroid
                    .distance(sig)
                    .partial_cmp(&b.centroid.distance(sig))
                    .expect("distances are finite")
            })
            .map(|c| c.mean_cycles())
    }

    /// Member-weighted mean cycle CV across clusters — comparable to
    /// [`crate::Plt::mean_cycles_cv`] for the count-only scheme.
    pub fn mean_cycles_cv(&self) -> f64 {
        let total: u64 = self.clusters.iter().map(|c| c.members).sum();
        if total == 0 {
            return 0.0;
        }
        self.clusters
            .iter()
            .map(|c| c.cycles_cv() * c.members as f64)
            .sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(i: u64, l: u64, b: u64) -> MixSignature {
        MixSignature {
            instructions: i,
            loads: l,
            branches: b,
        }
    }

    #[test]
    fn matching_requires_every_component() {
        let a = sig(10_000, 2_000, 1_000);
        assert!(a.matches(&sig(10_400, 2_080, 960), 0.05));
        assert!(
            !a.matches(&sig(11_000, 2_000, 1_000), 0.05),
            "instructions off"
        );
        assert!(!a.matches(&sig(10_000, 3_000, 1_000), 0.05), "loads off");
        assert!(!a.matches(&sig(10_000, 2_000, 1_200), 0.05), "branches off");
    }

    #[test]
    fn zero_components_match_trivially() {
        let a = sig(500, 0, 0);
        assert!(a.matches(&sig(500, 0, 0), 0.05));
    }

    #[test]
    fn distance_is_zero_iff_equal() {
        let a = sig(10_000, 2_000, 1_000);
        assert_eq!(a.distance(&a), 0.0);
        assert!(a.distance(&sig(10_001, 2_000, 1_000)) > 0.0);
    }

    #[test]
    fn mix_separates_equal_length_paths() {
        // Two paths with identical instruction counts but different
        // load fractions: the count-only scheme must merge them, the
        // mix scheme must not.
        let copy = sig(10_000, 4_000, 500);
        let ctrl = sig(10_000, 3_000, 2_200);

        let mut count_only = crate::Plt::new(0.05);
        count_only.learn(copy.instructions, 9_000, &Default::default());
        count_only.learn(ctrl.instructions, 30_000, &Default::default());
        assert_eq!(count_only.len(), 1, "count-only cannot tell them apart");

        let mut mix = MixPlt::new(0.05);
        mix.learn(copy, 9_000);
        mix.learn(ctrl, 30_000);
        assert_eq!(mix.len(), 2);
        // And the merged count-only cluster has far worse cycle CV.
        assert!(count_only.mean_cycles_cv() > mix.mean_cycles_cv());
    }

    #[test]
    fn centroid_tracks_member_mean() {
        let mut plt = MixPlt::new(0.10);
        plt.learn(sig(10_000, 2_000, 1_000), 100);
        plt.learn(sig(10_400, 2_100, 1_040), 200);
        assert_eq!(plt.len(), 1);
        let c = plt.clusters()[0].centroid();
        assert_eq!(c.instructions, 10_200);
        assert_eq!(plt.clusters()[0].members(), 2);
        assert_eq!(plt.predict_cycles(&sig(10_200, 2_050, 1_020)), Some(150.0));
    }

    #[test]
    fn outliers_predict_nothing() {
        let mut plt = MixPlt::new(0.05);
        plt.learn(sig(10_000, 2_000, 1_000), 100);
        assert_eq!(plt.predict_cycles(&sig(50_000, 2_000, 1_000)), None);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn rejects_degenerate_range() {
        MixPlt::new(0.0);
    }
}

//! Cross-validates the accelerated simulator against detailed mode for
//! every OS-intensive benchmark, printing coverage and cycle error per
//! re-learning strategy.

use osprey_core::accel::{AccelConfig, AcceleratedSim};
use osprey_core::RelearnStrategy;
use osprey_sim::{FullSystemSim, SimConfig};
use osprey_workloads::Benchmark;

fn main() {
    let scale = 1.0;
    for b in Benchmark::OS_INTENSIVE {
        let cfg = SimConfig::new(b).with_scale(scale);
        let t = std::time::Instant::now();
        let detailed = FullSystemSim::new(cfg.clone()).run_to_completion();
        let dt = t.elapsed().as_secs_f64();
        print!(
            "{:8} detailed: cycles={:>12} ({:.0}s) | ",
            b, detailed.total_cycles, dt
        );
        for strat in RelearnStrategy::ALL {
            let out = AcceleratedSim::new(cfg.clone(), AccelConfig::with_strategy(strat)).run();
            let err = (out.report.total_cycles as f64 - detailed.total_cycles as f64).abs()
                / detailed.total_cycles as f64;
            print!(
                "{}: cov={:.0}% err={:.1}% | ",
                strat.name(),
                out.coverage() * 100.0,
                err * 100.0
            );
        }
        println!();
    }
}

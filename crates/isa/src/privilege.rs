//! Processor privilege modes.
//!
//! The paper defines an *OS service interval* as the dynamic instructions
//! between a switch to kernel mode and the return to user mode; everything
//! in user mode counts as application code (§3). The simulator tracks the
//! current [`Privilege`] and tags every cache access and retired
//! instruction with it.

/// The two privilege modes the interval-detection logic distinguishes.
///
/// # Examples
///
/// ```
/// use osprey_isa::Privilege;
///
/// assert!(Privilege::Kernel.is_kernel());
/// assert!(!Privilege::User.is_kernel());
/// assert_eq!(Privilege::default(), Privilege::User);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Privilege {
    /// Non-privileged application mode.
    #[default]
    User,
    /// Privileged kernel mode — everything inside an OS service interval.
    Kernel,
}

impl Privilege {
    /// Returns `true` for [`Privilege::Kernel`].
    pub fn is_kernel(self) -> bool {
        matches!(self, Privilege::Kernel)
    }

    /// Returns `true` for [`Privilege::User`].
    pub fn is_user(self) -> bool {
        matches!(self, Privilege::User)
    }

    /// Attempts the kernel-entry transition edge (trap, interrupt, or
    /// syscall dispatch).
    ///
    /// Returns the new mode, or `None` when already in kernel mode: the
    /// machine has no nested-entry support, and the static verifier
    /// reports `OSPV002` for programs that would need it.
    pub fn enter_kernel(self) -> Option<Privilege> {
        match self {
            Privilege::User => Some(Privilege::Kernel),
            Privilege::Kernel => None,
        }
    }

    /// Attempts the return-to-user transition edge that closes an OS
    /// service interval.
    ///
    /// Returns the new mode, or `None` when already in user mode — a
    /// return without a matching entry (`OSPV001` in the verifier).
    pub fn return_to_user(self) -> Option<Privilege> {
        match self {
            Privilege::Kernel => Some(Privilege::User),
            Privilege::User => None,
        }
    }
}

impl std::fmt::Display for Privilege {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Privilege::User => f.write_str("user"),
            Privilege::Kernel => f.write_str("kernel"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_are_exclusive() {
        assert!(Privilege::User.is_user() && !Privilege::User.is_kernel());
        assert!(Privilege::Kernel.is_kernel() && !Privilege::Kernel.is_user());
    }

    #[test]
    fn default_is_user_mode() {
        assert_eq!(Privilege::default(), Privilege::User);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Privilege::User.to_string(), "user");
        assert_eq!(Privilege::Kernel.to_string(), "kernel");
    }

    #[test]
    fn entry_edge_switches_user_to_kernel() {
        assert_eq!(Privilege::User.enter_kernel(), Some(Privilege::Kernel));
    }

    #[test]
    fn nested_entry_edge_is_rejected() {
        assert_eq!(Privilege::Kernel.enter_kernel(), None);
    }

    #[test]
    fn return_edge_switches_kernel_to_user() {
        assert_eq!(Privilege::Kernel.return_to_user(), Some(Privilege::User));
    }

    #[test]
    fn return_without_entry_edge_is_rejected() {
        assert_eq!(Privilege::User.return_to_user(), None);
    }

    #[test]
    fn transition_edges_round_trip() {
        // A well-bracketed interval walks User -> Kernel -> User.
        let entered = Privilege::User.enter_kernel().expect("entry from user");
        assert_eq!(entered.return_to_user(), Some(Privilege::User));
    }

    #[test]
    fn kernel_orders_above_user() {
        // The verifier sorts (mode, ...) walk states; keep the order stable.
        assert!(Privilege::User < Privilege::Kernel);
    }
}

//! Processor privilege modes.
//!
//! The paper defines an *OS service interval* as the dynamic instructions
//! between a switch to kernel mode and the return to user mode; everything
//! in user mode counts as application code (§3). The simulator tracks the
//! current [`Privilege`] and tags every cache access and retired
//! instruction with it.

use serde::{Deserialize, Serialize};

/// The two privilege modes the interval-detection logic distinguishes.
///
/// # Examples
///
/// ```
/// use osprey_isa::Privilege;
///
/// assert!(Privilege::Kernel.is_kernel());
/// assert!(!Privilege::User.is_kernel());
/// assert_eq!(Privilege::default(), Privilege::User);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Privilege {
    /// Non-privileged application mode.
    #[default]
    User,
    /// Privileged kernel mode — everything inside an OS service interval.
    Kernel,
}

impl Privilege {
    /// Returns `true` for [`Privilege::Kernel`].
    pub fn is_kernel(self) -> bool {
        matches!(self, Privilege::Kernel)
    }

    /// Returns `true` for [`Privilege::User`].
    pub fn is_user(self) -> bool {
        matches!(self, Privilege::User)
    }
}

impl std::fmt::Display for Privilege {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Privilege::User => f.write_str("user"),
            Privilege::Kernel => f.write_str("kernel"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_are_exclusive() {
        assert!(Privilege::User.is_user() && !Privilege::User.is_kernel());
        assert!(Privilege::Kernel.is_kernel() && !Privilege::Kernel.is_user());
    }

    #[test]
    fn default_is_user_mode() {
        assert_eq!(Privilege::default(), Privilege::User);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Privilege::User.to_string(), "user");
        assert_eq!(Privilege::Kernel.to_string(), "kernel");
    }
}

//! Synthetic instruction-set model for the Osprey full-system simulator.
//!
//! The paper's testbed executes real x86 on Simics. Osprey substitutes a
//! *synthetic* ISA: instructions carry exactly the attributes the timing
//! models consume — a program counter (for the instruction cache and branch
//! predictor), an instruction class (for functional-unit latency), an
//! optional data address (for the data caches), and branch outcome
//! information. Workloads and the synthetic kernel emit deterministic
//! streams of these instructions through [`block::BlockGen`].
//!
//! # Examples
//!
//! Generating a small, fully deterministic user-mode block:
//!
//! ```
//! use osprey_isa::block::{BlockSpec, InstrMix, MemPattern};
//!
//! let spec = BlockSpec::new(0x40_0000, 100)
//!     .with_mix(InstrMix::balanced())
//!     .with_mem(MemPattern::sequential(0x800_0000, 64 * 1024, 64));
//! let a: Vec<_> = spec.generate(7).collect();
//! let b: Vec<_> = spec.generate(7).collect();
//! assert_eq!(a.len(), 100);
//! assert_eq!(a, b); // identical seed -> identical stream
//! ```

pub mod block;
pub mod instr;
pub mod privilege;
pub mod service;

pub use block::{
    AccessPattern, BlockGen, BlockSpec, ClassTotals, InstrMix, InstrRun, MemPattern, RunGen,
};
pub use instr::{BranchInfo, InstrClass, Instruction};
pub use privilege::Privilege;
pub use service::ServiceId;

//! Dynamic instruction representation.
//!
//! Each [`Instruction`] carries only what the timing models need: a program
//! counter, a class, an optional data-memory address, and branch outcome
//! information. Semantic execution (register values, arithmetic results)
//! is irrelevant to the performance study and is not modeled.

/// Instruction classes with distinct timing behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum InstrClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (long latency, unpipelined).
    IntDiv,
    /// Floating-point add/sub/compare.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide (long latency, unpipelined).
    FpDiv,
    /// Memory load; [`Instruction::mem_addr`] holds the effective address.
    Load,
    /// Memory store; [`Instruction::mem_addr`] holds the effective address.
    Store,
    /// Conditional or unconditional branch; [`Instruction::branch`] holds
    /// the outcome.
    Branch,
    /// No-operation (also used for fences and other single-slot fillers).
    Nop,
}

impl InstrClass {
    /// `true` for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, InstrClass::Load | InstrClass::Store)
    }

    /// `true` for branches.
    pub fn is_branch(self) -> bool {
        matches!(self, InstrClass::Branch)
    }
}

/// Branch outcome attached to [`InstrClass::Branch`] instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BranchInfo {
    /// Whether the branch is taken.
    pub taken: bool,
    /// Branch target address (meaningful when taken).
    pub target: u64,
}

/// One dynamic instruction.
///
/// # Examples
///
/// ```
/// use osprey_isa::{InstrClass, Instruction};
///
/// let ld = Instruction::load(0x40_0010, 0x800_0040);
/// assert_eq!(ld.class, InstrClass::Load);
/// assert_eq!(ld.mem_addr, Some(0x800_0040));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Instruction {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Timing class.
    pub class: InstrClass,
    /// Effective data address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Outcome for branches.
    pub branch: Option<BranchInfo>,
}

impl Instruction {
    /// Creates a non-memory, non-branch instruction of the given class.
    pub fn simple(pc: u64, class: InstrClass) -> Self {
        debug_assert!(!class.is_mem() && !class.is_branch());
        Self {
            pc,
            class,
            mem_addr: None,
            branch: None,
        }
    }

    /// Creates a load from `addr`.
    pub fn load(pc: u64, addr: u64) -> Self {
        Self {
            pc,
            class: InstrClass::Load,
            mem_addr: Some(addr),
            branch: None,
        }
    }

    /// Creates a store to `addr`.
    pub fn store(pc: u64, addr: u64) -> Self {
        Self {
            pc,
            class: InstrClass::Store,
            mem_addr: Some(addr),
            branch: None,
        }
    }

    /// Creates a branch with the given outcome.
    pub fn branch(pc: u64, taken: bool, target: u64) -> Self {
        Self {
            pc,
            class: InstrClass::Branch,
            mem_addr: None,
            branch: Some(BranchInfo { taken, target }),
        }
    }

    /// The address of the next sequential instruction (fixed 4-byte
    /// encoding in the synthetic ISA).
    pub fn fallthrough(&self) -> u64 {
        self.pc + 4
    }

    /// The address control flow actually continues at.
    pub fn next_pc(&self) -> u64 {
        match self.branch {
            Some(BranchInfo {
                taken: true,
                target,
            }) => target,
            _ => self.fallthrough(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_fields() {
        let alu = Instruction::simple(0x100, InstrClass::IntAlu);
        assert_eq!(alu.mem_addr, None);
        assert_eq!(alu.branch, None);

        let ld = Instruction::load(0x104, 0xdead);
        assert!(ld.class.is_mem());
        assert_eq!(ld.mem_addr, Some(0xdead));

        let st = Instruction::store(0x108, 0xbeef);
        assert_eq!(st.class, InstrClass::Store);

        let br = Instruction::branch(0x10c, true, 0x100);
        assert!(br.class.is_branch());
        assert_eq!(br.branch.unwrap().target, 0x100);
    }

    #[test]
    fn next_pc_follows_taken_branches() {
        let taken = Instruction::branch(0x100, true, 0x40);
        assert_eq!(taken.next_pc(), 0x40);
        let not_taken = Instruction::branch(0x100, false, 0x40);
        assert_eq!(not_taken.next_pc(), 0x104);
        let alu = Instruction::simple(0x100, InstrClass::IntAlu);
        assert_eq!(alu.next_pc(), 0x104);
    }

    #[test]
    fn class_predicates() {
        assert!(InstrClass::Load.is_mem());
        assert!(InstrClass::Store.is_mem());
        assert!(!InstrClass::Branch.is_mem());
        assert!(InstrClass::Branch.is_branch());
        assert!(!InstrClass::FpMul.is_branch());
    }
}

//! Deterministic synthetic instruction-block generation.
//!
//! Workloads and OS service handlers describe code regions as
//! [`BlockSpec`]s: an instruction budget, an instruction mix, a code
//! footprint (which determines instruction-cache behavior), a data-access
//! pattern (which determines data-cache behavior), and a branch
//! predictability. [`BlockSpec::generate`] expands a spec into a concrete
//! instruction stream, fully determined by the seed — the property that
//! lets Osprey's emulation mode replay the exact functional path that
//! detailed mode would have executed, as the paper's signature profiling
//! requires.

use osprey_stats::rng::SmallRng;

use crate::instr::{InstrClass, Instruction};

/// Fractions of each non-ALU instruction class in a block; the remainder
/// is [`InstrClass::IntAlu`].
///
/// # Examples
///
/// ```
/// use osprey_isa::InstrMix;
///
/// let mix = InstrMix::balanced();
/// assert!(mix.alu_fraction() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InstrMix {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of branches.
    pub branch: f64,
    /// Fraction of integer multiplies.
    pub int_mul: f64,
    /// Fraction of integer divides.
    pub int_div: f64,
    /// Fraction of floating-point adds.
    pub fp_add: f64,
    /// Fraction of floating-point multiplies.
    pub fp_mul: f64,
    /// Fraction of floating-point divides.
    pub fp_div: f64,
}

impl InstrMix {
    /// A typical integer-code mix (~25 % loads, 10 % stores, 15 % branches).
    pub fn balanced() -> Self {
        Self {
            load: 0.25,
            store: 0.10,
            branch: 0.15,
            int_mul: 0.01,
            int_div: 0.002,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
        }
    }

    /// Kernel control-path mix: branch- and load-heavy, pointer chasing
    /// through kernel data structures.
    pub fn kernel_control() -> Self {
        Self {
            load: 0.32,
            store: 0.12,
            branch: 0.22,
            int_mul: 0.005,
            int_div: 0.001,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
        }
    }

    /// Bulk data movement (e.g. `copy_to_user`, packet copies): dominated
    /// by loads and stores with few branches.
    pub fn memory_copy() -> Self {
        Self {
            load: 0.42,
            store: 0.38,
            branch: 0.06,
            int_mul: 0.0,
            int_div: 0.0,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
        }
    }

    /// Floating-point compute kernel (SPEC fp style).
    pub fn compute_fp() -> Self {
        Self {
            load: 0.22,
            store: 0.08,
            branch: 0.08,
            int_mul: 0.01,
            int_div: 0.0,
            fp_add: 0.22,
            fp_mul: 0.18,
            fp_div: 0.01,
        }
    }

    /// Integer compute kernel (SPEC int style).
    pub fn compute_int() -> Self {
        Self {
            load: 0.24,
            store: 0.10,
            branch: 0.18,
            int_mul: 0.03,
            int_div: 0.004,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
        }
    }

    /// Fraction left over for plain ALU operations.
    pub fn alu_fraction(&self) -> f64 {
        1.0 - (self.load
            + self.store
            + self.branch
            + self.int_mul
            + self.int_div
            + self.fp_add
            + self.fp_mul
            + self.fp_div)
    }

    /// `true` when the fractions are all non-negative and sum to at most 1.
    pub fn is_valid(&self) -> bool {
        let parts = [
            self.load,
            self.store,
            self.branch,
            self.int_mul,
            self.int_div,
            self.fp_add,
            self.fp_mul,
            self.fp_div,
        ];
        parts.iter().all(|&p| (0.0..=1.0).contains(&p)) && self.alu_fraction() >= -1e-9
    }
}

/// Precomputed cumulative thresholds of an [`InstrMix`].
///
/// The thresholds are the same left-to-right partial sums the
/// incremental accumulator used to compute per pick, so classification
/// is bit-identical while the per-instruction cost drops to a compare
/// chain over cached values.
#[derive(Debug, Clone, Copy)]
struct MixCdf {
    /// Partial sums: load, +store, +branch, +int_mul, +int_div,
    /// +fp_add, +fp_mul, +fp_div.
    t: [f64; 8],
}

impl MixCdf {
    fn new(mix: &InstrMix) -> Self {
        let mut t = [0.0; 8];
        let mut acc = mix.load;
        t[0] = acc;
        acc += mix.store;
        t[1] = acc;
        acc += mix.branch;
        t[2] = acc;
        acc += mix.int_mul;
        t[3] = acc;
        acc += mix.int_div;
        t[4] = acc;
        acc += mix.fp_add;
        t[5] = acc;
        acc += mix.fp_mul;
        t[6] = acc;
        acc += mix.fp_div;
        t[7] = acc;
        Self { t }
    }

    #[inline]
    fn pick(&self, u: f64) -> InstrClass {
        // Plain ALU is the most common outcome in every preset mix and
        // the chain's final fall-through; testing it first costs one
        // compare instead of eight. `u >= t[7]` ⇔ every `u < t[i]` below
        // fails, so the classification is unchanged.
        if u >= self.t[7] {
            return InstrClass::IntAlu;
        }
        if u < self.t[0] {
            return InstrClass::Load;
        }
        if u < self.t[1] {
            return InstrClass::Store;
        }
        if u < self.t[2] {
            return InstrClass::Branch;
        }
        if u < self.t[3] {
            return InstrClass::IntMul;
        }
        if u < self.t[4] {
            return InstrClass::IntDiv;
        }
        if u < self.t[5] {
            return InstrClass::FpAdd;
        }
        if u < self.t[6] {
            return InstrClass::FpMul;
        }
        if u < self.t[7] {
            return InstrClass::FpDiv;
        }
        InstrClass::IntAlu
    }
}

/// Data-access pattern over a memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AccessPattern {
    /// Walk the region with a fixed stride, wrapping at the footprint.
    Sequential {
        /// Stride in bytes between consecutive accesses.
        stride: u64,
    },
    /// Uniformly random addresses within the footprint.
    Random,
}

/// A data memory region plus the pattern used to access it.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemPattern {
    /// Base address of the region.
    pub base: u64,
    /// Region size in bytes.
    pub footprint: u64,
    /// How addresses are drawn from the region.
    pub pattern: AccessPattern,
}

impl MemPattern {
    /// Sequential walk with the given stride.
    pub fn sequential(base: u64, footprint: u64, stride: u64) -> Self {
        Self {
            base,
            footprint,
            pattern: AccessPattern::Sequential { stride },
        }
    }

    /// Uniformly random accesses over the region.
    pub fn random(base: u64, footprint: u64) -> Self {
        Self {
            base,
            footprint,
            pattern: AccessPattern::Random,
        }
    }
}

/// Specification of a synthetic code block.
///
/// Construct with [`BlockSpec::new`] and customize with the `with_`
/// builder methods; expand into instructions with [`BlockSpec::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockSpec {
    /// First instruction address of the block's code region.
    pub base_pc: u64,
    /// Number of dynamic instructions to emit.
    pub instr_count: u64,
    /// Bytes of distinct code the block loops through (static footprint).
    pub code_footprint: u64,
    /// Instruction mix.
    pub mix: InstrMix,
    /// Data access behavior.
    pub mem: MemPattern,
    /// Fraction of branches whose direction repeats a fixed pattern (and
    /// is therefore predictable by the branch predictor).
    pub branch_predictability: f64,
}

impl BlockSpec {
    /// Creates a spec with `instr_count` instructions at `base_pc`, a code
    /// footprint of 4 KiB (or smaller if the block is shorter), a balanced
    /// mix, and a sequential 64-byte-stride walk over a 16 KiB region
    /// placed right after the code.
    pub fn new(base_pc: u64, instr_count: u64) -> Self {
        let code_footprint = (instr_count * 4).clamp(64, 4096);
        Self {
            base_pc,
            instr_count,
            code_footprint,
            mix: InstrMix::balanced(),
            mem: MemPattern::sequential(base_pc + 0x10_0000, 16 * 1024, 64),
            branch_predictability: 0.9,
        }
    }

    /// Sets the instruction mix.
    pub fn with_mix(mut self, mix: InstrMix) -> Self {
        debug_assert!(mix.is_valid(), "instruction mix fractions exceed 1.0");
        self.mix = mix;
        self
    }

    /// Sets the data access pattern.
    pub fn with_mem(mut self, mem: MemPattern) -> Self {
        self.mem = mem;
        self
    }

    /// Sets the static code footprint in bytes.
    pub fn with_code_footprint(mut self, bytes: u64) -> Self {
        self.code_footprint = bytes.max(64);
        self
    }

    /// Sets the fraction of predictable branches.
    pub fn with_branch_predictability(mut self, p: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&p));
        self.branch_predictability = p;
        self
    }

    /// Expands the spec into a deterministic instruction stream.
    ///
    /// The same `(spec, seed)` pair always yields the identical stream.
    pub fn generate(&self, seed: u64) -> BlockGen {
        BlockGen {
            st: GenState::new(self, seed),
        }
    }

    /// Expands the spec into the same stream as [`BlockSpec::generate`],
    /// but batched into [`InstrRun`]s of same-class instructions.
    ///
    /// Expanding the runs yields exactly the instructions `generate(seed)`
    /// yields, in order — the run view is a lossless re-grouping, which is
    /// what lets the timing cores consume it without changing a single
    /// cycle or counter.
    pub fn runs(&self, seed: u64) -> RunGen {
        RunGen {
            st: GenState::new(self, seed),
            pending: None,
        }
    }

    /// Totals of the stream `generate(seed)` yields — exactly what
    /// emulation mode counts — without materializing instructions or
    /// runs.
    ///
    /// The loop makes the same RNG draws in the same order as the full
    /// expansion but only *reads* the ones that influence totals or
    /// control flow: class picks, branch-predictability draws, direction
    /// coins, and taken-branch hops. Data-address draws are skipped with
    /// [`osprey_stats::rng::SmallRng::skip`] (their values only affect
    /// addresses, which totals never see), as are hop draws of
    /// not-taken branches. Equivalence to the expanded stream is pinned
    /// by `class_totals_match_the_expanded_stream`.
    pub fn class_totals(&self, seed: u64) -> ClassTotals {
        let st = GenState::new(self, seed);
        let cdf = st.cdf;
        let (code_end, base_pc) = (st.code_end, self.base_pc);
        let random_data = st.seq_stride == 0;
        let mut rng = st.rng;
        let mut pc = st.pc;
        let (mut loads, mut stores, mut branches) = (0u64, 0u64, 0u64);
        for _ in 0..self.instr_count {
            if pc + 4 >= code_end {
                // Loop back-edge: an always-taken branch, no draws.
                branches += 1;
                pc = base_pc;
                continue;
            }
            let u: f64 = rng.random();
            // Totals only need the coarse kind; every non-memory,
            // non-branch class counts the same way.
            if u < cdf.t[0] {
                loads += 1;
                if random_data {
                    rng.skip(1);
                }
            } else if u < cdf.t[1] {
                stores += 1;
                if random_data {
                    rng.skip(1);
                }
            } else if u < cdf.t[2] {
                branches += 1;
                let predictable: bool = rng.random::<f64>() < self.branch_predictability;
                let taken = if predictable {
                    false
                } else {
                    rng.random::<bool>()
                };
                if taken {
                    let span = code_end - pc - 4;
                    let hop = 4 + (rng.random_range(0..4u64)) * 4;
                    pc += 4 + hop.min(span.saturating_sub(4) & !0x3);
                } else {
                    // The hop draw still happens; its value is unused.
                    rng.skip(1);
                    pc += 4;
                }
                continue;
            }
            pc += 4;
        }
        ClassTotals {
            instructions: self.instr_count,
            loads,
            stores,
            branches,
        }
    }

    /// A stable 64-bit identity for this spec.
    ///
    /// Folds every field (float fields by their bit patterns) through a
    /// SplitMix64-style mixer, so equal specs always agree and the value
    /// is reproducible across processes and platforms. Used by perf
    /// tooling to key per-spec derived state and label hot blocks.
    pub fn fingerprint(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            let mut z = (h ^ v).wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let (pattern_tag, pattern_stride) = match self.mem.pattern {
            AccessPattern::Sequential { stride } => (0, stride),
            AccessPattern::Random => (1, 0),
        };
        let mut h = 0x6f73_7072_6579_5f62; // "osprey_b"
        for v in [
            self.base_pc,
            self.instr_count,
            self.code_footprint,
            self.mix.load.to_bits(),
            self.mix.store.to_bits(),
            self.mix.branch.to_bits(),
            self.mix.int_mul.to_bits(),
            self.mix.int_div.to_bits(),
            self.mix.fp_add.to_bits(),
            self.mix.fp_mul.to_bits(),
            self.mix.fp_div.to_bits(),
            self.mem.base,
            self.mem.footprint,
            pattern_tag,
            pattern_stride,
            self.branch_predictability.to_bits(),
        ] {
            h = mix(h, v);
        }
        h
    }
}

/// Per-class instruction totals of one expanded block — the exact
/// quantities emulation mode accumulates.
///
/// Produced by [`BlockSpec::class_totals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassTotals {
    /// Total dynamic instructions (always the spec's `instr_count`).
    pub instructions: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Branches, including loop back-edges.
    pub branches: u64,
}

/// One raw generation decision: an instruction reduced to exactly what
/// the timing models consume, with no `Instruction` materialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Raw {
    /// A non-memory, non-branch instruction of the given class.
    Simple(InstrClass),
    /// A load (`store == false`) or store at `addr`.
    Mem {
        /// `true` for stores.
        store: bool,
        /// Effective data address.
        addr: u64,
    },
    /// A branch with a resolved direction and target.
    Branch {
        /// Resolved direction.
        taken: bool,
        /// Branch target (the next pc when taken).
        target: u64,
    },
}

/// Shared generation state: the spec plus derived constants, the RNG,
/// and the stream cursor. Both [`BlockGen`] and [`RunGen`] drive this
/// one decision procedure, so their RNG draw orders are identical by
/// construction.
#[derive(Debug, Clone)]
struct GenState {
    spec: BlockSpec,
    cdf: MixCdf,
    code_end: u64,
    /// `mem.footprint.max(8)` — the wrap modulus of the data walk.
    footprint: u64,
    /// Effective sequential stride (`stride.max(1)`); 0 for random.
    seq_stride: u64,
    rng: SmallRng,
    pc: u64,
    emitted: u64,
    seq_offset: u64,
}

impl GenState {
    fn new(spec: &BlockSpec, seed: u64) -> Self {
        Self {
            spec: *spec,
            cdf: MixCdf::new(&spec.mix),
            code_end: spec.base_pc + spec.code_footprint,
            footprint: spec.mem.footprint.max(8),
            seq_stride: match spec.mem.pattern {
                AccessPattern::Sequential { stride } => stride.max(1),
                AccessPattern::Random => 0,
            },
            rng: SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            pc: spec.base_pc,
            emitted: 0,
            seq_offset: 0,
        }
    }

    /// Instructions remaining to be emitted.
    fn remaining(&self) -> u64 {
        self.spec.instr_count - self.emitted
    }

    #[inline]
    fn next_data_addr(&mut self) -> u64 {
        if self.seq_stride > 0 {
            let addr = self.spec.mem.base + self.seq_offset;
            self.seq_offset += self.seq_stride;
            if self.seq_offset >= self.footprint {
                self.seq_offset %= self.footprint;
            }
            addr
        } else {
            self.spec.mem.base + (self.rng.random_range(0..self.footprint) & !0x3)
        }
    }

    /// The next raw decision, or `None` at the end of the stream.
    ///
    /// Draw-for-draw identical to the original `BlockGen::next`: one
    /// class draw per instruction; one address draw for random-pattern
    /// memory ops; predictability, optional coin, and an unconditional
    /// hop draw for branches; no draws for the loop back-edge.
    #[inline]
    fn next_raw(&mut self) -> Option<(u64, Raw)> {
        if self.emitted >= self.spec.instr_count {
            return None;
        }
        self.emitted += 1;

        let pc = self.pc;
        // At the end of the code region, loop back with an always-taken,
        // perfectly regular branch (a loop back-edge).
        if pc + 4 >= self.code_end {
            self.pc = self.spec.base_pc;
            return Some((
                pc,
                Raw::Branch {
                    taken: true,
                    target: self.spec.base_pc,
                },
            ));
        }

        let u: f64 = self.rng.random();
        let class = self.cdf.pick(u);
        let raw = match class {
            InstrClass::Load => Raw::Mem {
                store: false,
                addr: self.next_data_addr(),
            },
            InstrClass::Store => Raw::Mem {
                store: true,
                addr: self.next_data_addr(),
            },
            InstrClass::Branch => {
                let predictable: bool = self.rng.random::<f64>() < self.spec.branch_predictability;
                // Predictable branches are not taken (fall through, easy to
                // predict); unpredictable ones flip a coin and jump a short
                // distance forward within the code region.
                let taken = if predictable {
                    false
                } else {
                    self.rng.random::<bool>()
                };
                let span = self.code_end - pc - 4;
                let hop = 4 + (self.rng.random_range(0..4u64)) * 4;
                let target = pc + 4 + hop.min(span.saturating_sub(4) & !0x3);
                self.pc = if taken { target } else { pc + 4 };
                return Some((pc, Raw::Branch { taken, target }));
            }
            other => Raw::Simple(other),
        };
        self.pc = pc + 4;
        Some((pc, raw))
    }
}

/// Iterator over the instructions of a [`BlockSpec`].
///
/// Produced by [`BlockSpec::generate`].
#[derive(Debug, Clone)]
pub struct BlockGen {
    st: GenState,
}

impl BlockGen {
    /// Instructions remaining to be emitted.
    pub fn remaining(&self) -> u64 {
        self.st.remaining()
    }
}

impl Iterator for BlockGen {
    type Item = Instruction;

    #[inline]
    fn next(&mut self) -> Option<Instruction> {
        let (pc, raw) = self.st.next_raw()?;
        Some(match raw {
            Raw::Simple(class) => Instruction::simple(pc, class),
            Raw::Mem { store: false, addr } => Instruction::load(pc, addr),
            Raw::Mem { store: true, addr } => Instruction::store(pc, addr),
            Raw::Branch { taken, target } => Instruction::branch(pc, taken, target),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.remaining() as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BlockGen {}

/// A maximal batch of consecutive same-kind instructions from a
/// [`BlockSpec`] stream.
///
/// Runs are a lossless re-grouping of the instruction stream: expanding
/// every run in order reproduces exactly what [`BlockSpec::generate`]
/// yields. Timing cores consume runs directly, paying the per-run
/// bookkeeping once instead of once per instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrRun {
    /// `n` instructions of one non-memory, non-branch class at
    /// `pc, pc + 4, …, pc + 4 (n − 1)`.
    Simple {
        /// Address of the first instruction.
        pc: u64,
        /// Class shared by every instruction in the run.
        class: InstrClass,
        /// Number of instructions (≥ 1).
        n: u64,
    },
    /// `n` loads or stores at consecutive pcs whose data addresses walk
    /// `base, base + stride, …` without wrapping.
    Mem {
        /// Address of the first instruction.
        pc: u64,
        /// `true` for stores.
        store: bool,
        /// Data address of the first access.
        base: u64,
        /// Byte stride between consecutive accesses. 0 when the spec's
        /// pattern is random (such runs always have `n == 1`).
        stride: u64,
        /// Number of accesses (≥ 1).
        n: u64,
    },
    /// A single branch with a resolved direction and target.
    Branch {
        /// Branch address.
        pc: u64,
        /// Resolved direction.
        taken: bool,
        /// Branch target (the next pc when taken).
        target: u64,
    },
}

impl InstrRun {
    /// Number of dynamic instructions the run covers.
    pub fn len(&self) -> u64 {
        match *self {
            InstrRun::Simple { n, .. } | InstrRun::Mem { n, .. } => n,
            InstrRun::Branch { .. } => 1,
        }
    }

    /// `true` when the run covers no instructions (never produced by
    /// [`RunGen`]; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Run-batched view of a [`BlockSpec`] stream.
///
/// Produced by [`BlockSpec::runs`]. Groups the underlying decision
/// stream into maximal [`InstrRun`]s using one decision of lookahead;
/// the RNG draw order is identical to [`BlockGen`]'s because both drive
/// the same decision procedure.
#[derive(Debug, Clone)]
pub struct RunGen {
    st: GenState,
    pending: Option<(u64, Raw)>,
}

impl RunGen {
    /// Instructions (not runs) remaining, including a pending lookahead.
    pub fn remaining(&self) -> u64 {
        self.st.remaining() + u64::from(self.pending.is_some())
    }

    /// The next run, or `None` at the end of the stream.
    #[inline]
    pub fn next_run(&mut self) -> Option<InstrRun> {
        let (pc, first) = match self.pending.take() {
            Some(p) => p,
            None => self.st.next_raw()?,
        };
        match first {
            Raw::Branch { taken, target } => Some(InstrRun::Branch { pc, taken, target }),
            Raw::Simple(class) => {
                let mut n = 1;
                loop {
                    match self.st.next_raw() {
                        Some((p2, Raw::Simple(c2))) if c2 == class => {
                            debug_assert_eq!(p2, pc + 4 * n);
                            n += 1;
                        }
                        other => {
                            self.pending = other;
                            break;
                        }
                    }
                }
                Some(InstrRun::Simple { pc, class, n })
            }
            Raw::Mem { store, addr } => {
                let stride = self.st.seq_stride;
                let mut n = 1;
                if stride > 0 {
                    // Extend while the walk stays linear (no wrap) and the
                    // op kind is unchanged.
                    loop {
                        match self.st.next_raw() {
                            Some((
                                p2,
                                Raw::Mem {
                                    store: s2,
                                    addr: a2,
                                },
                            )) if s2 == store && a2 == addr + stride * n => {
                                debug_assert_eq!(p2, pc + 4 * n);
                                n += 1;
                            }
                            other => {
                                self.pending = other;
                                break;
                            }
                        }
                    }
                }
                Some(InstrRun::Mem {
                    pc,
                    store,
                    base: addr,
                    stride,
                    n,
                })
            }
        }
    }
}

impl Iterator for RunGen {
    type Item = InstrRun;

    #[inline]
    fn next(&mut self) -> Option<InstrRun> {
        self.next_run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BlockSpec {
        BlockSpec::new(0x40_0000, 5_000)
            .with_mix(InstrMix::balanced())
            .with_mem(MemPattern::random(0x800_0000, 32 * 1024))
    }

    #[test]
    fn emits_exactly_instr_count() {
        let count = spec().generate(1).count();
        assert_eq!(count, 5_000);
    }

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<_> = spec().generate(42).collect();
        let b: Vec<_> = spec().generate(42).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = spec().generate(1).collect();
        let b: Vec<_> = spec().generate(2).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn pcs_stay_in_code_region() {
        let s = spec();
        for instr in s.generate(7) {
            assert!(instr.pc >= s.base_pc);
            assert!(instr.pc < s.base_pc + s.code_footprint);
        }
    }

    #[test]
    fn data_addresses_stay_in_region() {
        let s = spec();
        for instr in s.generate(7) {
            if let Some(addr) = instr.mem_addr {
                assert!(addr >= s.mem.base);
                assert!(addr < s.mem.base + s.mem.footprint);
            }
        }
    }

    #[test]
    fn mix_fractions_are_respected() {
        let s = BlockSpec::new(0x1000, 200_000).with_mix(InstrMix::balanced());
        let instrs: Vec<_> = s.generate(3).collect();
        let loads = instrs
            .iter()
            .filter(|i| i.class == InstrClass::Load)
            .count();
        let frac = loads as f64 / instrs.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "load fraction {frac}");
    }

    #[test]
    fn sequential_pattern_walks_with_stride() {
        let s = BlockSpec::new(0x1000, 1000)
            .with_mix(InstrMix {
                load: 1.0,
                store: 0.0,
                branch: 0.0,
                int_mul: 0.0,
                int_div: 0.0,
                fp_add: 0.0,
                fp_mul: 0.0,
                fp_div: 0.0,
            })
            .with_mem(MemPattern::sequential(0x20_0000, 1024, 64))
            .with_code_footprint(1 << 20);
        let addrs: Vec<u64> = s.generate(5).filter_map(|i| i.mem_addr).take(16).collect();
        assert_eq!(addrs[0], 0x20_0000);
        assert_eq!(addrs[1], 0x20_0040);
        // Wraps at the 1 KiB footprint.
        assert_eq!(addrs[15], 0x20_0000 + (15 * 64));
    }

    #[test]
    fn loop_back_edges_keep_code_footprint_bounded() {
        let s = BlockSpec::new(0, 10_000).with_code_footprint(256);
        let mut distinct: std::collections::HashSet<u64> = Default::default();
        for i in s.generate(11) {
            distinct.insert(i.pc);
        }
        assert!(distinct.len() <= 64, "distinct pcs = {}", distinct.len());
    }

    #[test]
    fn presets_are_valid_mixes() {
        for mix in [
            InstrMix::balanced(),
            InstrMix::kernel_control(),
            InstrMix::memory_copy(),
            InstrMix::compute_fp(),
            InstrMix::compute_int(),
        ] {
            assert!(mix.is_valid());
            assert!(mix.alu_fraction() >= 0.0);
        }
    }

    #[test]
    fn size_hint_is_exact() {
        let mut gen = spec().generate(1);
        assert_eq!(gen.size_hint(), (5000, Some(5000)));
        gen.next();
        assert_eq!(gen.size_hint(), (4999, Some(4999)));
    }

    /// Expands a run back into the instructions it stands for.
    fn expand(run: InstrRun) -> Vec<Instruction> {
        match run {
            InstrRun::Simple { pc, class, n } => (0..n)
                .map(|k| Instruction::simple(pc + 4 * k, class))
                .collect(),
            InstrRun::Mem {
                pc,
                store,
                base,
                stride,
                n,
            } => (0..n)
                .map(|k| {
                    let (p, a) = (pc + 4 * k, base + stride * k);
                    if store {
                        Instruction::store(p, a)
                    } else {
                        Instruction::load(p, a)
                    }
                })
                .collect(),
            InstrRun::Branch { pc, taken, target } => {
                vec![Instruction::branch(pc, taken, target)]
            }
        }
    }

    /// Every mix preset × access pattern × several seeds: the run view
    /// expands to exactly the instruction stream, except that run
    /// batching drops the synthetic branch-target detail the timing
    /// models never read for non-branches (there is none — streams must
    /// be fully equal).
    #[test]
    fn runs_expand_to_the_exact_instruction_stream() {
        let mixes = [
            InstrMix::balanced(),
            InstrMix::kernel_control(),
            InstrMix::memory_copy(),
            InstrMix::compute_fp(),
            InstrMix::compute_int(),
        ];
        let mems = [
            MemPattern::sequential(0x800_0000, 768, 8),
            MemPattern::sequential(0x800_0000, 16 * 1024, 64),
            MemPattern::random(0x800_0000, 32 * 1024),
        ];
        for mix in mixes {
            for mem in mems {
                for seed in [0, 1, 7, 0xdead_beef] {
                    let s = BlockSpec::new(0x40_0000, 4_000)
                        .with_mix(mix)
                        .with_mem(mem)
                        .with_code_footprint(512);
                    let direct: Vec<_> = s.generate(seed).collect();
                    let via_runs: Vec<_> = s.runs(seed).flat_map(expand).collect();
                    assert_eq!(direct, via_runs, "mix {mix:?} mem {mem:?} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn runs_are_maximal_and_sized_consistently() {
        let s = spec();
        let mut gen = s.runs(9);
        let mut total = 0;
        let mut prev: Option<InstrRun> = None;
        assert_eq!(gen.remaining(), 5_000);
        while let Some(run) = gen.next_run() {
            assert!(!run.is_empty());
            total += run.len();
            // Two adjacent Simple runs of the same class would mean the
            // first was not maximal.
            if let (Some(InstrRun::Simple { class: c1, .. }), InstrRun::Simple { class: c2, .. }) =
                (prev, run)
            {
                assert_ne!(c1, c2, "adjacent same-class simple runs");
            }
            prev = Some(run);
        }
        assert_eq!(total, 5_000);
        assert_eq!(gen.remaining(), 0);
    }

    #[test]
    fn sequential_mem_runs_batch_within_line_accesses() {
        // A pure-load stride-8 walk must produce multi-access runs.
        let s = BlockSpec::new(0x1000, 1000)
            .with_mix(InstrMix {
                load: 1.0,
                store: 0.0,
                branch: 0.0,
                int_mul: 0.0,
                int_div: 0.0,
                fp_add: 0.0,
                fp_mul: 0.0,
                fp_div: 0.0,
            })
            .with_mem(MemPattern::sequential(0x20_0000, 1024, 8))
            .with_code_footprint(1 << 20);
        let longest = s.runs(5).map(|r| r.len()).max().unwrap();
        assert!(longest > 8, "longest mem run {longest}");
    }

    /// The bulk counting loop must agree with counting the expanded
    /// stream for every mix preset × access pattern × seed — including
    /// footprints small enough to exercise back-edges heavily.
    #[test]
    fn class_totals_match_the_expanded_stream() {
        let mixes = [
            InstrMix::balanced(),
            InstrMix::kernel_control(),
            InstrMix::memory_copy(),
            InstrMix::compute_fp(),
            InstrMix::compute_int(),
        ];
        let mems = [
            MemPattern::sequential(0x800_0000, 768, 8),
            MemPattern::random(0x800_0000, 32 * 1024),
        ];
        for mix in mixes {
            for mem in mems {
                for seed in [0, 1, 7, 0xdead_beef] {
                    let s = BlockSpec::new(0x40_0000, 4_000)
                        .with_mix(mix)
                        .with_mem(mem)
                        .with_code_footprint(512)
                        .with_branch_predictability(0.6);
                    let mut expected = ClassTotals::default();
                    for i in s.generate(seed) {
                        expected.instructions += 1;
                        match i.class {
                            InstrClass::Load => expected.loads += 1,
                            InstrClass::Store => expected.stores += 1,
                            InstrClass::Branch => expected.branches += 1,
                            _ => {}
                        }
                    }
                    let got = s.class_totals(seed);
                    assert_eq!(got, expected, "mix {mix:?} mem {mem:?} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let s = spec();
        assert_eq!(s.fingerprint(), s.fingerprint());
        assert_eq!(s.fingerprint(), spec().fingerprint());
        let variants = [
            BlockSpec::new(0x40_0001, 5_000),
            spec().with_code_footprint(128),
            spec().with_branch_predictability(0.5),
            spec().with_mix(InstrMix::memory_copy()),
            spec().with_mem(MemPattern::sequential(0x800_0000, 32 * 1024, 64)),
        ];
        for v in variants {
            assert_ne!(s.fingerprint(), v.fingerprint(), "{v:?}");
        }
    }
}

//! Deterministic synthetic instruction-block generation.
//!
//! Workloads and OS service handlers describe code regions as
//! [`BlockSpec`]s: an instruction budget, an instruction mix, a code
//! footprint (which determines instruction-cache behavior), a data-access
//! pattern (which determines data-cache behavior), and a branch
//! predictability. [`BlockSpec::generate`] expands a spec into a concrete
//! instruction stream, fully determined by the seed — the property that
//! lets Osprey's emulation mode replay the exact functional path that
//! detailed mode would have executed, as the paper's signature profiling
//! requires.

use osprey_stats::rng::SmallRng;

use crate::instr::{InstrClass, Instruction};

/// Fractions of each non-ALU instruction class in a block; the remainder
/// is [`InstrClass::IntAlu`].
///
/// # Examples
///
/// ```
/// use osprey_isa::InstrMix;
///
/// let mix = InstrMix::balanced();
/// assert!(mix.alu_fraction() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InstrMix {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of branches.
    pub branch: f64,
    /// Fraction of integer multiplies.
    pub int_mul: f64,
    /// Fraction of integer divides.
    pub int_div: f64,
    /// Fraction of floating-point adds.
    pub fp_add: f64,
    /// Fraction of floating-point multiplies.
    pub fp_mul: f64,
    /// Fraction of floating-point divides.
    pub fp_div: f64,
}

impl InstrMix {
    /// A typical integer-code mix (~25 % loads, 10 % stores, 15 % branches).
    pub fn balanced() -> Self {
        Self {
            load: 0.25,
            store: 0.10,
            branch: 0.15,
            int_mul: 0.01,
            int_div: 0.002,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
        }
    }

    /// Kernel control-path mix: branch- and load-heavy, pointer chasing
    /// through kernel data structures.
    pub fn kernel_control() -> Self {
        Self {
            load: 0.32,
            store: 0.12,
            branch: 0.22,
            int_mul: 0.005,
            int_div: 0.001,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
        }
    }

    /// Bulk data movement (e.g. `copy_to_user`, packet copies): dominated
    /// by loads and stores with few branches.
    pub fn memory_copy() -> Self {
        Self {
            load: 0.42,
            store: 0.38,
            branch: 0.06,
            int_mul: 0.0,
            int_div: 0.0,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
        }
    }

    /// Floating-point compute kernel (SPEC fp style).
    pub fn compute_fp() -> Self {
        Self {
            load: 0.22,
            store: 0.08,
            branch: 0.08,
            int_mul: 0.01,
            int_div: 0.0,
            fp_add: 0.22,
            fp_mul: 0.18,
            fp_div: 0.01,
        }
    }

    /// Integer compute kernel (SPEC int style).
    pub fn compute_int() -> Self {
        Self {
            load: 0.24,
            store: 0.10,
            branch: 0.18,
            int_mul: 0.03,
            int_div: 0.004,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
        }
    }

    /// Fraction left over for plain ALU operations.
    pub fn alu_fraction(&self) -> f64 {
        1.0 - (self.load
            + self.store
            + self.branch
            + self.int_mul
            + self.int_div
            + self.fp_add
            + self.fp_mul
            + self.fp_div)
    }

    /// `true` when the fractions are all non-negative and sum to at most 1.
    pub fn is_valid(&self) -> bool {
        let parts = [
            self.load,
            self.store,
            self.branch,
            self.int_mul,
            self.int_div,
            self.fp_add,
            self.fp_mul,
            self.fp_div,
        ];
        parts.iter().all(|&p| (0.0..=1.0).contains(&p)) && self.alu_fraction() >= -1e-9
    }

    /// Picks a class from the mix using a uniform sample in `[0, 1)`.
    fn pick(&self, u: f64) -> InstrClass {
        let mut acc = self.load;
        if u < acc {
            return InstrClass::Load;
        }
        acc += self.store;
        if u < acc {
            return InstrClass::Store;
        }
        acc += self.branch;
        if u < acc {
            return InstrClass::Branch;
        }
        acc += self.int_mul;
        if u < acc {
            return InstrClass::IntMul;
        }
        acc += self.int_div;
        if u < acc {
            return InstrClass::IntDiv;
        }
        acc += self.fp_add;
        if u < acc {
            return InstrClass::FpAdd;
        }
        acc += self.fp_mul;
        if u < acc {
            return InstrClass::FpMul;
        }
        acc += self.fp_div;
        if u < acc {
            return InstrClass::FpDiv;
        }
        InstrClass::IntAlu
    }
}

/// Data-access pattern over a memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AccessPattern {
    /// Walk the region with a fixed stride, wrapping at the footprint.
    Sequential {
        /// Stride in bytes between consecutive accesses.
        stride: u64,
    },
    /// Uniformly random addresses within the footprint.
    Random,
}

/// A data memory region plus the pattern used to access it.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemPattern {
    /// Base address of the region.
    pub base: u64,
    /// Region size in bytes.
    pub footprint: u64,
    /// How addresses are drawn from the region.
    pub pattern: AccessPattern,
}

impl MemPattern {
    /// Sequential walk with the given stride.
    pub fn sequential(base: u64, footprint: u64, stride: u64) -> Self {
        Self {
            base,
            footprint,
            pattern: AccessPattern::Sequential { stride },
        }
    }

    /// Uniformly random accesses over the region.
    pub fn random(base: u64, footprint: u64) -> Self {
        Self {
            base,
            footprint,
            pattern: AccessPattern::Random,
        }
    }
}

/// Specification of a synthetic code block.
///
/// Construct with [`BlockSpec::new`] and customize with the `with_`
/// builder methods; expand into instructions with [`BlockSpec::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockSpec {
    /// First instruction address of the block's code region.
    pub base_pc: u64,
    /// Number of dynamic instructions to emit.
    pub instr_count: u64,
    /// Bytes of distinct code the block loops through (static footprint).
    pub code_footprint: u64,
    /// Instruction mix.
    pub mix: InstrMix,
    /// Data access behavior.
    pub mem: MemPattern,
    /// Fraction of branches whose direction repeats a fixed pattern (and
    /// is therefore predictable by the branch predictor).
    pub branch_predictability: f64,
}

impl BlockSpec {
    /// Creates a spec with `instr_count` instructions at `base_pc`, a code
    /// footprint of 4 KiB (or smaller if the block is shorter), a balanced
    /// mix, and a sequential 64-byte-stride walk over a 16 KiB region
    /// placed right after the code.
    pub fn new(base_pc: u64, instr_count: u64) -> Self {
        let code_footprint = (instr_count * 4).clamp(64, 4096);
        Self {
            base_pc,
            instr_count,
            code_footprint,
            mix: InstrMix::balanced(),
            mem: MemPattern::sequential(base_pc + 0x10_0000, 16 * 1024, 64),
            branch_predictability: 0.9,
        }
    }

    /// Sets the instruction mix.
    pub fn with_mix(mut self, mix: InstrMix) -> Self {
        debug_assert!(mix.is_valid(), "instruction mix fractions exceed 1.0");
        self.mix = mix;
        self
    }

    /// Sets the data access pattern.
    pub fn with_mem(mut self, mem: MemPattern) -> Self {
        self.mem = mem;
        self
    }

    /// Sets the static code footprint in bytes.
    pub fn with_code_footprint(mut self, bytes: u64) -> Self {
        self.code_footprint = bytes.max(64);
        self
    }

    /// Sets the fraction of predictable branches.
    pub fn with_branch_predictability(mut self, p: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&p));
        self.branch_predictability = p;
        self
    }

    /// Expands the spec into a deterministic instruction stream.
    ///
    /// The same `(spec, seed)` pair always yields the identical stream.
    pub fn generate(&self, seed: u64) -> BlockGen {
        BlockGen {
            spec: *self,
            rng: SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            pc: self.base_pc,
            emitted: 0,
            seq_offset: 0,
        }
    }
}

/// Iterator over the instructions of a [`BlockSpec`].
///
/// Produced by [`BlockSpec::generate`].
#[derive(Debug, Clone)]
pub struct BlockGen {
    spec: BlockSpec,
    rng: SmallRng,
    pc: u64,
    emitted: u64,
    seq_offset: u64,
}

impl BlockGen {
    /// Instructions remaining to be emitted.
    pub fn remaining(&self) -> u64 {
        self.spec.instr_count - self.emitted
    }

    fn next_data_addr(&mut self) -> u64 {
        let m = &self.spec.mem;
        let footprint = m.footprint.max(8);
        match m.pattern {
            AccessPattern::Sequential { stride } => {
                let addr = m.base + self.seq_offset;
                self.seq_offset = (self.seq_offset + stride.max(1)) % footprint;
                addr
            }
            AccessPattern::Random => m.base + (self.rng.random_range(0..footprint) & !0x3),
        }
    }
}

impl Iterator for BlockGen {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        if self.emitted >= self.spec.instr_count {
            return None;
        }
        self.emitted += 1;

        let code_end = self.spec.base_pc + self.spec.code_footprint;
        // At the end of the code region, loop back with an always-taken,
        // perfectly regular branch (a loop back-edge).
        if self.pc + 4 >= code_end {
            let instr = Instruction::branch(self.pc, true, self.spec.base_pc);
            self.pc = self.spec.base_pc;
            return Some(instr);
        }

        let u: f64 = self.rng.random();
        let class = self.spec.mix.pick(u);
        let pc = self.pc;
        let instr = match class {
            InstrClass::Load => Instruction::load(pc, self.next_data_addr()),
            InstrClass::Store => Instruction::store(pc, self.next_data_addr()),
            InstrClass::Branch => {
                let predictable: bool = self.rng.random::<f64>() < self.spec.branch_predictability;
                // Predictable branches are not taken (fall through, easy to
                // predict); unpredictable ones flip a coin and jump a short
                // distance forward within the code region.
                let taken = if predictable {
                    false
                } else {
                    self.rng.random::<bool>()
                };
                let span = code_end - pc - 4;
                let hop = 4 + (self.rng.random_range(0..4u64)) * 4;
                let target = pc + 4 + hop.min(span.saturating_sub(4) & !0x3);
                Instruction::branch(pc, taken, target)
            }
            other => Instruction::simple(pc, other),
        };
        self.pc = instr.next_pc();
        Some(instr)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.remaining() as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BlockGen {}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BlockSpec {
        BlockSpec::new(0x40_0000, 5_000)
            .with_mix(InstrMix::balanced())
            .with_mem(MemPattern::random(0x800_0000, 32 * 1024))
    }

    #[test]
    fn emits_exactly_instr_count() {
        let count = spec().generate(1).count();
        assert_eq!(count, 5_000);
    }

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<_> = spec().generate(42).collect();
        let b: Vec<_> = spec().generate(42).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = spec().generate(1).collect();
        let b: Vec<_> = spec().generate(2).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn pcs_stay_in_code_region() {
        let s = spec();
        for instr in s.generate(7) {
            assert!(instr.pc >= s.base_pc);
            assert!(instr.pc < s.base_pc + s.code_footprint);
        }
    }

    #[test]
    fn data_addresses_stay_in_region() {
        let s = spec();
        for instr in s.generate(7) {
            if let Some(addr) = instr.mem_addr {
                assert!(addr >= s.mem.base);
                assert!(addr < s.mem.base + s.mem.footprint);
            }
        }
    }

    #[test]
    fn mix_fractions_are_respected() {
        let s = BlockSpec::new(0x1000, 200_000).with_mix(InstrMix::balanced());
        let instrs: Vec<_> = s.generate(3).collect();
        let loads = instrs
            .iter()
            .filter(|i| i.class == InstrClass::Load)
            .count();
        let frac = loads as f64 / instrs.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "load fraction {frac}");
    }

    #[test]
    fn sequential_pattern_walks_with_stride() {
        let s = BlockSpec::new(0x1000, 1000)
            .with_mix(InstrMix {
                load: 1.0,
                store: 0.0,
                branch: 0.0,
                int_mul: 0.0,
                int_div: 0.0,
                fp_add: 0.0,
                fp_mul: 0.0,
                fp_div: 0.0,
            })
            .with_mem(MemPattern::sequential(0x20_0000, 1024, 64))
            .with_code_footprint(1 << 20);
        let addrs: Vec<u64> = s.generate(5).filter_map(|i| i.mem_addr).take(16).collect();
        assert_eq!(addrs[0], 0x20_0000);
        assert_eq!(addrs[1], 0x20_0040);
        // Wraps at the 1 KiB footprint.
        assert_eq!(addrs[15], 0x20_0000 + (15 * 64));
    }

    #[test]
    fn loop_back_edges_keep_code_footprint_bounded() {
        let s = BlockSpec::new(0, 10_000).with_code_footprint(256);
        let mut distinct: std::collections::HashSet<u64> = Default::default();
        for i in s.generate(11) {
            distinct.insert(i.pc);
        }
        assert!(distinct.len() <= 64, "distinct pcs = {}", distinct.len());
    }

    #[test]
    fn presets_are_valid_mixes() {
        for mix in [
            InstrMix::balanced(),
            InstrMix::kernel_control(),
            InstrMix::memory_copy(),
            InstrMix::compute_fp(),
            InstrMix::compute_int(),
        ] {
            assert!(mix.is_valid());
            assert!(mix.alu_fraction() >= 0.0);
        }
    }

    #[test]
    fn size_hint_is_exact() {
        let mut gen = spec().generate(1);
        assert_eq!(gen.size_hint(), (5000, Some(5000)));
        gen.next();
        assert_eq!(gen.size_hint(), (4999, Some(4999)));
    }
}

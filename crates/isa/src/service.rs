//! Identifiers for OS services (system calls and interrupt handlers).
//!
//! The paper keys its Performance Lookup Tables by the *type* of OS
//! service: the event that initially caused the user→kernel transition
//! (§3). Synchronous services are system calls and faults triggered by the
//! application; asynchronous services are external interrupts. The set
//! below covers every service named in the paper's Fig. 3 plus the
//! services the synthetic Unix-tool and network workloads need.

/// The type of an OS service, used to index Performance Lookup Tables.
///
/// # Examples
///
/// ```
/// use osprey_isa::ServiceId;
///
/// assert!(ServiceId::SysRead.is_synchronous());
/// assert!(ServiceId::IntTimer.is_interrupt());
/// assert_eq!(ServiceId::IntTimer.name(), "Int_239");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum ServiceId {
    /// `sys_read` — read from a file descriptor.
    SysRead,
    /// `sys_write` — write to a file descriptor.
    SysWrite,
    /// `sys_writev` — gathered write (used by the web server for responses).
    SysWritev,
    /// `sys_open` — open a path.
    SysOpen,
    /// `sys_close` — close a descriptor.
    SysClose,
    /// `sys_poll` — wait for descriptor readiness.
    SysPoll,
    /// `sys_socketcall` — multiplexed socket operations (x86 Linux style).
    SysSocketcall,
    /// `sys_stat64` — stat by path.
    SysStat64,
    /// `sys_lstat64` — stat without following symlinks (used by `du`).
    SysLstat64,
    /// `sys_fstat64` — stat an open descriptor.
    SysFstat64,
    /// `sys_fcntl64` — descriptor control.
    SysFcntl64,
    /// `sys_gettimeofday` — clock read.
    SysGettimeofday,
    /// `sys_ipc` — multiplexed System V IPC.
    SysIpc,
    /// `sys_getdents64` — read directory entries (used by `du`/`find`).
    SysGetdents64,
    /// `sys_execve` — program execution (`find -exec od`).
    SysExecve,
    /// `sys_brk` — heap extension.
    SysBrk,
    /// `sys_mmap` — memory mapping.
    SysMmap,
    /// Page-fault exception raised by an application access.
    PageFault,
    /// Network-interface interrupt (the paper's `Int_49`).
    IntNic,
    /// Block-device / disk-completion interrupt (the paper's `Int_121`).
    IntDisk,
    /// Local APIC timer interrupt (the paper's `Int_239`).
    IntTimer,
}

impl ServiceId {
    /// Every defined service, in a stable order.
    pub const ALL: [ServiceId; 21] = [
        ServiceId::SysRead,
        ServiceId::SysWrite,
        ServiceId::SysWritev,
        ServiceId::SysOpen,
        ServiceId::SysClose,
        ServiceId::SysPoll,
        ServiceId::SysSocketcall,
        ServiceId::SysStat64,
        ServiceId::SysLstat64,
        ServiceId::SysFstat64,
        ServiceId::SysFcntl64,
        ServiceId::SysGettimeofday,
        ServiceId::SysIpc,
        ServiceId::SysGetdents64,
        ServiceId::SysExecve,
        ServiceId::SysBrk,
        ServiceId::SysMmap,
        ServiceId::PageFault,
        ServiceId::IntNic,
        ServiceId::IntDisk,
        ServiceId::IntTimer,
    ];

    /// Human-readable name matching the paper's labels.
    pub fn name(self) -> &'static str {
        match self {
            ServiceId::SysRead => "sys_read",
            ServiceId::SysWrite => "sys_write",
            ServiceId::SysWritev => "sys_writev",
            ServiceId::SysOpen => "sys_open",
            ServiceId::SysClose => "sys_close",
            ServiceId::SysPoll => "sys_poll",
            ServiceId::SysSocketcall => "sys_socketcall",
            ServiceId::SysStat64 => "sys_stat64",
            ServiceId::SysLstat64 => "sys_lstat64",
            ServiceId::SysFstat64 => "sys_fstat64",
            ServiceId::SysFcntl64 => "sys_fcntl64",
            ServiceId::SysGettimeofday => "sys_gettimeofday",
            ServiceId::SysIpc => "sys_ipc",
            ServiceId::SysGetdents64 => "sys_getdents64",
            ServiceId::SysExecve => "sys_execve",
            ServiceId::SysBrk => "sys_brk",
            ServiceId::SysMmap => "sys_mmap",
            ServiceId::PageFault => "page_fault",
            ServiceId::IntNic => "Int_49",
            ServiceId::IntDisk => "Int_121",
            ServiceId::IntTimer => "Int_239",
        }
    }

    /// `true` for services invoked by external events (interrupts).
    pub fn is_interrupt(self) -> bool {
        matches!(
            self,
            ServiceId::IntNic | ServiceId::IntDisk | ServiceId::IntTimer
        )
    }

    /// `true` for services directly or indirectly invoked by the
    /// application (system calls and faults).
    pub fn is_synchronous(self) -> bool {
        !self.is_interrupt()
    }

    /// A stable small integer for dense per-service arrays.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&s| s == self)
            .expect("every ServiceId is in ALL")
    }
}

impl std::fmt::Display for ServiceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_contains_unique_entries() {
        let set: HashSet<_> = ServiceId::ALL.iter().collect();
        assert_eq!(set.len(), ServiceId::ALL.len());
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let names: HashSet<_> = ServiceId::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), ServiceId::ALL.len());
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn interrupts_match_paper_vector_numbers() {
        assert_eq!(ServiceId::IntNic.name(), "Int_49");
        assert_eq!(ServiceId::IntDisk.name(), "Int_121");
        assert_eq!(ServiceId::IntTimer.name(), "Int_239");
        for s in ServiceId::ALL {
            assert_eq!(s.is_interrupt(), s.name().starts_with("Int_"));
        }
    }

    #[test]
    fn sync_and_interrupt_partition_the_space() {
        for s in ServiceId::ALL {
            assert_ne!(s.is_interrupt(), s.is_synchronous());
        }
    }

    #[test]
    fn index_round_trips() {
        for (i, s) in ServiceId::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(ServiceId::SysRead.to_string(), "sys_read");
    }
}

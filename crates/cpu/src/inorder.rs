//! Blocking in-order single-issue timing model.
//!
//! Corresponds to Simics' `inorder` modes in the paper's Table 1: every
//! instruction executes to completion before the next starts, so cache
//! misses and long-latency operations stall the whole pipeline. Much
//! simpler (and faster to simulate) than [`crate::OooCore`], and therefore
//! the measuring stick for mode-switch speedup estimation.

use osprey_isa::{InstrClass, Instruction, Privilege};
use osprey_mem::Hierarchy;

use crate::branch::GsharePredictor;
use crate::config::CpuConfig;
use crate::counters::CpuCounters;
use crate::fu;
use crate::Core;

/// The in-order core (see module docs).
#[derive(Debug, Clone)]
pub struct InOrderCore {
    cfg: CpuConfig,
    bp: GsharePredictor,
    counters: CpuCounters,
    cycles: u64,
    last_fetch_line: u64,
}

impl InOrderCore {
    /// Creates a core with cold pipeline state.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: CpuConfig) -> Self {
        assert!(cfg.is_valid(), "invalid cpu config: {cfg:?}");
        Self {
            cfg,
            bp: GsharePredictor::new(12),
            counters: CpuCounters::default(),
            cycles: 0,
            last_fetch_line: u64::MAX,
        }
    }
}

/// Charges the fetch stalls of `n` consecutive instructions starting at
/// `pc`, walking whole I-lines at a time (each line crossing is checked
/// once instead of once per instruction).
#[inline]
fn advance_fetch(
    cycles: &mut u64,
    last_line: &mut u64,
    mem: &mut Hierarchy,
    pc: u64,
    n: u64,
    owner: Privilege,
) {
    let mut k = 0u64;
    let mut p = pc;
    while k < n {
        let line = p >> 6;
        if line != *last_line {
            *last_line = line;
            *cycles += mem.fetch(p, owner) - 1;
        }
        // Instructions from `p` to the end of its 64 B line.
        let step = ((67 - (p & 63)) / 4).min(n - k);
        k += step;
        p += 4 * step;
    }
}

impl Core for InOrderCore {
    fn step_block(
        &mut self,
        spec: &osprey_isa::BlockSpec,
        seed: u64,
        mem: &mut Hierarchy,
        owner: Privilege,
    ) {
        // Fused hot path over the run-batched generator: identical
        // cycles, counters, and cache traffic to stepping every
        // instruction through `self.step`, with per-run bookkeeping.
        let use_caches = self.cfg.use_caches;
        let nocache_lat = self.cfg.nocache_mem_latency;
        let penalty = self.cfg.mispredict_penalty;
        let branch_lat = fu::latency(InstrClass::Branch);
        let mut cycles = self.cycles;
        let mut last_line = self.last_fetch_line;
        let mut c = self.counters;

        let mut runs = spec.runs(seed);
        while let Some(run) = runs.next_run() {
            match run {
                osprey_isa::InstrRun::Simple { pc, class, n } => {
                    c.instructions += n;
                    cycles += n * fu::latency(class);
                    if use_caches {
                        advance_fetch(&mut cycles, &mut last_line, mem, pc, n, owner);
                    } else {
                        last_line = (pc + 4 * (n - 1)) >> 6;
                    }
                }
                osprey_isa::InstrRun::Mem {
                    pc,
                    store,
                    base,
                    stride,
                    n,
                } => {
                    c.instructions += n;
                    if store {
                        c.stores += n;
                    } else {
                        c.loads += n;
                    }
                    if !use_caches {
                        cycles += if store { n } else { n * nocache_lat };
                        last_line = (pc + 4 * (n - 1)) >> 6;
                    } else {
                        // Per I-line segment: the crossing check once, then
                        // the segment's data accesses batched (the relative
                        // order of every L2-touching event is preserved —
                        // the batched within-line repeats are L1D-only).
                        let mut k = 0u64;
                        while k < n {
                            let p = pc + 4 * k;
                            let line = p >> 6;
                            if line != last_line {
                                last_line = line;
                                cycles += mem.fetch(p, owner) - 1;
                            }
                            let m = ((67 - (p & 63)) / 4).min(n - k);
                            let lat_sum =
                                mem.data_access_run(base + stride * k, stride, m, store, owner);
                            cycles += if store { m } else { lat_sum };
                            k += m;
                        }
                    }
                }
                osprey_isa::InstrRun::Branch { pc, taken, .. } => {
                    let line = pc >> 6;
                    if line != last_line {
                        last_line = line;
                        if use_caches {
                            cycles += mem.fetch(pc, owner) - 1;
                        }
                    }
                    cycles += branch_lat;
                    c.branches += 1;
                    c.instructions += 1;
                    let predicted = self.bp.predict_and_update(pc, taken);
                    if predicted != taken {
                        c.mispredicts += 1;
                        cycles += penalty;
                    }
                }
            }
        }

        self.cycles = cycles;
        self.last_fetch_line = last_line;
        self.counters = c;
    }

    fn step(&mut self, instr: &Instruction, mem: &mut Hierarchy, owner: Privilege) {
        // Fetch: stall on new-line misses.
        let line = instr.pc >> 6;
        if line != self.last_fetch_line {
            self.last_fetch_line = line;
            if self.cfg.use_caches {
                let lat = mem.fetch(instr.pc, owner);
                self.cycles += lat - 1;
            }
        }

        // Execute to completion.
        let lat = match instr.class {
            InstrClass::Load => {
                self.counters.loads += 1;
                let addr = instr.mem_addr.expect("load carries an address");
                if self.cfg.use_caches {
                    mem.data_access(addr, false, owner)
                } else {
                    self.cfg.nocache_mem_latency
                }
            }
            InstrClass::Store => {
                self.counters.stores += 1;
                let addr = instr.mem_addr.expect("store carries an address");
                if self.cfg.use_caches {
                    mem.data_access(addr, true, owner);
                }
                1
            }
            class => fu::latency(class),
        };
        self.cycles += lat;

        if instr.class == InstrClass::Branch {
            self.counters.branches += 1;
            let info = instr.branch.expect("branch carries an outcome");
            let predicted = self.bp.predict_and_update(instr.pc, info.taken);
            if predicted != info.taken {
                self.counters.mispredicts += 1;
                self.cycles += self.cfg.mispredict_penalty;
            }
        }
        self.counters.instructions += 1;
    }

    fn cycles(&self) -> u64 {
        self.cycles
    }

    fn counters(&self) -> &CpuCounters {
        &self.counters
    }

    fn reset_pipeline(&mut self) {
        self.bp.reset();
        self.last_fetch_line = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osprey_isa::BlockSpec;
    use osprey_mem::HierarchyConfig;

    #[test]
    fn ipc_never_exceeds_one() {
        let mut core = InOrderCore::new(CpuConfig::pentium4());
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        for instr in BlockSpec::new(0x1000, 50_000).generate(1) {
            core.step(&instr, &mut mem, Privilege::User);
        }
        let ipc = core.counters().instructions as f64 / core.cycles() as f64;
        assert!(ipc <= 1.0, "in-order single-issue ipc = {ipc}");
        assert!(ipc > 0.05);
    }

    #[test]
    fn slower_than_out_of_order() {
        use crate::OooCore;
        let spec = BlockSpec::new(0x1000, 50_000);
        let mut io = InOrderCore::new(CpuConfig::pentium4());
        let mut ooo = OooCore::new(CpuConfig::pentium4());
        let mut mem_a = Hierarchy::new(HierarchyConfig::default());
        let mut mem_b = Hierarchy::new(HierarchyConfig::default());
        for instr in spec.generate(2) {
            io.step(&instr, &mut mem_a, Privilege::User);
            ooo.step(&instr, &mut mem_b, Privilege::User);
        }
        assert!(
            io.cycles() > ooo.cycles(),
            "in-order {} should exceed ooo {}",
            io.cycles(),
            ooo.cycles()
        );
    }

    #[test]
    fn nocache_mode_skips_hierarchy() {
        let mut core = InOrderCore::new(CpuConfig {
            use_caches: false,
            ..CpuConfig::pentium4()
        });
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        for instr in BlockSpec::new(0x1000, 1_000).generate(3) {
            core.step(&instr, &mut mem, Privilege::User);
        }
        assert_eq!(mem.snapshot().l1d.accesses(), 0);
        assert!(core.cycles() >= 1_000);
    }

    #[test]
    fn reset_pipeline_preserves_counters_and_cycles() {
        let mut core = InOrderCore::new(CpuConfig::pentium4());
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        for instr in BlockSpec::new(0x1000, 1_000).generate(4) {
            core.step(&instr, &mut mem, Privilege::User);
        }
        let cycles = core.cycles();
        let instrs = core.counters().instructions;
        core.reset_pipeline();
        assert_eq!(core.cycles(), cycles);
        assert_eq!(core.counters().instructions, instrs);
    }
}

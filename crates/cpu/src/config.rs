//! Processor configuration.

/// Microarchitectural parameters shared by the timing cores.
///
/// # Examples
///
/// ```
/// use osprey_cpu::CpuConfig;
///
/// let cfg = CpuConfig::pentium4();
/// assert_eq!(cfg.rob_size, 126);
/// assert_eq!(cfg.retire_width, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions issued to execution per cycle.
    pub issue_width: u32,
    /// Instructions retired per cycle.
    pub retire_width: u32,
    /// Maximum in-flight instructions (reorder-buffer capacity).
    pub rob_size: u32,
    /// Cycles lost on a branch misprediction.
    pub mispredict_penalty: u64,
    /// When `false`, the core does not consult the cache hierarchy and
    /// charges [`CpuConfig::nocache_mem_latency`] for every memory
    /// operation — the paper's `*-nocache` Simics modes.
    pub use_caches: bool,
    /// Flat memory-operation latency in no-cache mode.
    pub nocache_mem_latency: u64,
}

impl CpuConfig {
    /// The paper's evaluation core (§5.1): 4 GHz Pentium-4-like, 4-wide
    /// out-of-order issue, retire up to 3 x86 instructions per cycle,
    /// 126 in-flight instructions, 10-cycle misprediction penalty.
    pub fn pentium4() -> Self {
        Self {
            fetch_width: 4,
            issue_width: 4,
            retire_width: 3,
            rob_size: 126,
            mispredict_penalty: 10,
            use_caches: true,
            nocache_mem_latency: 2,
        }
    }

    /// The same core without caches (`ooo-nocache` in Table 1).
    pub fn pentium4_nocache() -> Self {
        Self {
            use_caches: false,
            ..Self::pentium4()
        }
    }

    /// Validates widths and capacities.
    ///
    /// The ROB must also cover the out-of-order core's maximum
    /// dependence distance (6 instructions), so ring indices computed
    /// from it wrap at most once.
    pub fn is_valid(&self) -> bool {
        self.fetch_width > 0
            && self.issue_width > 0
            && self.retire_width > 0
            && self.rob_size >= self.issue_width
            && self.rob_size > 6
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::pentium4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        assert!(CpuConfig::pentium4().is_valid());
        assert!(CpuConfig::pentium4_nocache().is_valid());
    }

    #[test]
    fn nocache_variant_only_flips_cache_flag() {
        let a = CpuConfig::pentium4();
        let b = CpuConfig::pentium4_nocache();
        assert!(a.use_caches && !b.use_caches);
        assert_eq!(a.rob_size, b.rob_size);
    }

    #[test]
    fn degenerate_configs_rejected() {
        let mut c = CpuConfig::pentium4();
        c.fetch_width = 0;
        assert!(!c.is_valid());
        let mut c = CpuConfig::pentium4();
        c.rob_size = 2;
        assert!(!c.is_valid());
        let mut c = CpuConfig::pentium4();
        c.rob_size = 6; // cannot cover the maximum dependence distance
        assert!(!c.is_valid());
    }
}

//! Processor timing models for the Osprey full-system simulator.
//!
//! Three execution models mirror the Simics configurations the paper
//! measures in its Table 1:
//!
//! * [`OooCore`] — a cycle-level out-of-order superscalar model with the
//!   paper's Pentium-4-like parameters (4-wide fetch/issue, 126 in-flight
//!   instructions, retire up to 3 per cycle, 10-cycle branch-misprediction
//!   penalty), used for *detailed* simulation (`ooo-cache` /
//!   `ooo-nocache`).
//! * [`InOrderCore`] — a blocking single-issue model (`inorder-cache` /
//!   `inorder-nocache`).
//! * [`EmulationCore`] — the functional fast-forward mode: instructions
//!   are only counted, no timing or cache state is touched. This is the
//!   mode the accelerated simulation runs OS services in during
//!   prediction periods.
//!
//! All timing cores implement the [`Core`] trait so the simulator driver
//! can switch between them.
//!
//! # Examples
//!
//! ```
//! use osprey_cpu::{Core, CpuConfig, OooCore};
//! use osprey_isa::{BlockSpec, Privilege};
//! use osprey_mem::{Hierarchy, HierarchyConfig};
//!
//! let mut core = OooCore::new(CpuConfig::pentium4());
//! let mut mem = Hierarchy::new(HierarchyConfig::default());
//! for instr in BlockSpec::new(0x40_0000, 10_000).generate(1) {
//!     core.step(&instr, &mut mem, Privilege::User);
//! }
//! let ipc = core.counters().instructions as f64 / core.cycles() as f64;
//! assert!(ipc > 0.1 && ipc < 3.0, "ipc = {ipc}");
//! ```

pub mod branch;
pub mod config;
pub mod counters;
pub mod emulation;
pub mod fu;
pub mod inorder;
pub mod ooo;

pub use branch::GsharePredictor;
pub use config::CpuConfig;
pub use counters::CpuCounters;
pub use emulation::EmulationCore;
pub use inorder::InOrderCore;
pub use ooo::OooCore;

use osprey_isa::{BlockSpec, Instruction, Privilege};
use osprey_mem::Hierarchy;

/// A processor timing model driven one instruction — or one whole
/// block — at a time.
///
/// The simulator feeds dynamic instructions through [`Core::step`], or
/// whole [`BlockSpec`]s through [`Core::step_block`]; the core advances
/// its internal cycle clock and updates the memory hierarchy.
/// Per-interval cycle counts are obtained by differencing
/// [`Core::cycles`] at interval boundaries.
pub trait Core {
    /// Executes one instruction.
    fn step(&mut self, instr: &Instruction, mem: &mut Hierarchy, owner: Privilege);

    /// Executes every instruction of `spec`, generated with `seed`.
    ///
    /// Semantically identical to stepping each instruction of
    /// `spec.generate(seed)` through [`Core::step`], but costs one
    /// virtual call per *block* instead of one per *instruction*: every
    /// shipped core overrides this with the same loop body so the inner
    /// loop monomorphizes (the `self.step` call inside a concrete impl
    /// dispatches statically and inlines). The block generator is an
    /// allocation-free iterator, so the whole path performs no heap
    /// allocation.
    fn step_block(&mut self, spec: &BlockSpec, seed: u64, mem: &mut Hierarchy, owner: Privilege) {
        for instr in spec.generate(seed) {
            self.step(&instr, mem, owner);
        }
    }

    /// Total simulated cycles so far.
    fn cycles(&self) -> u64;

    /// Retired-instruction and event counters.
    fn counters(&self) -> &CpuCounters;

    /// Resets pipeline state (not counters or caches), e.g. between runs.
    fn reset_pipeline(&mut self);
}

/// Forces the wrapped core down the trait's default per-instruction
/// [`Core::step_block`] (generate an [`Instruction`], step it, repeat).
///
/// The fused `step_block` overrides promise bit-identical cycles,
/// counters, and cache traffic to this wrapper; the equivalence tests
/// and the `hotpath` benchmark's before/after comparison both use it as
/// the reference path.
#[derive(Debug, Clone)]
pub struct Unfused<C: Core>(pub C);

impl<C: Core> Core for Unfused<C> {
    // `step_block` deliberately NOT overridden: the default loop is the
    // reference this wrapper exists to preserve.

    fn step(&mut self, instr: &Instruction, mem: &mut Hierarchy, owner: Privilege) {
        self.0.step(instr, mem, owner);
    }

    fn cycles(&self) -> u64 {
        self.0.cycles()
    }

    fn counters(&self) -> &CpuCounters {
        self.0.counters()
    }

    fn reset_pipeline(&mut self) {
        self.0.reset_pipeline();
    }
}

//! Retirement and event counters.

/// Monotonic event counters maintained by every timing core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuCounters {
    /// Retired instructions.
    pub instructions: u64,
    /// Retired branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
}

impl CpuCounters {
    /// Counter-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &CpuCounters) -> CpuCounters {
        CpuCounters {
            instructions: self.instructions - earlier.instructions,
            branches: self.branches - earlier.branches,
            mispredicts: self.mispredicts - earlier.mispredicts,
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
        }
    }

    /// Branch misprediction rate (0 when no branches retired).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts() {
        let a = CpuCounters {
            instructions: 100,
            branches: 10,
            mispredicts: 2,
            loads: 30,
            stores: 12,
        };
        let b = CpuCounters {
            instructions: 40,
            branches: 4,
            mispredicts: 1,
            loads: 10,
            stores: 5,
        };
        let d = a.delta(&b);
        assert_eq!(d.instructions, 60);
        assert_eq!(d.branches, 6);
        assert_eq!(d.mispredicts, 1);
        assert_eq!(d.loads, 20);
        assert_eq!(d.stores, 7);
    }

    #[test]
    fn mispredict_rate_handles_zero() {
        assert_eq!(CpuCounters::default().mispredict_rate(), 0.0);
        let c = CpuCounters {
            branches: 4,
            mispredicts: 1,
            ..Default::default()
        };
        assert_eq!(c.mispredict_rate(), 0.25);
    }
}

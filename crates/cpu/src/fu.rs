//! Functional-unit execution latencies.

use osprey_isa::InstrClass;

/// Execution latency in cycles for a non-memory instruction class.
///
/// Memory classes return the latency of the address-generation stage only;
/// the cache access latency is added by the core from the memory
/// hierarchy.
///
/// # Examples
///
/// ```
/// use osprey_cpu::fu::latency;
/// use osprey_isa::InstrClass;
///
/// assert_eq!(latency(InstrClass::IntAlu), 1);
/// assert!(latency(InstrClass::FpDiv) > latency(InstrClass::FpMul));
/// ```
pub fn latency(class: InstrClass) -> u64 {
    match class {
        InstrClass::IntAlu | InstrClass::Nop => 1,
        InstrClass::Branch => 1,
        InstrClass::IntMul => 4,
        InstrClass::IntDiv => 20,
        InstrClass::FpAdd => 3,
        InstrClass::FpMul => 5,
        InstrClass::FpDiv => 24,
        // Address generation for memory operations.
        InstrClass::Load | InstrClass::Store => 1,
        // `InstrClass` is non-exhaustive; treat future classes as
        // single-cycle until given a real latency.
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_latencies_positive() {
        for class in [
            InstrClass::IntAlu,
            InstrClass::IntMul,
            InstrClass::IntDiv,
            InstrClass::FpAdd,
            InstrClass::FpMul,
            InstrClass::FpDiv,
            InstrClass::Load,
            InstrClass::Store,
            InstrClass::Branch,
            InstrClass::Nop,
        ] {
            assert!(latency(class) >= 1);
        }
    }

    #[test]
    fn divides_are_longest() {
        assert!(latency(InstrClass::IntDiv) > latency(InstrClass::IntMul));
        assert!(latency(InstrClass::FpDiv) > latency(InstrClass::FpMul));
    }
}

//! Out-of-order superscalar timing model.
//!
//! A streaming scoreboard model: every dynamic instruction is assigned
//! fetch, issue, completion, and commit times subject to
//!
//! * fetch bandwidth and instruction-cache miss stalls,
//! * reorder-buffer occupancy (an instruction cannot dispatch until the
//!   instruction `rob_size` before it has committed),
//! * data dependences (a deterministic dependence distance derived from
//!   the instruction's PC chains consumers to producers),
//! * issue bandwidth and functional-unit/memory latencies,
//! * branch-misprediction redirects (fetch resumes `penalty` cycles after
//!   the mispredicted branch resolves), and
//! * in-order retirement bandwidth.
//!
//! The model is not a structural pipeline simulator, but it reproduces
//! the first-order effects the paper's study depends on: long-latency
//! cache misses serialize dependent work, branchy low-ILP kernel code runs
//! at low IPC, and cache-resident compute code runs at high IPC.

use osprey_isa::{InstrClass, Instruction, Privilege};
use osprey_mem::Hierarchy;

use crate::branch::GsharePredictor;
use crate::config::CpuConfig;
use crate::counters::CpuCounters;
use crate::fu;
use crate::Core;

/// Tracks per-cycle slot usage for a bandwidth-limited pipeline stage.
#[derive(Debug, Clone, Copy)]
struct BandwidthCursor {
    cycle: u64,
    used: u32,
    width: u32,
}

impl BandwidthCursor {
    fn new(width: u32) -> Self {
        Self {
            cycle: 0,
            used: 0,
            width,
        }
    }

    /// Schedules one slot no earlier than `earliest`; returns the cycle.
    fn schedule(&mut self, earliest: u64) -> u64 {
        if earliest > self.cycle {
            self.cycle = earliest;
            self.used = 0;
        }
        if self.used >= self.width {
            self.cycle += 1;
            self.used = 0;
        }
        self.used += 1;
        self.cycle
    }
}

/// The out-of-order core (see module docs).
///
/// Produced by [`OooCore::new`]; drive it through the [`Core`] trait.
#[derive(Debug, Clone)]
pub struct OooCore {
    cfg: CpuConfig,
    bp: GsharePredictor,
    counters: CpuCounters,
    index: u64,
    /// Ring buffer of completion times, `rob_size` deep.
    complete: Vec<u64>,
    /// Ring buffer of commit times, `rob_size` deep.
    commit: Vec<u64>,
    fetch: BandwidthCursor,
    issue: BandwidthCursor,
    retire: BandwidthCursor,
    last_commit_time: u64,
    redirect_cycle: u64,
    last_fetch_line: u64,
    cycles: u64,
}

impl OooCore {
    /// Creates a core with cold pipeline state.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: CpuConfig) -> Self {
        assert!(cfg.is_valid(), "invalid cpu config: {cfg:?}");
        Self {
            cfg,
            bp: GsharePredictor::new(12),
            counters: CpuCounters::default(),
            index: 0,
            complete: vec![0; cfg.rob_size as usize],
            commit: vec![0; cfg.rob_size as usize],
            fetch: BandwidthCursor::new(cfg.fetch_width),
            issue: BandwidthCursor::new(cfg.issue_width),
            retire: BandwidthCursor::new(cfg.retire_width),
            last_commit_time: 0,
            redirect_cycle: 0,
            last_fetch_line: u64::MAX,
            cycles: 0,
        }
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Deterministic dependence distance for the instruction at `pc`:
    /// how many instructions earlier its producer retired (1..=6).
    #[inline]
    fn dep_distance(pc: u64) -> u64 {
        1 + (pc.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 61) % 6
    }
}

impl Core for OooCore {
    fn step_block(
        &mut self,
        spec: &osprey_isa::BlockSpec,
        seed: u64,
        mem: &mut Hierarchy,
        owner: Privilege,
    ) {
        // Monomorphized override: `self.step` dispatches statically here,
        // so the per-instruction loop carries no virtual calls.
        for instr in spec.generate(seed) {
            self.step(&instr, mem, owner);
        }
    }

    fn step(&mut self, instr: &Instruction, mem: &mut Hierarchy, owner: Privilege) {
        let rob = self.cfg.rob_size as u64;

        // --- Fetch: I-cache stalls, redirects, bandwidth. ---
        let line = instr.pc >> 6;
        let mut earliest_fetch = self.redirect_cycle;
        if line != self.last_fetch_line {
            self.last_fetch_line = line;
            let fetch_lat = if self.cfg.use_caches {
                mem.fetch(instr.pc, owner)
            } else {
                1
            };
            if fetch_lat > 1 {
                // A miss stalls the front end for the extra cycles.
                earliest_fetch = earliest_fetch.max(self.fetch.cycle + fetch_lat - 1);
            }
        }
        let mut fetch_time = self.fetch.schedule(earliest_fetch);

        // --- Dispatch: ROB occupancy. ---
        if self.index >= rob {
            let oldest_commit = self.commit[(self.index % rob) as usize];
            fetch_time = fetch_time.max(oldest_commit);
        }

        // --- Ready: data dependence on an earlier completion. ---
        let dep = Self::dep_distance(instr.pc);
        let mut ready = fetch_time + 1;
        if self.index >= dep {
            let producer = self.complete[((self.index - dep) % rob) as usize];
            ready = ready.max(producer);
        }

        // --- Issue: bandwidth + execution latency. ---
        let issue_time = self.issue.schedule(ready);
        let exec_lat = match instr.class {
            InstrClass::Load => {
                self.counters.loads += 1;
                let addr = instr.mem_addr.expect("load carries an address");
                if self.cfg.use_caches {
                    mem.data_access(addr, false, owner)
                } else {
                    self.cfg.nocache_mem_latency
                }
            }
            InstrClass::Store => {
                self.counters.stores += 1;
                let addr = instr.mem_addr.expect("store carries an address");
                if self.cfg.use_caches {
                    // The write updates cache state, but retirement does
                    // not wait for it (store buffer).
                    mem.data_access(addr, true, owner);
                }
                1
            }
            class => fu::latency(class),
        };
        let complete_time = issue_time + exec_lat;

        // --- Branch resolution. ---
        if instr.class == InstrClass::Branch {
            self.counters.branches += 1;
            let info = instr.branch.expect("branch carries an outcome");
            let predicted = self.bp.predict_and_update(instr.pc, info.taken);
            if predicted != info.taken {
                self.counters.mispredicts += 1;
                self.redirect_cycle = self
                    .redirect_cycle
                    .max(complete_time + self.cfg.mispredict_penalty);
            }
        }

        // --- In-order retirement. ---
        let commit_time = self
            .retire
            .schedule(complete_time.max(self.last_commit_time));
        self.last_commit_time = commit_time;

        let slot = (self.index % rob) as usize;
        self.complete[slot] = complete_time;
        self.commit[slot] = commit_time;
        self.index += 1;
        self.counters.instructions += 1;
        self.cycles = commit_time;
    }

    fn cycles(&self) -> u64 {
        self.cycles
    }

    fn counters(&self) -> &CpuCounters {
        &self.counters
    }

    fn reset_pipeline(&mut self) {
        let cfg = self.cfg;
        let counters = self.counters;
        let cycles = self.cycles;
        *self = Self::new(cfg);
        self.counters = counters;
        self.cycles = cycles;
        // Resume timeline where we left off so `cycles()` stays monotonic.
        self.fetch.cycle = cycles;
        self.issue.cycle = cycles;
        self.retire.cycle = cycles;
        self.last_commit_time = cycles;
        self.redirect_cycle = cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osprey_isa::{BlockSpec, InstrMix, MemPattern};
    use osprey_mem::HierarchyConfig;

    fn run_block(spec: BlockSpec, seed: u64) -> (u64, CpuCounters) {
        let mut core = OooCore::new(CpuConfig::pentium4());
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        for instr in spec.generate(seed) {
            core.step(&instr, &mut mem, Privilege::User);
        }
        (core.cycles(), *core.counters())
    }

    #[test]
    fn cycles_are_monotonic_and_positive() {
        let mut core = OooCore::new(CpuConfig::pentium4());
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        let mut last = 0;
        for instr in BlockSpec::new(0x1000, 1000).generate(3) {
            core.step(&instr, &mut mem, Privilege::User);
            assert!(core.cycles() >= last);
            last = core.cycles();
        }
        assert!(last > 0);
    }

    #[test]
    fn ipc_is_plausible_for_cached_compute_code() {
        let spec = BlockSpec::new(0x1000, 100_000)
            .with_mix(InstrMix::compute_int())
            .with_mem(MemPattern::sequential(0x100_0000, 8 * 1024, 64));
        let (cycles, counters) = run_block(spec, 1);
        let ipc = counters.instructions as f64 / cycles as f64;
        // Small working set, predictable branches: should sustain decent ILP
        // but never beat the retire width of 3.
        assert!(ipc > 0.5, "ipc = {ipc}");
        assert!(ipc <= 3.0, "ipc = {ipc}");
    }

    #[test]
    fn cache_thrashing_lowers_ipc() {
        let friendly = BlockSpec::new(0x1000, 50_000).with_mem(MemPattern::sequential(
            0x100_0000,
            8 * 1024,
            64,
        ));
        let hostile = BlockSpec::new(0x1000, 50_000)
            .with_mem(MemPattern::random(0x100_0000, 64 * 1024 * 1024));
        let (c_f, n_f) = run_block(friendly, 1);
        let (c_h, n_h) = run_block(hostile, 1);
        let ipc_f = n_f.instructions as f64 / c_f as f64;
        let ipc_h = n_h.instructions as f64 / c_h as f64;
        assert!(
            ipc_f > ipc_h * 1.5,
            "thrashing should hurt: friendly {ipc_f}, hostile {ipc_h}"
        );
    }

    #[test]
    fn unpredictable_branches_lower_ipc() {
        let predictable = BlockSpec::new(0x1000, 50_000).with_branch_predictability(1.0);
        let unpredictable = BlockSpec::new(0x1000, 50_000).with_branch_predictability(0.0);
        let (c_p, n_p) = run_block(predictable, 1);
        let (c_u, n_u) = run_block(unpredictable, 1);
        let ipc_p = n_p.instructions as f64 / c_p as f64;
        let ipc_u = n_u.instructions as f64 / c_u as f64;
        assert!(
            ipc_p > ipc_u,
            "predictable {ipc_p} vs unpredictable {ipc_u}"
        );
        assert!(n_u.mispredicts > n_p.mispredicts);
    }

    #[test]
    fn nocache_mode_never_touches_hierarchy() {
        let mut core = OooCore::new(CpuConfig::pentium4_nocache());
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        for instr in BlockSpec::new(0x1000, 10_000).generate(2) {
            core.step(&instr, &mut mem, Privilege::User);
        }
        let snap = mem.snapshot();
        assert_eq!(snap.l1i.accesses(), 0);
        assert_eq!(snap.l1d.accesses(), 0);
        assert_eq!(snap.l2.accesses(), 0);
    }

    #[test]
    fn counters_track_instruction_classes() {
        let spec = BlockSpec::new(0x1000, 20_000);
        let (_, counters) = run_block(spec, 4);
        assert_eq!(counters.instructions, 20_000);
        assert!(counters.loads > 0);
        assert!(counters.stores > 0);
        assert!(counters.branches > 0);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let spec = BlockSpec::new(0x1000, 30_000);
        let a = run_block(spec, 9);
        let b = run_block(spec, 9);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn reset_pipeline_keeps_cycles_monotonic() {
        let mut core = OooCore::new(CpuConfig::pentium4());
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        for instr in BlockSpec::new(0x1000, 5_000).generate(1) {
            core.step(&instr, &mut mem, Privilege::User);
        }
        let before = core.cycles();
        core.reset_pipeline();
        assert_eq!(core.cycles(), before);
        for instr in BlockSpec::new(0x2000, 5_000).generate(2) {
            core.step(&instr, &mut mem, Privilege::User);
        }
        assert!(core.cycles() > before);
        assert_eq!(core.counters().instructions, 10_000);
    }

    #[test]
    fn bandwidth_cursor_enforces_width() {
        let mut c = BandwidthCursor::new(2);
        assert_eq!(c.schedule(0), 0);
        assert_eq!(c.schedule(0), 0);
        assert_eq!(c.schedule(0), 1, "third slot spills to next cycle");
        assert_eq!(c.schedule(5), 5, "jumping ahead resets usage");
        assert_eq!(c.schedule(3), 5, "late requests wait for cursor");
    }

    #[test]
    fn retire_width_caps_ipc_at_three() {
        // All-ALU block with perfect branches: the only limit is retire.
        let spec = BlockSpec::new(0x1000, 100_000)
            .with_mix(InstrMix {
                load: 0.0,
                store: 0.0,
                branch: 0.0,
                int_mul: 0.0,
                int_div: 0.0,
                fp_add: 0.0,
                fp_mul: 0.0,
                fp_div: 0.0,
            })
            .with_code_footprint(4096);
        let (cycles, counters) = run_block(spec, 1);
        let ipc = counters.instructions as f64 / cycles as f64;
        assert!(ipc <= 3.01, "ipc must respect retire width: {ipc}");
        assert!(ipc > 1.2, "pure ALU code should pipeline well: {ipc}");
    }
}

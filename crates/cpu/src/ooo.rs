//! Out-of-order superscalar timing model.
//!
//! A streaming scoreboard model: every dynamic instruction is assigned
//! fetch, issue, completion, and commit times subject to
//!
//! * fetch bandwidth and instruction-cache miss stalls,
//! * reorder-buffer occupancy (an instruction cannot dispatch until the
//!   instruction `rob_size` before it has committed),
//! * data dependences (a deterministic dependence distance derived from
//!   the instruction's PC chains consumers to producers),
//! * issue bandwidth and functional-unit/memory latencies,
//! * branch-misprediction redirects (fetch resumes `penalty` cycles after
//!   the mispredicted branch resolves), and
//! * in-order retirement bandwidth.
//!
//! The model is not a structural pipeline simulator, but it reproduces
//! the first-order effects the paper's study depends on: long-latency
//! cache misses serialize dependent work, branchy low-ILP kernel code runs
//! at low IPC, and cache-resident compute code runs at high IPC.

use osprey_isa::{InstrClass, Instruction, Privilege};
use osprey_mem::Hierarchy;

use crate::branch::GsharePredictor;
use crate::config::CpuConfig;
use crate::counters::CpuCounters;
use crate::fu;
use crate::Core;

/// Tracks per-cycle slot usage for a bandwidth-limited pipeline stage.
#[derive(Debug, Clone, Copy)]
struct BandwidthCursor {
    cycle: u64,
    used: u32,
    width: u32,
}

impl BandwidthCursor {
    fn new(width: u32) -> Self {
        Self {
            cycle: 0,
            used: 0,
            width,
        }
    }

    /// Schedules one slot no earlier than `earliest`; returns the cycle.
    fn schedule(&mut self, earliest: u64) -> u64 {
        if earliest > self.cycle {
            self.cycle = earliest;
            self.used = 0;
        }
        if self.used >= self.width {
            self.cycle += 1;
            self.used = 0;
        }
        self.used += 1;
        self.cycle
    }

    /// Schedules `n` consecutive slots in closed form, exactly equivalent
    /// to one `schedule(earliest)` call followed by `n - 1` calls with
    /// any bound at or below the first slot's cycle (once the first slot
    /// lands, the cursor never jumps again, so the remaining slots are
    /// pure bandwidth: slot `k` lands `(used₁ - 1 + k) / width` cycles
    /// after the first).
    ///
    /// Returns the per-slot cycles as a [`RunSchedule`]; the cursor ends
    /// in the same state the per-call loop would leave it in.
    fn schedule_run(&mut self, earliest: u64, n: u64) -> RunSchedule {
        debug_assert!(n >= 1);
        let first = self.schedule(earliest);
        let sched = RunSchedule {
            first,
            used: self.used,
            width: self.width,
        };
        if n > 1 {
            let total = self.used as u64 - 1 + (n - 1);
            self.cycle = first + total / self.width as u64;
            self.used = (total % self.width as u64) as u32 + 1;
        }
        sched
    }
}

/// Closed-form result of [`BandwidthCursor::schedule_run`]: the cycles
/// of `n` back-to-back slots, as a base plus a division instead of `n`
/// stateful cursor calls.
#[derive(Debug, Clone, Copy)]
struct RunSchedule {
    first: u64,
    used: u32,
    width: u32,
}

impl RunSchedule {
    /// Cycle of slot `k` (0-based; `slot(0)` is the first slot's cycle).
    /// The closed-form reference [`SlotIter`] is checked against; the
    /// hot loops use the iterator.
    #[cfg(test)]
    fn slot(&self, k: u64) -> u64 {
        self.first + (self.used as u64 - 1 + k) / self.width as u64
    }

    /// In-order traversal of the slots. Equivalent to calling
    /// [`RunSchedule::slot`] with `k = 0, 1, 2, ...` but carries the
    /// cycle incrementally, so the per-slot cost is a decrement and a
    /// compare instead of a division by the (runtime) fetch width.
    #[inline]
    fn slots(&self) -> SlotIter {
        SlotIter {
            cycle: self.first,
            // Slots left in the first cycle: `slot(k)` stays at `first`
            // while `used - 1 + k < width`.
            left: self.width - self.used + 1,
            width: self.width,
        }
    }
}

/// Incremental cursor over a [`RunSchedule`]'s slots.
#[derive(Debug, Clone, Copy)]
struct SlotIter {
    cycle: u64,
    left: u32,
    width: u32,
}

impl SlotIter {
    /// The next slot's cycle.
    #[inline]
    fn next_slot(&mut self) -> u64 {
        let c = self.cycle;
        self.left -= 1;
        if self.left == 0 {
            self.cycle += 1;
            self.left = self.width;
        }
        c
    }
}

/// The out-of-order core (see module docs).
///
/// Produced by [`OooCore::new`]; drive it through the [`Core`] trait.
#[derive(Debug, Clone)]
pub struct OooCore {
    cfg: CpuConfig,
    bp: GsharePredictor,
    counters: CpuCounters,
    index: u64,
    /// `index % rob_size`, tracked incrementally so the per-instruction
    /// recurrence never pays an integer division (the paper-default ROB
    /// of 126 is not a power of two).
    slot: usize,
    /// Ring buffer of completion times, `rob_size` deep.
    complete: Vec<u64>,
    /// Ring buffer of commit times, `rob_size` deep.
    commit: Vec<u64>,
    fetch: BandwidthCursor,
    issue: BandwidthCursor,
    retire: BandwidthCursor,
    last_commit_time: u64,
    redirect_cycle: u64,
    last_fetch_line: u64,
    cycles: u64,
}

impl OooCore {
    /// Creates a core with cold pipeline state.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: CpuConfig) -> Self {
        assert!(cfg.is_valid(), "invalid cpu config: {cfg:?}");
        Self {
            cfg,
            bp: GsharePredictor::new(12),
            counters: CpuCounters::default(),
            index: 0,
            slot: 0,
            complete: vec![0; cfg.rob_size as usize],
            commit: vec![0; cfg.rob_size as usize],
            fetch: BandwidthCursor::new(cfg.fetch_width),
            issue: BandwidthCursor::new(cfg.issue_width),
            retire: BandwidthCursor::new(cfg.retire_width),
            last_commit_time: 0,
            redirect_cycle: 0,
            last_fetch_line: u64::MAX,
            cycles: 0,
        }
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Deterministic dependence distance for the instruction at `pc`:
    /// how many instructions earlier its producer retired (1..=6).
    #[inline]
    fn dep_distance(pc: u64) -> u64 {
        1 + (pc.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 61) % 6
    }
}

/// The back half of the per-instruction recurrence — dispatch (ROB),
/// ready (dependence), issue, and retire — over state hoisted into
/// locals by the fused [`OooCore::step_block`]. Bit-identical to the
/// corresponding section of [`OooCore::step`]. Returns the completion
/// time (branch resolution needs it).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn sched_one(
    complete: &mut [u64],
    commit: &mut [u64],
    rob: u64,
    issue: &mut BandwidthCursor,
    retire: &mut BandwidthCursor,
    index: &mut u64,
    slot: &mut usize,
    last_commit: &mut u64,
    mut fetch_time: u64,
    pc: u64,
    exec_lat: u64,
) -> u64 {
    // --- Dispatch: ROB occupancy. ---
    // `slot` tracks `index % rob` incrementally: the oldest in-flight
    // instruction's commit slot IS the slot this one will overwrite.
    if *index >= rob {
        fetch_time = fetch_time.max(commit[*slot]);
    }
    // --- Ready: data dependence on an earlier completion. ---
    let dep = OooCore::dep_distance(pc);
    let mut ready = fetch_time + 1;
    if *index >= dep {
        // `(index - dep) % rob` by compare-subtract: dep <= 6 < rob
        // (CpuConfig::is_valid), so the index wraps at most once.
        let d = dep as usize;
        let ds = if *slot >= d {
            *slot - d
        } else {
            *slot + rob as usize - d
        };
        ready = ready.max(complete[ds]);
    }
    // --- Issue + execute. ---
    let issue_time = issue.schedule(ready);
    let complete_time = issue_time + exec_lat;
    // --- In-order retirement. ---
    let commit_time = retire.schedule(complete_time.max(*last_commit));
    *last_commit = commit_time;
    complete[*slot] = complete_time;
    commit[*slot] = commit_time;
    *index += 1;
    *slot += 1;
    if *slot == rob as usize {
        *slot = 0;
    }
    complete_time
}

impl Core for OooCore {
    fn step_block(
        &mut self,
        spec: &osprey_isa::BlockSpec,
        seed: u64,
        mem: &mut Hierarchy,
        owner: Privilege,
    ) {
        // Fused hot path: consume the spec's run-batched view directly.
        // Cycle-, counter-, and cache-identical to stepping
        // `spec.generate(seed)` through `self.step` (the equivalence
        // tests and the golden trace pin this), but with hot state in
        // locals, no `Instruction` materialization, per-block constants
        // resolved once, closed-form fetch scheduling for same-line
        // spans, and within-line data re-probes folded into one
        // bookkeeping step.
        if spec.instr_count == 0 {
            return;
        }
        let rob = self.cfg.rob_size as u64;
        let use_caches = self.cfg.use_caches;
        let nocache_lat = self.cfg.nocache_mem_latency;
        let penalty = self.cfg.mispredict_penalty;
        let branch_lat = fu::latency(InstrClass::Branch);
        let l1d_hit = mem.config().l1d.hit_latency;

        // Hoist the rings and all scalar pipeline state out of `self`.
        let mut complete = std::mem::take(&mut self.complete);
        let mut commit = std::mem::take(&mut self.commit);
        let mut fetch = self.fetch;
        let mut issue = self.issue;
        let mut retire = self.retire;
        let mut index = self.index;
        let mut slot = self.slot;
        let mut last_commit = self.last_commit_time;
        let mut redirect = self.redirect_cycle;
        let mut last_line = self.last_fetch_line;
        let mut c = self.counters;

        let mut runs = spec.runs(seed);
        while let Some(run) = runs.next_run() {
            match run {
                osprey_isa::InstrRun::Simple { pc, class, n } => {
                    let exec_lat = fu::latency(class);
                    c.instructions += n;
                    if !use_caches {
                        // No I-cache stalls: the whole run fetches at
                        // bandwidth from `redirect` in closed form.
                        last_line = (pc + 4 * (n - 1)) >> 6;
                        let rs = fetch.schedule_run(redirect, n);
                        let mut slots = rs.slots();
                        for k in 0..n {
                            sched_one(
                                &mut complete,
                                &mut commit,
                                rob,
                                &mut issue,
                                &mut retire,
                                &mut index,
                                &mut slot,
                                &mut last_commit,
                                slots.next_slot(),
                                pc + 4 * k,
                                exec_lat,
                            );
                        }
                    } else {
                        // Per I-line segment: one potential miss stall on
                        // the crossing, then pure-bandwidth fetch for the
                        // rest of the line, in closed form.
                        let mut k = 0u64;
                        while k < n {
                            let p = pc + 4 * k;
                            let line = p >> 6;
                            let mut earliest = redirect;
                            if line != last_line {
                                last_line = line;
                                let fl = mem.fetch(p, owner);
                                if fl > 1 {
                                    earliest = earliest.max(fetch.cycle + fl - 1);
                                }
                            }
                            // Instructions from `p` to the end of its line.
                            let m = ((67 - (p & 63)) / 4).min(n - k);
                            let rs = fetch.schedule_run(earliest, m);
                            let mut slots = rs.slots();
                            for j in 0..m {
                                sched_one(
                                    &mut complete,
                                    &mut commit,
                                    rob,
                                    &mut issue,
                                    &mut retire,
                                    &mut index,
                                    &mut slot,
                                    &mut last_commit,
                                    slots.next_slot(),
                                    p + 4 * j,
                                    exec_lat,
                                );
                            }
                            k += m;
                        }
                    }
                }
                osprey_isa::InstrRun::Mem {
                    pc,
                    store,
                    base,
                    stride,
                    n,
                } => {
                    c.instructions += n;
                    if store {
                        c.stores += n;
                    } else {
                        c.loads += n;
                    }
                    if !use_caches {
                        let exec_lat = if store { 1 } else { nocache_lat };
                        last_line = (pc + 4 * (n - 1)) >> 6;
                        let rs = fetch.schedule_run(redirect, n);
                        let mut slots = rs.slots();
                        for k in 0..n {
                            sched_one(
                                &mut complete,
                                &mut commit,
                                rob,
                                &mut issue,
                                &mut retire,
                                &mut index,
                                &mut slot,
                                &mut last_commit,
                                slots.next_slot(),
                                pc + 4 * k,
                                exec_lat,
                            );
                        }
                    } else {
                        // The run's first access to each data line pays a
                        // real probe; the rest of the line's accesses are
                        // guaranteed L1D hits folded into one bookkeeping
                        // step at the leader, preserving the relative
                        // order of every L2-touching event. Fetch runs at
                        // bandwidth within each I-line segment (every
                        // instruction's bound is `redirect`, which cannot
                        // exceed the segment's first slot), so it is
                        // scheduled in closed form per segment like the
                        // Simple path.
                        let mut next_leader = 0u64;
                        let mut k = 0u64;
                        while k < n {
                            let p = pc + 4 * k;
                            let line = p >> 6;
                            let mut earliest = redirect;
                            if line != last_line {
                                last_line = line;
                                let fl = mem.fetch(p, owner);
                                if fl > 1 {
                                    earliest = earliest.max(fetch.cycle + fl - 1);
                                }
                            }
                            // Instructions from `p` to the end of its line.
                            let m = ((67 - (p & 63)) / 4).min(n - k);
                            let rs = fetch.schedule_run(earliest, m);
                            let mut slots = rs.slots();
                            for j in 0..m {
                                let i = k + j;
                                let exec_lat = if i == next_leader {
                                    let addr = base + stride * i;
                                    let in_line = if stride == 0 {
                                        n - i
                                    } else {
                                        (64 - (addr & 63)).div_ceil(stride)
                                    };
                                    let g = in_line.min(n - i);
                                    let lat = mem.data_access(addr, store, owner);
                                    if g > 1 {
                                        mem.data_touch_repeat(addr, g - 1, store, owner);
                                    }
                                    next_leader = i + g;
                                    if store {
                                        1
                                    } else {
                                        lat
                                    }
                                } else if store {
                                    1
                                } else {
                                    l1d_hit
                                };
                                sched_one(
                                    &mut complete,
                                    &mut commit,
                                    rob,
                                    &mut issue,
                                    &mut retire,
                                    &mut index,
                                    &mut slot,
                                    &mut last_commit,
                                    slots.next_slot(),
                                    p + 4 * j,
                                    exec_lat,
                                );
                            }
                            k += m;
                        }
                    }
                }
                osprey_isa::InstrRun::Branch { pc, taken, .. } => {
                    let line = pc >> 6;
                    let mut earliest = redirect;
                    if line != last_line {
                        last_line = line;
                        let fl = if use_caches { mem.fetch(pc, owner) } else { 1 };
                        if fl > 1 {
                            earliest = earliest.max(fetch.cycle + fl - 1);
                        }
                    }
                    let ft = fetch.schedule(earliest);
                    let complete_time = sched_one(
                        &mut complete,
                        &mut commit,
                        rob,
                        &mut issue,
                        &mut retire,
                        &mut index,
                        &mut slot,
                        &mut last_commit,
                        ft,
                        pc,
                        branch_lat,
                    );
                    c.branches += 1;
                    c.instructions += 1;
                    let predicted = self.bp.predict_and_update(pc, taken);
                    if predicted != taken {
                        c.mispredicts += 1;
                        redirect = redirect.max(complete_time + penalty);
                    }
                }
            }
        }

        self.complete = complete;
        self.commit = commit;
        self.fetch = fetch;
        self.issue = issue;
        self.retire = retire;
        self.index = index;
        self.slot = slot;
        self.last_commit_time = last_commit;
        self.redirect_cycle = redirect;
        self.last_fetch_line = last_line;
        self.counters = c;
        self.cycles = last_commit;
    }

    fn step(&mut self, instr: &Instruction, mem: &mut Hierarchy, owner: Privilege) {
        let rob = self.cfg.rob_size as u64;

        // --- Fetch: I-cache stalls, redirects, bandwidth. ---
        let line = instr.pc >> 6;
        let mut earliest_fetch = self.redirect_cycle;
        if line != self.last_fetch_line {
            self.last_fetch_line = line;
            let fetch_lat = if self.cfg.use_caches {
                mem.fetch(instr.pc, owner)
            } else {
                1
            };
            if fetch_lat > 1 {
                // A miss stalls the front end for the extra cycles.
                earliest_fetch = earliest_fetch.max(self.fetch.cycle + fetch_lat - 1);
            }
        }
        let mut fetch_time = self.fetch.schedule(earliest_fetch);

        // --- Dispatch: ROB occupancy. ---
        // `self.slot` tracks `index % rob` incrementally; the oldest
        // in-flight instruction's commit slot is the one being reused.
        if self.index >= rob {
            let oldest_commit = self.commit[self.slot];
            fetch_time = fetch_time.max(oldest_commit);
        }

        // --- Ready: data dependence on an earlier completion. ---
        let dep = Self::dep_distance(instr.pc);
        let mut ready = fetch_time + 1;
        if self.index >= dep {
            // dep <= 6 < rob (CpuConfig::is_valid): one wrap suffices.
            let d = dep as usize;
            let ds = if self.slot >= d {
                self.slot - d
            } else {
                self.slot + rob as usize - d
            };
            ready = ready.max(self.complete[ds]);
        }

        // --- Issue: bandwidth + execution latency. ---
        let issue_time = self.issue.schedule(ready);
        let exec_lat = match instr.class {
            InstrClass::Load => {
                self.counters.loads += 1;
                let addr = instr.mem_addr.expect("load carries an address");
                if self.cfg.use_caches {
                    mem.data_access(addr, false, owner)
                } else {
                    self.cfg.nocache_mem_latency
                }
            }
            InstrClass::Store => {
                self.counters.stores += 1;
                let addr = instr.mem_addr.expect("store carries an address");
                if self.cfg.use_caches {
                    // The write updates cache state, but retirement does
                    // not wait for it (store buffer).
                    mem.data_access(addr, true, owner);
                }
                1
            }
            class => fu::latency(class),
        };
        let complete_time = issue_time + exec_lat;

        // --- Branch resolution. ---
        if instr.class == InstrClass::Branch {
            self.counters.branches += 1;
            let info = instr.branch.expect("branch carries an outcome");
            let predicted = self.bp.predict_and_update(instr.pc, info.taken);
            if predicted != info.taken {
                self.counters.mispredicts += 1;
                self.redirect_cycle = self
                    .redirect_cycle
                    .max(complete_time + self.cfg.mispredict_penalty);
            }
        }

        // --- In-order retirement. ---
        let commit_time = self
            .retire
            .schedule(complete_time.max(self.last_commit_time));
        self.last_commit_time = commit_time;

        self.complete[self.slot] = complete_time;
        self.commit[self.slot] = commit_time;
        self.index += 1;
        self.slot += 1;
        if self.slot == rob as usize {
            self.slot = 0;
        }
        self.counters.instructions += 1;
        self.cycles = commit_time;
    }

    fn cycles(&self) -> u64 {
        self.cycles
    }

    fn counters(&self) -> &CpuCounters {
        &self.counters
    }

    fn reset_pipeline(&mut self) {
        let cfg = self.cfg;
        let counters = self.counters;
        let cycles = self.cycles;
        *self = Self::new(cfg);
        self.counters = counters;
        self.cycles = cycles;
        // Resume timeline where we left off so `cycles()` stays monotonic.
        self.fetch.cycle = cycles;
        self.issue.cycle = cycles;
        self.retire.cycle = cycles;
        self.last_commit_time = cycles;
        self.redirect_cycle = cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osprey_isa::{BlockSpec, InstrMix, MemPattern};
    use osprey_mem::HierarchyConfig;

    fn run_block(spec: BlockSpec, seed: u64) -> (u64, CpuCounters) {
        let mut core = OooCore::new(CpuConfig::pentium4());
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        for instr in spec.generate(seed) {
            core.step(&instr, &mut mem, Privilege::User);
        }
        (core.cycles(), *core.counters())
    }

    #[test]
    fn cycles_are_monotonic_and_positive() {
        let mut core = OooCore::new(CpuConfig::pentium4());
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        let mut last = 0;
        for instr in BlockSpec::new(0x1000, 1000).generate(3) {
            core.step(&instr, &mut mem, Privilege::User);
            assert!(core.cycles() >= last);
            last = core.cycles();
        }
        assert!(last > 0);
    }

    #[test]
    fn ipc_is_plausible_for_cached_compute_code() {
        let spec = BlockSpec::new(0x1000, 100_000)
            .with_mix(InstrMix::compute_int())
            .with_mem(MemPattern::sequential(0x100_0000, 8 * 1024, 64));
        let (cycles, counters) = run_block(spec, 1);
        let ipc = counters.instructions as f64 / cycles as f64;
        // Small working set, predictable branches: should sustain decent ILP
        // but never beat the retire width of 3.
        assert!(ipc > 0.5, "ipc = {ipc}");
        assert!(ipc <= 3.0, "ipc = {ipc}");
    }

    #[test]
    fn cache_thrashing_lowers_ipc() {
        let friendly = BlockSpec::new(0x1000, 50_000).with_mem(MemPattern::sequential(
            0x100_0000,
            8 * 1024,
            64,
        ));
        let hostile = BlockSpec::new(0x1000, 50_000)
            .with_mem(MemPattern::random(0x100_0000, 64 * 1024 * 1024));
        let (c_f, n_f) = run_block(friendly, 1);
        let (c_h, n_h) = run_block(hostile, 1);
        let ipc_f = n_f.instructions as f64 / c_f as f64;
        let ipc_h = n_h.instructions as f64 / c_h as f64;
        assert!(
            ipc_f > ipc_h * 1.5,
            "thrashing should hurt: friendly {ipc_f}, hostile {ipc_h}"
        );
    }

    #[test]
    fn unpredictable_branches_lower_ipc() {
        let predictable = BlockSpec::new(0x1000, 50_000).with_branch_predictability(1.0);
        let unpredictable = BlockSpec::new(0x1000, 50_000).with_branch_predictability(0.0);
        let (c_p, n_p) = run_block(predictable, 1);
        let (c_u, n_u) = run_block(unpredictable, 1);
        let ipc_p = n_p.instructions as f64 / c_p as f64;
        let ipc_u = n_u.instructions as f64 / c_u as f64;
        assert!(
            ipc_p > ipc_u,
            "predictable {ipc_p} vs unpredictable {ipc_u}"
        );
        assert!(n_u.mispredicts > n_p.mispredicts);
    }

    #[test]
    fn nocache_mode_never_touches_hierarchy() {
        let mut core = OooCore::new(CpuConfig::pentium4_nocache());
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        for instr in BlockSpec::new(0x1000, 10_000).generate(2) {
            core.step(&instr, &mut mem, Privilege::User);
        }
        let snap = mem.snapshot();
        assert_eq!(snap.l1i.accesses(), 0);
        assert_eq!(snap.l1d.accesses(), 0);
        assert_eq!(snap.l2.accesses(), 0);
    }

    #[test]
    fn counters_track_instruction_classes() {
        let spec = BlockSpec::new(0x1000, 20_000);
        let (_, counters) = run_block(spec, 4);
        assert_eq!(counters.instructions, 20_000);
        assert!(counters.loads > 0);
        assert!(counters.stores > 0);
        assert!(counters.branches > 0);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let spec = BlockSpec::new(0x1000, 30_000);
        let a = run_block(spec, 9);
        let b = run_block(spec, 9);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn reset_pipeline_keeps_cycles_monotonic() {
        let mut core = OooCore::new(CpuConfig::pentium4());
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        for instr in BlockSpec::new(0x1000, 5_000).generate(1) {
            core.step(&instr, &mut mem, Privilege::User);
        }
        let before = core.cycles();
        core.reset_pipeline();
        assert_eq!(core.cycles(), before);
        for instr in BlockSpec::new(0x2000, 5_000).generate(2) {
            core.step(&instr, &mut mem, Privilege::User);
        }
        assert!(core.cycles() > before);
        assert_eq!(core.counters().instructions, 10_000);
    }

    #[test]
    fn bandwidth_cursor_enforces_width() {
        let mut c = BandwidthCursor::new(2);
        assert_eq!(c.schedule(0), 0);
        assert_eq!(c.schedule(0), 0);
        assert_eq!(c.schedule(0), 1, "third slot spills to next cycle");
        assert_eq!(c.schedule(5), 5, "jumping ahead resets usage");
        assert_eq!(c.schedule(3), 5, "late requests wait for cursor");
    }

    #[test]
    fn schedule_run_matches_per_call_loop() {
        // Every width × pre-state × earliest × length: the closed form
        // must return the same per-slot cycles and leave the cursor in
        // the same state as the per-call loop.
        for width in [1u32, 2, 3, 4] {
            for warm in 0..=(width + 1) {
                for earliest in [0u64, 1, 5] {
                    for n in [1u64, 2, 3, 7, 16, 100] {
                        let mut a = BandwidthCursor::new(width);
                        let mut b = BandwidthCursor::new(width);
                        for _ in 0..warm {
                            a.schedule(1);
                            b.schedule(1);
                        }
                        let mut expect = Vec::new();
                        for _ in 0..n {
                            expect.push(a.schedule(earliest));
                        }
                        let rs = b.schedule_run(earliest, n);
                        let got: Vec<u64> = (0..n).map(|k| rs.slot(k)).collect();
                        assert_eq!(
                            got, expect,
                            "width {width} warm {warm} earliest {earliest} n {n}"
                        );
                        let mut it = rs.slots();
                        let inc: Vec<u64> = (0..n).map(|_| it.next_slot()).collect();
                        assert_eq!(
                            inc, expect,
                            "slots() width {width} warm {warm} earliest {earliest} n {n}"
                        );
                        assert_eq!(a.cycle, b.cycle);
                        assert_eq!(a.used, b.used);
                    }
                }
            }
        }
    }

    #[test]
    fn retire_width_caps_ipc_at_three() {
        // All-ALU block with perfect branches: the only limit is retire.
        let spec = BlockSpec::new(0x1000, 100_000)
            .with_mix(InstrMix {
                load: 0.0,
                store: 0.0,
                branch: 0.0,
                int_mul: 0.0,
                int_div: 0.0,
                fp_add: 0.0,
                fp_mul: 0.0,
                fp_div: 0.0,
            })
            .with_code_footprint(4096);
        let (cycles, counters) = run_block(spec, 1);
        let ipc = counters.instructions as f64 / cycles as f64;
        assert!(ipc <= 3.01, "ipc must respect retire width: {ipc}");
        assert!(ipc > 1.2, "pure ALU code should pipeline well: {ipc}");
    }
}

//! Gshare branch direction predictor.
//!
//! A classic gshare: the global history register is XOR-folded with the
//! branch PC to index a table of 2-bit saturating counters. Targets are
//! assumed available (ideal BTB); only direction mispredictions incur the
//! pipeline penalty, matching the paper's single "branch misprediction
//! penalty of 10 cycles" parameter.

/// Gshare predictor with a configurable table size.
///
/// # Examples
///
/// ```
/// use osprey_cpu::GsharePredictor;
///
/// let mut bp = GsharePredictor::new(12);
/// // A branch that is always taken becomes predictable once the global
/// // history saturates (12 bits of history -> ~12 warmup executions).
/// for _ in 0..40 {
///     let _ = bp.predict_and_update(0x400100, true);
/// }
/// assert!(bp.predict_and_update(0x400100, true));
/// ```
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    /// 2-bit saturating counters; >= 2 predicts taken.
    table: Vec<u8>,
    mask: u64,
    history: u64,
    history_bits: u32,
}

impl GsharePredictor {
    /// Creates a predictor with `2^index_bits` counters, initialized to
    /// weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=24).contains(&index_bits), "unreasonable table size");
        Self {
            table: vec![1; 1 << index_bits],
            mask: (1 << index_bits) - 1,
            history: 0,
            history_bits: index_bits,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc`, then updates the
    /// counter and global history with the actual outcome.
    ///
    /// Returns the *prediction* (compare with `taken` to detect a
    /// misprediction).
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let counter = self.table[idx];
        let prediction = counter >= 2;
        self.table[idx] = match (counter, taken) {
            (c, true) if c < 3 => c + 1,
            (c, false) if c > 0 => c - 1,
            (c, _) => c,
        };
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.history_bits) - 1);
        prediction
    }

    /// Clears history and counters back to the initial state.
    pub fn reset(&mut self) {
        self.table.fill(1);
        self.history = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_monotone_branch() {
        let mut bp = GsharePredictor::new(10);
        let mut wrong_tail = 0;
        for i in 0..100 {
            let correct = bp.predict_and_update(0x1000, true);
            // Allow cold-start mispredicts while the global history warms
            // up (each new history value indexes a fresh counter).
            if i >= 20 && !correct {
                wrong_tail += 1;
            }
        }
        assert_eq!(wrong_tail, 0, "mispredicts on always-taken after warmup");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut bp = GsharePredictor::new(10);
        let mut wrong_tail = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let pred = bp.predict_and_update(0x2000, taken);
            if i >= 100 && pred != taken {
                wrong_tail += 1;
            }
        }
        assert!(
            wrong_tail <= 5,
            "alternating pattern not learned: {wrong_tail}"
        );
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut rng = osprey_stats::rng::SmallRng::seed_from_u64(5);
        let mut bp = GsharePredictor::new(10);
        let mut wrong = 0;
        for _ in 0..1000 {
            let taken = rng.random::<bool>();
            if bp.predict_and_update(0x3000, taken) != taken {
                wrong += 1;
            }
        }
        assert!(
            (300..=700).contains(&wrong),
            "random branches should hover near 50%: {wrong}"
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut a = GsharePredictor::new(8);
        let mut b = GsharePredictor::new(8);
        for i in 0..50 {
            a.predict_and_update(0x100 + i * 4, i % 3 == 0);
        }
        a.reset();
        for pc in [0x100u64, 0x200, 0x300] {
            assert_eq!(
                a.predict_and_update(pc, true),
                b.predict_and_update(pc, true)
            );
        }
    }

    #[test]
    #[should_panic(expected = "unreasonable")]
    fn rejects_zero_bits() {
        GsharePredictor::new(0);
    }
}

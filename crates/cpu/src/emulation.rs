//! Functional emulation mode: count instructions, touch nothing else.
//!
//! This is the fast-forward mode the paper's prediction periods run in
//! (§4.5): the instruction stream is still produced (so the OS service's
//! *signature* — its dynamic instruction count — can be observed), but no
//! processor or cache timing state is updated. The relative cost of this
//! mode versus detailed simulation is what makes the acceleration
//! profitable (Table 1's `inorder-nocache` row).

use osprey_isa::{InstrClass, Instruction, Privilege};
use osprey_mem::Hierarchy;

use crate::counters::CpuCounters;
use crate::Core;

/// The emulation (instruction-counting) core.
///
/// [`Core::cycles`] always returns 0: emulation produces no timing.
///
/// # Examples
///
/// ```
/// use osprey_cpu::{Core, EmulationCore};
/// use osprey_isa::{BlockSpec, Privilege};
/// use osprey_mem::{Hierarchy, HierarchyConfig};
///
/// let mut core = EmulationCore::new();
/// let mut mem = Hierarchy::new(HierarchyConfig::default());
/// for instr in BlockSpec::new(0, 500).generate(1) {
///     core.step(&instr, &mut mem, Privilege::Kernel);
/// }
/// assert_eq!(core.counters().instructions, 500);
/// assert_eq!(core.cycles(), 0);
/// assert_eq!(mem.snapshot().l1i.accesses(), 0); // caches untouched
/// ```
#[derive(Debug, Clone, Default)]
pub struct EmulationCore {
    counters: CpuCounters,
}

impl EmulationCore {
    /// Creates an emulation core.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Core for EmulationCore {
    fn step_block(
        &mut self,
        spec: &osprey_isa::BlockSpec,
        seed: u64,
        _mem: &mut Hierarchy,
        _owner: Privilege,
    ) {
        // Fused hot path: emulation only observes per-class totals, so
        // the whole block collapses into `BlockSpec::class_totals` — the
        // draw-order-identical bulk counting loop that never builds an
        // instruction, a run, or a data address.
        let t = spec.class_totals(seed);
        self.counters.instructions += t.instructions;
        self.counters.loads += t.loads;
        self.counters.stores += t.stores;
        self.counters.branches += t.branches;
    }

    fn step(&mut self, instr: &Instruction, _mem: &mut Hierarchy, _owner: Privilege) {
        self.counters.instructions += 1;
        match instr.class {
            InstrClass::Load => self.counters.loads += 1,
            InstrClass::Store => self.counters.stores += 1,
            InstrClass::Branch => self.counters.branches += 1,
            _ => {}
        }
    }

    fn cycles(&self) -> u64 {
        0
    }

    fn counters(&self) -> &CpuCounters {
        &self.counters
    }

    fn reset_pipeline(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use osprey_isa::BlockSpec;
    use osprey_mem::HierarchyConfig;

    #[test]
    fn counts_but_produces_no_cycles() {
        let mut core = EmulationCore::new();
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        for instr in BlockSpec::new(0, 2_000).generate(7) {
            core.step(&instr, &mut mem, Privilege::Kernel);
        }
        assert_eq!(core.counters().instructions, 2_000);
        assert_eq!(core.cycles(), 0);
        assert!(core.counters().loads > 0);
    }

    #[test]
    fn leaves_memory_hierarchy_untouched() {
        let mut core = EmulationCore::new();
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        for instr in BlockSpec::new(0, 1_000).generate(1) {
            core.step(&instr, &mut mem, Privilege::User);
        }
        let snap = mem.snapshot();
        assert_eq!(
            snap.l1i.accesses() + snap.l1d.accesses() + snap.l2.accesses(),
            0
        );
    }
}

//! `Core::step_block` must be observationally identical to stepping the
//! same block one instruction at a time: same cycles, same retired
//! counters, same cache statistics. The simulator's hot path relies on
//! this equivalence (it only ever calls `step_block`).

use osprey_cpu::{Core, CpuConfig, EmulationCore, InOrderCore, OooCore};
use osprey_isa::{BlockSpec, InstrMix, MemPattern, Privilege};
use osprey_mem::{Hierarchy, HierarchyConfig};

/// A branchy, memory-heavy block large enough to exercise the pipeline,
/// the branch predictor, and all three cache levels.
fn specs() -> Vec<BlockSpec> {
    vec![
        BlockSpec::new(0x40_0000, 20_000),
        BlockSpec::new(0x1000, 12_000)
            .with_mix(InstrMix::kernel_control())
            .with_mem(MemPattern::random(0x800_0000, 256 * 1024))
            .with_branch_predictability(0.4),
        BlockSpec::new(0x9000, 8_000)
            .with_mix(InstrMix::memory_copy())
            .with_mem(MemPattern::sequential(0x100_0000, 64 * 1024, 8)),
    ]
}

/// Runs `specs()` through both paths on fresh core/hierarchy pairs and
/// asserts every observable matches.
fn assert_equivalent<C: Core>(mut make: impl FnMut() -> C, label: &str) {
    let mut stepped = make();
    let mut blocked = make();
    let mut mem_stepped = Hierarchy::new(HierarchyConfig::default());
    let mut mem_blocked = Hierarchy::new(HierarchyConfig::default());
    for (i, spec) in specs().into_iter().enumerate() {
        let seed = 1 + i as u64;
        for instr in spec.generate(seed) {
            stepped.step(&instr, &mut mem_stepped, Privilege::Kernel);
        }
        blocked.step_block(&spec, seed, &mut mem_blocked, Privilege::Kernel);
    }
    assert_eq!(stepped.cycles(), blocked.cycles(), "{label}: cycles");
    assert_eq!(stepped.counters(), blocked.counters(), "{label}: counters");
    assert_eq!(
        mem_stepped.snapshot(),
        mem_blocked.snapshot(),
        "{label}: cache stats"
    );
}

#[test]
fn ooo_core_step_block_matches_step() {
    assert_equivalent(|| OooCore::new(CpuConfig::pentium4()), "ooo-cache");
    assert_equivalent(
        || OooCore::new(CpuConfig::pentium4_nocache()),
        "ooo-nocache",
    );
}

#[test]
fn inorder_core_step_block_matches_step() {
    assert_equivalent(|| InOrderCore::new(CpuConfig::pentium4()), "inorder-cache");
    assert_equivalent(
        || InOrderCore::new(CpuConfig::pentium4_nocache()),
        "inorder-nocache",
    );
}

#[test]
fn emulation_core_step_block_matches_step() {
    assert_equivalent(EmulationCore::new, "emulation");
}

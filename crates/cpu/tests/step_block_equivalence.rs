//! `Core::step_block` must be observationally identical to stepping the
//! same block one instruction at a time: same cycles, same retired
//! counters, same cache statistics. The simulator's hot path relies on
//! this equivalence (it only ever calls `step_block`).

use osprey_cpu::{Core, CpuConfig, EmulationCore, InOrderCore, OooCore, Unfused};
use osprey_isa::{BlockSpec, InstrMix, MemPattern, Privilege};
use osprey_mem::{Hierarchy, HierarchyConfig};
use osprey_os::Kernel;
use osprey_workloads::{Benchmark, WorkItem};

/// A branchy, memory-heavy block large enough to exercise the pipeline,
/// the branch predictor, and all three cache levels.
fn specs() -> Vec<BlockSpec> {
    vec![
        BlockSpec::new(0x40_0000, 20_000),
        BlockSpec::new(0x1000, 12_000)
            .with_mix(InstrMix::kernel_control())
            .with_mem(MemPattern::random(0x800_0000, 256 * 1024))
            .with_branch_predictability(0.4),
        BlockSpec::new(0x9000, 8_000)
            .with_mix(InstrMix::memory_copy())
            .with_mem(MemPattern::sequential(0x100_0000, 64 * 1024, 8)),
    ]
}

/// Runs `specs()` through both paths on fresh core/hierarchy pairs and
/// asserts every observable matches.
fn assert_equivalent<C: Core>(mut make: impl FnMut() -> C, label: &str) {
    let mut stepped = make();
    let mut blocked = make();
    let mut mem_stepped = Hierarchy::new(HierarchyConfig::default());
    let mut mem_blocked = Hierarchy::new(HierarchyConfig::default());
    for (i, spec) in specs().into_iter().enumerate() {
        let seed = 1 + i as u64;
        for instr in spec.generate(seed) {
            stepped.step(&instr, &mut mem_stepped, Privilege::Kernel);
        }
        blocked.step_block(&spec, seed, &mut mem_blocked, Privilege::Kernel);
    }
    assert_eq!(stepped.cycles(), blocked.cycles(), "{label}: cycles");
    assert_eq!(stepped.counters(), blocked.counters(), "{label}: counters");
    assert_eq!(
        mem_stepped.snapshot(),
        mem_blocked.snapshot(),
        "{label}: cache stats"
    );
}

#[test]
fn ooo_core_step_block_matches_step() {
    assert_equivalent(|| OooCore::new(CpuConfig::pentium4()), "ooo-cache");
    assert_equivalent(
        || OooCore::new(CpuConfig::pentium4_nocache()),
        "ooo-nocache",
    );
}

#[test]
fn inorder_core_step_block_matches_step() {
    assert_equivalent(|| InOrderCore::new(CpuConfig::pentium4()), "inorder-cache");
    assert_equivalent(
        || InOrderCore::new(CpuConfig::pentium4_nocache()),
        "inorder-nocache",
    );
}

#[test]
fn emulation_core_step_block_matches_step() {
    assert_equivalent(EmulationCore::new, "emulation");
}

/// The `(spec, seed, owner)` block stream a benchmark feeds the core:
/// user compute blocks seeded the way `FullSystemSim` seeds them, and
/// every kernel service invocation's blocks via `Kernel::handle`,
/// capped at `budget` total instructions to keep debug-build runtime
/// reasonable.
fn benchmark_blocks(
    benchmark: Benchmark,
    seed: u64,
    budget: u64,
) -> Vec<(BlockSpec, u64, Privilege)> {
    let mut workload = benchmark.instantiate_scaled(seed, 0.02);
    let mut kernel = Kernel::new(seed);
    let mut out = Vec::new();
    let mut user_blocks = 0u64;
    let mut now = 0u64;
    let mut instrs = 0u64;
    while instrs < budget {
        let Some(item) = workload.next_item() else {
            break;
        };
        match item {
            WorkItem::Compute(spec) => {
                let s = seed ^ user_blocks.wrapping_mul(0x517c_c1b7_2722_0a95);
                instrs += spec.instr_count;
                out.push((spec, s, Privilege::User));
                user_blocks += 1;
            }
            WorkItem::Call(req) => {
                let inv = kernel.handle(&req, now);
                instrs += inv.instr_count();
                for (block, s) in inv.block_seeds() {
                    out.push((*block, s, Privilege::Kernel));
                }
            }
        }
        now += 1_000;
    }
    assert!(!out.is_empty(), "{benchmark:?} produced no blocks");
    out
}

/// Runs one benchmark's block stream through the fused `step_block` and
/// through [`Unfused`] (the trait-default per-instruction loop) and
/// asserts cycles, full `CpuCounters`, and every cache statistic agree.
fn assert_benchmark_equivalent<C: Core + Clone>(
    make: impl Fn() -> C,
    benchmark: Benchmark,
    seed: u64,
    label: &str,
) {
    let blocks = benchmark_blocks(benchmark, seed, 60_000);
    let mut fused = make();
    let mut reference = Unfused(make());
    let mut mem_fused = Hierarchy::new(HierarchyConfig::default());
    let mut mem_reference = Hierarchy::new(HierarchyConfig::default());
    for (spec, s, owner) in &blocks {
        fused.step_block(spec, *s, &mut mem_fused, *owner);
        reference.step_block(spec, *s, &mut mem_reference, *owner);
    }
    let tag = format!("{label}/{}/seed{seed}", benchmark.name());
    assert_eq!(fused.cycles(), reference.cycles(), "{tag}: cycles");
    assert_eq!(fused.counters(), reference.counters(), "{tag}: counters");
    assert_eq!(
        mem_fused.snapshot(),
        mem_reference.snapshot(),
        "{tag}: cache stats"
    );
}

/// All three cores × all 9 benchmarks × 3 seeds: the fused hot path is
/// cycle- and counter-identical to the per-instruction reference on the
/// exact block streams the simulator executes.
#[test]
fn fused_path_matches_reference_across_all_benchmarks() {
    for &benchmark in &Benchmark::ALL {
        for seed in [1u64, 2, 3] {
            assert_benchmark_equivalent(
                || OooCore::new(CpuConfig::pentium4()),
                benchmark,
                seed,
                "ooo-cache",
            );
            assert_benchmark_equivalent(
                || InOrderCore::new(CpuConfig::pentium4()),
                benchmark,
                seed,
                "inorder-cache",
            );
            assert_benchmark_equivalent(EmulationCore::new, benchmark, seed, "emulation");
        }
        // The nocache variants share the fused generator; one seed each
        // keeps the matrix cheap while covering the cacheless fetch path.
        assert_benchmark_equivalent(
            || OooCore::new(CpuConfig::pentium4_nocache()),
            benchmark,
            1,
            "ooo-nocache",
        );
        assert_benchmark_equivalent(
            || InOrderCore::new(CpuConfig::pentium4_nocache()),
            benchmark,
            1,
            "inorder-nocache",
        );
    }
}

//! Every shipped workload must pass the static verifier.
//!
//! This is the contract `osprey-sim` relies on when it rejects
//! unverified programs at load: the built-in benchmarks, expanded with
//! the simulator's own interleaving, produce no diagnostics at all —
//! not even warnings.

use osprey_verify::verify_benchmark;
use osprey_workloads::Benchmark;

#[test]
fn all_benchmarks_pass_the_verifier() {
    for benchmark in Benchmark::ALL {
        let diags = verify_benchmark(benchmark, 1, 0.05);
        assert!(
            diags.is_empty(),
            "{benchmark}: expected a clean program, got {diags:#?}"
        );
    }
}

#[test]
fn verification_is_seed_independent() {
    for seed in [0, 7, 0xdead_beef] {
        let diags = verify_benchmark(Benchmark::AbRand, seed, 0.05);
        assert!(diags.is_empty(), "seed {seed}: {diags:#?}");
    }
}

#[test]
fn os_intensive_benchmarks_verify_at_larger_scale() {
    for benchmark in Benchmark::OS_INTENSIVE {
        let diags = verify_benchmark(benchmark, 1, 0.25);
        assert!(diags.is_empty(), "{benchmark}: {diags:#?}");
    }
}

//! The program representation the verifier analyzes.
//!
//! A [`ProgramSpec`] is a graph of [`ProgramBlock`]s: user-mode compute
//! blocks, kernel service blocks, and the pseudo-blocks marking kernel
//! entry and return. Shipped workloads expand to linear chains (execution
//! is sequential), but the representation admits arbitrary edges so the
//! verifier can reason about reachability and interval bounds — and so
//! broken fixtures can express structural mistakes a chain cannot.

use osprey_isa::{BlockSpec, ServiceId};
use osprey_os::{Kernel, ServiceInvocation};
use osprey_workloads::{WorkItem, Workload};

/// What a program block is, from the privilege checker's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockRole {
    /// Application code executed in user mode.
    User,
    /// The mode switch into the kernel for a service (pseudo-block; no
    /// instructions of its own).
    ServiceEntry(ServiceId),
    /// Kernel handler code executed inside a service interval.
    Service(ServiceId),
    /// The return to user mode ending a service interval (pseudo-block).
    ServiceReturn(ServiceId),
}

impl BlockRole {
    /// Short human-readable role name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            BlockRole::User => "user",
            BlockRole::ServiceEntry(_) => "entry",
            BlockRole::Service(_) => "service",
            BlockRole::ServiceReturn(_) => "return",
        }
    }
}

/// One node of a [`ProgramSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramBlock {
    /// The block's role in the privilege structure.
    pub role: BlockRole,
    /// The code the block runs; `None` for entry/return pseudo-blocks.
    pub spec: Option<BlockSpec>,
    /// Seed the block's instruction stream is generated with.
    pub seed: u64,
    /// Free-form label (service path, workload item kind) for diagnostics.
    pub label: String,
}

impl ProgramBlock {
    /// A user-mode compute block.
    pub fn user(spec: BlockSpec, seed: u64) -> Self {
        Self {
            role: BlockRole::User,
            spec: Some(spec),
            seed,
            label: "compute".to_string(),
        }
    }

    /// A kernel service block.
    pub fn service(id: ServiceId, spec: BlockSpec, seed: u64, label: impl Into<String>) -> Self {
        Self {
            role: BlockRole::Service(id),
            spec: Some(spec),
            seed,
            label: label.into(),
        }
    }

    /// The entry pseudo-block of a service interval.
    pub fn entry(id: ServiceId) -> Self {
        Self {
            role: BlockRole::ServiceEntry(id),
            spec: None,
            seed: 0,
            label: id.name().to_string(),
        }
    }

    /// The return pseudo-block ending a service interval.
    pub fn ret(id: ServiceId) -> Self {
        Self {
            role: BlockRole::ServiceReturn(id),
            spec: None,
            seed: 0,
            label: id.name().to_string(),
        }
    }

    /// Dynamic instructions this block contributes (0 for pseudo-blocks).
    pub fn instr_count(&self) -> u64 {
        self.spec.map_or(0, |s| s.instr_count)
    }
}

/// A verifiable program: blocks, control-flow edges, and an entry node.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSpec {
    /// Name shown in diagnostics (benchmark or fixture name).
    pub name: String,
    /// The blocks, indexed by edge endpoints.
    pub blocks: Vec<ProgramBlock>,
    /// Directed control-flow edges between block indices.
    pub edges: Vec<(usize, usize)>,
    /// Index of the first block executed.
    pub entry: usize,
}

impl ProgramSpec {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            blocks: Vec::new(),
            edges: Vec::new(),
            entry: 0,
        }
    }

    /// Appends a block, chaining it after the previous one, and returns
    /// its index. The first pushed block becomes the entry.
    pub fn push(&mut self, block: ProgramBlock) -> usize {
        let idx = self.blocks.len();
        if idx > 0 {
            self.edges.push((idx - 1, idx));
        }
        self.blocks.push(block);
        idx
    }

    /// Appends one expanded service interval (entry, handler blocks,
    /// return) as a chain.
    pub fn push_invocation(&mut self, inv: &ServiceInvocation) {
        self.push(ProgramBlock::entry(inv.service));
        for (i, spec) in inv.blocks.iter().enumerate() {
            self.push(ProgramBlock::service(
                inv.service,
                *spec,
                inv.seed.wrapping_add(i as u64),
                inv.path,
            ));
        }
        self.push(ProgramBlock::ret(inv.service));
    }

    /// A program consisting of a single expanded service interval.
    pub fn from_invocation(name: impl Into<String>, inv: &ServiceInvocation) -> Self {
        let mut p = Self::new(name);
        p.push_invocation(inv);
        p
    }

    /// Successor indices of `from` (invalid edge endpoints are skipped;
    /// the edge checker reports them separately).
    pub fn successors(&self, from: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges
            .iter()
            .filter(move |&&(a, b)| a == from && b < self.blocks.len())
            .map(|&(_, b)| b)
    }

    /// Total dynamic instructions across all blocks.
    pub fn instr_count(&self) -> u64 {
        self.blocks.iter().map(ProgramBlock::instr_count).sum()
    }

    /// A compact diagnostics location for block `idx`.
    pub fn location(&self, idx: usize) -> String {
        match self.blocks.get(idx) {
            Some(b) => format!(
                "{}: block[{idx}] ({} {})",
                self.name,
                b.role.name(),
                b.label
            ),
            None => format!("{}: block[{idx}]", self.name),
        }
    }
}

/// Expands a workload through a kernel into a verifiable program,
/// replaying exactly the interleaving `osprey-sim`'s machine would
/// execute: due interrupts are raised between items, system calls are
/// expanded by the kernel, and user blocks advance the instruction clock.
///
/// Feeding the same workload/kernel seeds the simulator would use makes
/// the verified program identical to the executed one (both are
/// deterministic), which is what lets the simulator reject unverified
/// programs at load without a separate program format.
pub fn program_for_workload(
    name: &str,
    workload: &mut dyn Workload,
    kernel: &mut Kernel,
    master_seed: u64,
) -> ProgramSpec {
    let mut p = ProgramSpec::new(name);
    let mut instret = 0u64;
    let mut user_blocks = 0u64;
    loop {
        while let Some(id) = kernel.due_interrupt(instret) {
            let inv = kernel.raise(id, instret);
            instret += inv.instr_count();
            p.push_invocation(&inv);
        }
        match workload.next_item() {
            None => break,
            Some(WorkItem::Compute(spec)) => {
                user_blocks += 1;
                let seed = master_seed ^ user_blocks.wrapping_mul(0x517c_c1b7_2722_0a95);
                instret += spec.instr_count;
                p.push(ProgramBlock::user(spec, seed));
            }
            Some(WorkItem::Call(req)) => {
                let inv = kernel.handle(&req, instret);
                instret += inv.instr_count();
                p.push_invocation(&inv);
            }
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use osprey_os::ServiceRequest;
    use osprey_workloads::Benchmark;

    #[test]
    fn push_chains_blocks_linearly() {
        let mut p = ProgramSpec::new("t");
        let a = p.push(ProgramBlock::user(BlockSpec::new(0x1000, 10), 1));
        let b = p.push(ProgramBlock::user(BlockSpec::new(0x2000, 20), 2));
        assert_eq!((a, b), (0, 1));
        assert_eq!(p.edges, vec![(0, 1)]);
        assert_eq!(p.successors(0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(p.instr_count(), 30);
    }

    #[test]
    fn invocation_brackets_blocks_with_entry_and_return() {
        let mut kernel = Kernel::new(7);
        let inv = kernel.handle(&ServiceRequest::gettimeofday(), 0);
        let p = ProgramSpec::from_invocation("t", &inv);
        assert!(matches!(p.blocks[0].role, BlockRole::ServiceEntry(_)));
        assert!(matches!(
            p.blocks.last().expect("non-empty").role,
            BlockRole::ServiceReturn(_)
        ));
        assert_eq!(p.blocks.len(), inv.blocks.len() + 2);
        assert_eq!(p.instr_count(), inv.instr_count());
    }

    #[test]
    fn workload_expansion_is_deterministic_and_mixed() {
        let build = || {
            let mut wl = Benchmark::Du.instantiate_scaled(3, 0.05);
            let mut kernel = Kernel::new(3);
            program_for_workload("du", wl.as_mut(), &mut kernel, 3)
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert!(a.blocks.iter().any(|x| x.role == BlockRole::User));
        assert!(a
            .blocks
            .iter()
            .any(|x| matches!(x.role, BlockRole::Service(_))));
    }

    #[test]
    fn locations_name_the_block() {
        let mut p = ProgramSpec::new("prog");
        p.push(ProgramBlock::user(BlockSpec::new(0x1000, 10), 1));
        assert!(p.location(0).contains("prog: block[0]"));
        assert!(p.location(9).contains("block[9]"));
    }
}

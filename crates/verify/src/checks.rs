//! The verification passes and their diagnostic codes.
//!
//! Every check emits [`Diagnostic`]s with a stable `OSPVxxx` code, so
//! tests and tools can assert on exact failure classes:
//!
//! | code    | severity | meaning |
//! |---------|----------|---------|
//! | OSPV001 | error    | return to user without a matching kernel entry |
//! | OSPV002 | error    | kernel entry while already in kernel mode |
//! | OSPV003 | error    | program ends inside an open service interval |
//! | OSPV004 | error    | user mode executes a service-only block |
//! | OSPV005 | warning  | service block placed below the kernel address split |
//! | OSPV010 | error    | instruction-mix fractions out of range or summing past 1 |
//! | OSPV011 | error    | block has a zero instruction budget |
//! | OSPV012 | error    | code footprint too small to hold an instruction |
//! | OSPV013 | error    | branch or edge target out of range |
//! | OSPV014 | warning  | data region is empty |
//! | OSPV020 | error    | dead block (unreachable from the entry) |
//! | OSPV021 | warning  | service interval with a cyclic kernel path (unbounded) |
//! | OSPV022 | error    | static interval instruction bound exceeds the budget |
//! | OSPV023 | warning  | service interval contains no instructions |

use std::collections::{HashMap, HashSet};

use osprey_isa::Privilege;
use osprey_os::layout::KERNEL_CODE_BASE;
use osprey_report::Diagnostic;

use crate::cfg::BlockCfg;
use crate::program::{BlockRole, ProgramSpec};

/// Tunables of the verification pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Largest statically-bounded instruction count one service interval
    /// may reach. The paper's signatures are per-interval dynamic
    /// instruction counts; an interval beyond this bound could never form
    /// a learnable cluster, so it is rejected up front.
    pub max_interval_instructions: u64,
    /// Instructions of each block's stream to scan while building its
    /// [`BlockCfg`].
    pub stream_scan_cap: u64,
    /// Number of blocks (from the program start) whose streams are
    /// scanned; well-formedness checks still cover every block. Bounds
    /// verification cost on large programs.
    pub stream_scan_blocks: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        Self {
            max_interval_instructions: 50_000_000,
            stream_scan_cap: 2_048,
            stream_scan_blocks: 256,
        }
    }
}

/// Runs every check with the default configuration.
pub fn verify(program: &ProgramSpec) -> Vec<Diagnostic> {
    verify_with(program, &VerifyConfig::default())
}

/// Runs every check with an explicit configuration. Diagnostics are
/// ordered errors-first, then by block index.
pub fn verify_with(program: &ProgramSpec, cfg: &VerifyConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_edges(program, &mut diags);
    check_blocks(program, cfg, &mut diags);
    check_reachability(program, &mut diags);
    check_privilege(program, &mut diags);
    check_intervals(program, cfg, &mut diags);
    diags.sort_by_key(|d| (std::cmp::Reverse(d.severity), d.code, d.location.clone()));
    diags
}

/// OSPV013 (structural half): every edge endpoint and the entry index
/// must name an existing block.
fn check_edges(p: &ProgramSpec, diags: &mut Vec<Diagnostic>) {
    if !p.blocks.is_empty() && p.entry >= p.blocks.len() {
        diags.push(Diagnostic::error(
            "OSPV013",
            format!("{}: entry", p.name),
            format!(
                "entry index {} is out of range ({} blocks)",
                p.entry,
                p.blocks.len()
            ),
        ));
    }
    for &(a, b) in &p.edges {
        if a >= p.blocks.len() || b >= p.blocks.len() {
            diags.push(Diagnostic::error(
                "OSPV013",
                format!("{}: edge {a}->{b}", p.name),
                format!("edge endpoint out of range ({} blocks)", p.blocks.len()),
            ));
        }
    }
}

/// OSPV010/011/012/014 plus the stream half of OSPV013: per-block
/// well-formedness.
fn check_blocks(p: &ProgramSpec, cfg: &VerifyConfig, diags: &mut Vec<Diagnostic>) {
    let mut scanned_blocks = 0usize;
    for (idx, block) in p.blocks.iter().enumerate() {
        let Some(spec) = &block.spec else { continue };
        let loc = p.location(idx);
        let mut structural_problem = false;

        let fractions = [
            ("load", spec.mix.load),
            ("store", spec.mix.store),
            ("branch", spec.mix.branch),
            ("int_mul", spec.mix.int_mul),
            ("int_div", spec.mix.int_div),
            ("fp_add", spec.mix.fp_add),
            ("fp_mul", spec.mix.fp_mul),
            ("fp_div", spec.mix.fp_div),
        ];
        if let Some((name, value)) = fractions.iter().find(|(_, v)| !(0.0..=1.0).contains(v)) {
            diags.push(Diagnostic::error(
                "OSPV010",
                loc.clone(),
                format!("instruction-mix fraction `{name}` = {value} is outside [0, 1]"),
            ));
        } else if spec.mix.alu_fraction() < -1e-9 {
            diags.push(Diagnostic::error(
                "OSPV010",
                loc.clone(),
                format!(
                    "instruction-mix fractions sum to {:.4} (> 1)",
                    1.0 - spec.mix.alu_fraction()
                ),
            ));
        }

        if spec.instr_count == 0 {
            diags.push(Diagnostic::error(
                "OSPV011",
                loc.clone(),
                "block has a zero instruction budget".to_string(),
            ));
            structural_problem = true;
        }
        if spec.code_footprint < 4 {
            diags.push(Diagnostic::error(
                "OSPV012",
                loc.clone(),
                format!(
                    "code footprint of {} bytes cannot hold one 4-byte instruction",
                    spec.code_footprint
                ),
            ));
            structural_problem = true;
        }
        if spec.mem.footprint == 0 {
            diags.push(Diagnostic::warning(
                "OSPV014",
                loc.clone(),
                "data region is empty; accesses will be clamped".to_string(),
            ));
        }

        // Stream scan: skip blocks already structurally broken (their
        // streams are degenerate and would only repeat the finding) and
        // stop once the scan budget is spent.
        if structural_problem || scanned_blocks >= cfg.stream_scan_blocks {
            continue;
        }
        scanned_blocks += 1;
        let stream = BlockCfg::from_spec(spec, block.seed, cfg.stream_scan_cap);
        if let Some(pc) = stream.escaped_pc {
            diags.push(Diagnostic::error(
                "OSPV013",
                loc.clone(),
                format!("generated stream reaches pc {pc:#x} outside the code region"),
            ));
        } else if let Some((pc, target)) = stream.out_of_range_target {
            diags.push(Diagnostic::error(
                "OSPV013",
                loc,
                format!("branch at {pc:#x} targets {target:#x} outside the code region"),
            ));
        }
    }
}

/// OSPV020: every block must be reachable from the entry.
fn check_reachability(p: &ProgramSpec, diags: &mut Vec<Diagnostic>) {
    if p.blocks.is_empty() {
        return;
    }
    let mut reachable = vec![false; p.blocks.len()];
    let mut stack = Vec::new();
    if p.entry < p.blocks.len() {
        reachable[p.entry] = true;
        stack.push(p.entry);
    }
    while let Some(n) = stack.pop() {
        for s in p.successors(n) {
            if !reachable[s] {
                reachable[s] = true;
                stack.push(s);
            }
        }
    }
    for (idx, ok) in reachable.iter().enumerate() {
        if !ok {
            diags.push(Diagnostic::error(
                "OSPV020",
                p.location(idx),
                "dead block: unreachable from the program entry".to_string(),
            ));
        }
    }
}

/// OSPV001–OSPV005: privilege bracketing over every reachable path.
///
/// Walks the graph tracking the privilege mode; the `(block, mode)` state
/// space is finite, so the walk terminates on cyclic programs too.
fn check_privilege(p: &ProgramSpec, diags: &mut Vec<Diagnostic>) {
    if p.blocks.is_empty() || p.entry >= p.blocks.len() {
        return;
    }
    let mut seen: HashSet<(usize, Privilege)> = HashSet::new();
    let mut stack = vec![(p.entry, Privilege::User)];
    // Deduplicate per-block findings: a block reached along many paths
    // should be reported once per failure class.
    let mut reported: HashSet<(usize, &'static str)> = HashSet::new();
    let report = |diags: &mut Vec<Diagnostic>,
                  reported: &mut HashSet<(usize, &'static str)>,
                  idx: usize,
                  d: Diagnostic| {
        if reported.insert((idx, d.code)) {
            diags.push(d);
        }
    };
    while let Some((idx, mode)) = stack.pop() {
        if !seen.insert((idx, mode)) {
            continue;
        }
        let block = &p.blocks[idx];
        let next_mode = match block.role {
            BlockRole::User => {
                if let Some(spec) = &block.spec {
                    if spec.base_pc >= KERNEL_CODE_BASE {
                        report(
                            diags,
                            &mut reported,
                            idx,
                            Diagnostic::error(
                                "OSPV004",
                                p.location(idx),
                                format!(
                                    "user block's code at {:#x} lies in the kernel-only region",
                                    spec.base_pc
                                ),
                            ),
                        );
                    }
                }
                mode
            }
            BlockRole::ServiceEntry(_) => match mode.enter_kernel() {
                Some(next) => next,
                None => {
                    report(
                        diags,
                        &mut reported,
                        idx,
                        Diagnostic::error(
                            "OSPV002",
                            p.location(idx),
                            "kernel entry while already inside a service interval".to_string(),
                        ),
                    );
                    Privilege::Kernel
                }
            },
            BlockRole::Service(_) => {
                if mode.is_user() {
                    report(
                        diags,
                        &mut reported,
                        idx,
                        Diagnostic::error(
                            "OSPV004",
                            p.location(idx),
                            "service-only block executes in user mode".to_string(),
                        ),
                    );
                }
                if let Some(spec) = &block.spec {
                    if spec.base_pc < KERNEL_CODE_BASE {
                        report(
                            diags,
                            &mut reported,
                            idx,
                            Diagnostic::warning(
                                "OSPV005",
                                p.location(idx),
                                format!(
                                    "service block's code at {:#x} lies below the kernel split",
                                    spec.base_pc
                                ),
                            ),
                        );
                    }
                }
                mode
            }
            BlockRole::ServiceReturn(_) => match mode.return_to_user() {
                Some(next) => next,
                None => {
                    report(
                        diags,
                        &mut reported,
                        idx,
                        Diagnostic::error(
                            "OSPV001",
                            p.location(idx),
                            "return to user mode without a matching kernel entry".to_string(),
                        ),
                    );
                    Privilege::User
                }
            },
        };
        let mut terminal = true;
        for s in p.successors(idx) {
            terminal = false;
            stack.push((s, next_mode));
        }
        if terminal && next_mode.is_kernel() {
            report(
                diags,
                &mut reported,
                idx,
                Diagnostic::error(
                    "OSPV003",
                    p.location(idx),
                    "program ends inside an open service interval (kernel entry never returns)"
                        .to_string(),
                ),
            );
        }
    }
}

/// Result of bounding one kernel region node: min/max instructions until
/// a return, and whether any path actually reaches a return.
#[derive(Clone, Copy)]
struct Bound {
    min: u64,
    max: u64,
    reaches_return: bool,
}

/// OSPV021/022/023: static per-interval instruction bounds.
fn check_intervals(p: &ProgramSpec, cfg: &VerifyConfig, diags: &mut Vec<Diagnostic>) {
    for (idx, block) in p.blocks.iter().enumerate() {
        if !matches!(block.role, BlockRole::ServiceEntry(_)) {
            continue;
        }
        let mut memo: HashMap<usize, Bound> = HashMap::new();
        let mut on_stack: HashSet<usize> = HashSet::new();
        let mut cyclic = false;
        let mut bound = Bound {
            min: u64::MAX,
            max: 0,
            reaches_return: false,
        };
        let mut any_succ = false;
        for s in p.successors(idx) {
            any_succ = true;
            let b = bound_from(p, s, &mut memo, &mut on_stack, &mut cyclic);
            bound.min = bound.min.min(b.min);
            bound.max = bound.max.max(b.max);
            bound.reaches_return |= b.reaches_return;
        }
        if !any_succ {
            // Entry with no successors: OSPV003 already covers it.
            continue;
        }
        if cyclic {
            diags.push(Diagnostic::warning(
                "OSPV021",
                p.location(idx),
                "service interval contains a cyclic kernel path; its instruction count \
                 is statically unbounded"
                    .to_string(),
            ));
            continue;
        }
        if bound.max > cfg.max_interval_instructions {
            diags.push(Diagnostic::error(
                "OSPV022",
                p.location(idx),
                format!(
                    "interval may execute {} instructions, beyond the {} budget",
                    bound.max, cfg.max_interval_instructions
                ),
            ));
        }
        if bound.reaches_return && bound.min == 0 {
            diags.push(Diagnostic::warning(
                "OSPV023",
                p.location(idx),
                "service interval can complete without executing any instruction".to_string(),
            ));
        }
    }
}

/// Bounds instructions from `idx` (inside a kernel region) to the first
/// service return, memoized; sets `cyclic` when the region loops.
fn bound_from(
    p: &ProgramSpec,
    idx: usize,
    memo: &mut HashMap<usize, Bound>,
    on_stack: &mut HashSet<usize>,
    cyclic: &mut bool,
) -> Bound {
    if let Some(&b) = memo.get(&idx) {
        return b;
    }
    if !on_stack.insert(idx) {
        *cyclic = true;
        return Bound {
            min: 0,
            max: 0,
            reaches_return: false,
        };
    }
    let block = &p.blocks[idx];
    let result = match block.role {
        // The interval ends here; nested entries are privilege errors
        // handled elsewhere — stop the bound walk at either boundary.
        BlockRole::ServiceReturn(_) => Bound {
            min: 0,
            max: 0,
            reaches_return: true,
        },
        BlockRole::ServiceEntry(_) => Bound {
            min: 0,
            max: 0,
            reaches_return: false,
        },
        _ => {
            let own = block.instr_count();
            let mut min = u64::MAX;
            let mut max = 0u64;
            let mut reaches = false;
            let mut any = false;
            for s in p.successors(idx) {
                any = true;
                let b = bound_from(p, s, memo, on_stack, cyclic);
                min = min.min(b.min);
                max = max.max(b.max);
                reaches |= b.reaches_return;
            }
            if !any {
                min = 0;
            }
            Bound {
                min: own.saturating_add(min),
                max: own.saturating_add(max),
                reaches_return: reaches,
            }
        }
    };
    on_stack.remove(&idx);
    memo.insert(idx, result);
    result
}

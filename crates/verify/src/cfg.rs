//! Control-flow graphs over generated instruction streams.
//!
//! A [`BlockCfg`] is built by expanding a [`BlockSpec`]'s deterministic
//! instruction stream (the same expansion the simulator executes) and
//! recording the distinct program counters and control-flow transitions
//! observed. Because generation is a pure function of `(spec, seed)`,
//! this is a static analysis: nothing the simulator later runs can
//! differ from what the CFG saw.
//!
//! The scan is bounded by a caller-supplied instruction cap so verifying
//! a large program stays cheap; structural violations (a stream escaping
//! its code region, a branch targeting an address outside the block)
//! stem from the spec's parameters and surface within the first loop
//! iteration when they occur at all.

use std::collections::{BTreeMap, BTreeSet};

use osprey_isa::BlockSpec;

/// Control-flow summary of one block's generated stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCfg {
    /// Distinct program counters observed, in address order.
    pub nodes: Vec<u64>,
    /// Distinct `(pc, next_pc)` transitions observed.
    pub edges: Vec<(u64, u64)>,
    /// Transitions that jump backwards (loop back-edges).
    pub back_edges: usize,
    /// First program counter observed outside the block's code region.
    pub escaped_pc: Option<u64>,
    /// First branch whose target lies outside the code region, as
    /// `(branch pc, target)`.
    pub out_of_range_target: Option<(u64, u64)>,
    /// Instructions actually scanned (min of the cap and the budget).
    pub scanned: u64,
}

impl BlockCfg {
    /// Builds the CFG by scanning at most `cap` instructions of the
    /// stream `spec.generate(seed)` would produce.
    pub fn from_spec(spec: &BlockSpec, seed: u64, cap: u64) -> Self {
        let lo = spec.base_pc;
        let hi = spec.base_pc.saturating_add(spec.code_footprint);
        let mut nodes = BTreeSet::new();
        let mut edges = BTreeMap::new();
        let mut back_edges = 0usize;
        let mut escaped_pc = None;
        let mut out_of_range_target = None;
        let mut scanned = 0u64;
        for instr in spec.generate(seed).take(cap as usize) {
            scanned += 1;
            if escaped_pc.is_none() && !(lo..hi).contains(&instr.pc) {
                escaped_pc = Some(instr.pc);
            }
            if let Some(b) = instr.branch {
                if out_of_range_target.is_none() && b.taken && !(lo..hi).contains(&b.target) {
                    out_of_range_target = Some((instr.pc, b.target));
                }
            }
            nodes.insert(instr.pc);
            let next = instr.next_pc();
            if edges.insert((instr.pc, next), ()).is_none() && next <= instr.pc {
                back_edges += 1;
            }
        }
        Self {
            nodes: nodes.into_iter().collect(),
            edges: edges.into_keys().collect(),
            back_edges,
            escaped_pc,
            out_of_range_target,
            scanned,
        }
    }

    /// Bytes of the code footprint the scan actually visited.
    pub fn visited_bytes(&self) -> u64 {
        self.nodes.len() as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_blocks_stay_in_range() {
        let spec = BlockSpec::new(0x40_0000, 2_000);
        let cfg = BlockCfg::from_spec(&spec, 7, 4_096);
        assert_eq!(cfg.scanned, 2_000);
        assert_eq!(cfg.escaped_pc, None);
        assert_eq!(cfg.out_of_range_target, None);
        assert!(!cfg.nodes.is_empty());
        assert!(cfg.visited_bytes() <= spec.code_footprint);
    }

    #[test]
    fn looping_blocks_have_back_edges() {
        // 10k instructions over 256 bytes of code must loop repeatedly.
        let spec = BlockSpec::new(0x1000, 10_000).with_code_footprint(256);
        let cfg = BlockCfg::from_spec(&spec, 3, 10_000);
        assert!(cfg.back_edges >= 1, "back edges: {}", cfg.back_edges);
    }

    #[test]
    fn scan_respects_the_cap() {
        let spec = BlockSpec::new(0x1000, 1_000_000);
        let cfg = BlockCfg::from_spec(&spec, 1, 64);
        assert_eq!(cfg.scanned, 64);
    }

    #[test]
    fn zero_footprint_blocks_are_caught() {
        let mut spec = BlockSpec::new(0x1000, 100);
        spec.code_footprint = 0;
        let cfg = BlockCfg::from_spec(&spec, 1, 16);
        // The loop back-edge targets base_pc, which is outside an empty
        // code region.
        assert!(cfg.out_of_range_target.is_some() || cfg.escaped_pc.is_some());
    }

    #[test]
    fn cfg_is_deterministic() {
        let spec = BlockSpec::new(0x40_0000, 5_000);
        let a = BlockCfg::from_spec(&spec, 9, 2_048);
        let b = BlockCfg::from_spec(&spec, 9, 2_048);
        assert_eq!(a, b);
    }
}

//! Intentionally-broken programs, one per diagnostic code.
//!
//! Each fixture is a small [`ProgramSpec`] constructed to trip exactly
//! one verifier check. They serve three purposes: regression tests
//! assert the exact code each one produces, `osprey verify --fixture`
//! demonstrates the diagnostics interactively, and the constructions
//! document what each code means in practice.

use osprey_isa::{BlockSpec, InstrMix, ServiceId};
use osprey_os::layout::{path_code_base, KERNEL_CODE_BASE};

use crate::program::{ProgramBlock, ProgramSpec};

/// A named broken program and the diagnostic it must produce.
pub struct Fixture {
    /// Fixture name (CLI `--fixture` argument).
    pub name: &'static str,
    /// The exact diagnostic code the verifier must emit.
    pub expected_code: &'static str,
    /// Builds the program.
    pub build: fn() -> ProgramSpec,
}

/// Every fixture, in diagnostic-code order.
pub const ALL: &[Fixture] = &[
    Fixture {
        name: "return-without-entry",
        expected_code: "OSPV001",
        build: return_without_entry,
    },
    Fixture {
        name: "nested-entry",
        expected_code: "OSPV002",
        build: nested_entry,
    },
    Fixture {
        name: "unbalanced-entry",
        expected_code: "OSPV003",
        build: unbalanced_entry,
    },
    Fixture {
        name: "user-runs-kernel-code",
        expected_code: "OSPV004",
        build: user_runs_kernel_code,
    },
    Fixture {
        name: "service-below-split",
        expected_code: "OSPV005",
        build: service_below_split,
    },
    Fixture {
        name: "out-of-range-mix",
        expected_code: "OSPV010",
        build: out_of_range_mix,
    },
    Fixture {
        name: "zero-budget",
        expected_code: "OSPV011",
        build: zero_budget,
    },
    Fixture {
        name: "bad-footprint",
        expected_code: "OSPV012",
        build: bad_footprint,
    },
    Fixture {
        name: "edge-out-of-range",
        expected_code: "OSPV013",
        build: edge_out_of_range,
    },
    Fixture {
        name: "empty-data-region",
        expected_code: "OSPV014",
        build: empty_data_region,
    },
    Fixture {
        name: "dead-block",
        expected_code: "OSPV020",
        build: dead_block,
    },
    Fixture {
        name: "cyclic-interval",
        expected_code: "OSPV021",
        build: cyclic_interval,
    },
    Fixture {
        name: "interval-over-budget",
        expected_code: "OSPV022",
        build: interval_over_budget,
    },
    Fixture {
        name: "empty-interval",
        expected_code: "OSPV023",
        build: empty_interval,
    },
];

/// Looks a fixture up by name.
pub fn by_name(name: &str) -> Option<&'static Fixture> {
    ALL.iter().find(|f| f.name == name)
}

/// A small well-formed program (one compute block, one bracketed
/// `sys_read` interval) that passes every check — the baseline the
/// broken fixtures deviate from.
pub fn ok() -> ProgramSpec {
    let mut p = ProgramSpec::new("ok");
    p.push(ProgramBlock::user(user_spec(), 1));
    p.push(ProgramBlock::entry(ServiceId::SysRead));
    p.push(ProgramBlock::service(
        ServiceId::SysRead,
        kernel_spec(ServiceId::SysRead, 400),
        2,
        "page_cache_hit",
    ));
    p.push(ProgramBlock::ret(ServiceId::SysRead));
    p
}

fn user_spec() -> BlockSpec {
    BlockSpec::new(0x40_0000, 500)
}

fn kernel_spec(service: ServiceId, instr: u64) -> BlockSpec {
    BlockSpec::new(path_code_base(service, 0), instr).with_mix(InstrMix::kernel_control())
}

fn return_without_entry() -> ProgramSpec {
    let mut p = ProgramSpec::new("return-without-entry");
    p.push(ProgramBlock::user(user_spec(), 1));
    p.push(ProgramBlock::ret(ServiceId::SysRead));
    p
}

fn nested_entry() -> ProgramSpec {
    let mut p = ProgramSpec::new("nested-entry");
    p.push(ProgramBlock::entry(ServiceId::SysRead));
    p.push(ProgramBlock::entry(ServiceId::SysWrite));
    p.push(ProgramBlock::service(
        ServiceId::SysWrite,
        kernel_spec(ServiceId::SysWrite, 300),
        1,
        "nested",
    ));
    p.push(ProgramBlock::ret(ServiceId::SysWrite));
    p
}

fn unbalanced_entry() -> ProgramSpec {
    let mut p = ProgramSpec::new("unbalanced-entry");
    p.push(ProgramBlock::user(user_spec(), 1));
    p.push(ProgramBlock::entry(ServiceId::SysRead));
    p.push(ProgramBlock::service(
        ServiceId::SysRead,
        kernel_spec(ServiceId::SysRead, 500),
        2,
        "never_returns",
    ));
    p
}

fn user_runs_kernel_code() -> ProgramSpec {
    let mut p = ProgramSpec::new("user-runs-kernel-code");
    p.push(ProgramBlock::user(BlockSpec::new(KERNEL_CODE_BASE, 500), 1));
    p
}

fn service_below_split() -> ProgramSpec {
    let mut p = ProgramSpec::new("service-below-split");
    p.push(ProgramBlock::entry(ServiceId::SysRead));
    p.push(ProgramBlock::service(
        ServiceId::SysRead,
        BlockSpec::new(0x40_0000, 300).with_mix(InstrMix::kernel_control()),
        1,
        "misplaced",
    ));
    p.push(ProgramBlock::ret(ServiceId::SysRead));
    p
}

fn out_of_range_mix() -> ProgramSpec {
    let mut spec = user_spec();
    // Constructed literally: the builder's debug assertion would reject
    // this, which is exactly why the verifier must catch it statically.
    spec.mix = InstrMix {
        load: 0.8,
        store: 0.7,
        ..InstrMix::balanced()
    };
    let mut p = ProgramSpec::new("out-of-range-mix");
    p.push(ProgramBlock::user(spec, 1));
    p
}

fn zero_budget() -> ProgramSpec {
    let mut p = ProgramSpec::new("zero-budget");
    p.push(ProgramBlock::user(BlockSpec::new(0x40_0000, 0), 1));
    p
}

fn bad_footprint() -> ProgramSpec {
    let mut spec = user_spec();
    spec.code_footprint = 0;
    let mut p = ProgramSpec::new("bad-footprint");
    p.push(ProgramBlock::user(spec, 1));
    p
}

fn edge_out_of_range() -> ProgramSpec {
    let mut p = ProgramSpec::new("edge-out-of-range");
    p.push(ProgramBlock::user(user_spec(), 1));
    p.edges.push((0, 5));
    p
}

fn empty_data_region() -> ProgramSpec {
    let mut spec = user_spec();
    spec.mem.footprint = 0;
    let mut p = ProgramSpec::new("empty-data-region");
    p.push(ProgramBlock::user(spec, 1));
    p
}

fn dead_block() -> ProgramSpec {
    let mut p = ProgramSpec::new("dead-block");
    p.push(ProgramBlock::user(user_spec(), 1));
    let orphan = ProgramBlock::user(BlockSpec::new(0x50_0000, 200), 2);
    // Appended without the implicit chain edge: nothing reaches it.
    p.blocks.push(orphan);
    p
}

fn cyclic_interval() -> ProgramSpec {
    let mut p = ProgramSpec::new("cyclic-interval");
    p.push(ProgramBlock::entry(ServiceId::SysPoll));
    let a = p.push(ProgramBlock::service(
        ServiceId::SysPoll,
        kernel_spec(ServiceId::SysPoll, 200),
        1,
        "scan",
    ));
    let b = p.push(ProgramBlock::service(
        ServiceId::SysPoll,
        kernel_spec(ServiceId::SysPoll, 100),
        2,
        "rescan",
    ));
    p.push(ProgramBlock::ret(ServiceId::SysPoll));
    // The retry loop: rescan can jump back to scan.
    p.edges.push((b, a));
    p
}

fn interval_over_budget() -> ProgramSpec {
    let mut p = ProgramSpec::new("interval-over-budget");
    p.push(ProgramBlock::entry(ServiceId::SysRead));
    p.push(ProgramBlock::service(
        ServiceId::SysRead,
        kernel_spec(ServiceId::SysRead, 100_000_000),
        1,
        "runaway",
    ));
    p.push(ProgramBlock::ret(ServiceId::SysRead));
    p
}

fn empty_interval() -> ProgramSpec {
    let mut p = ProgramSpec::new("empty-interval");
    p.push(ProgramBlock::entry(ServiceId::SysGettimeofday));
    p.push(ProgramBlock::ret(ServiceId::SysGettimeofday));
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::BlockRole;

    #[test]
    fn fixture_names_and_codes_are_unique() {
        let names: std::collections::HashSet<_> = ALL.iter().map(|f| f.name).collect();
        assert_eq!(names.len(), ALL.len());
        let codes: std::collections::HashSet<_> = ALL.iter().map(|f| f.expected_code).collect();
        assert_eq!(codes.len(), ALL.len());
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for f in ALL {
            assert_eq!(
                by_name(f.name).map(|x| x.expected_code),
                Some(f.expected_code)
            );
        }
        assert!(by_name("no-such-fixture").is_none());
    }

    #[test]
    fn baseline_program_is_bracketed() {
        let p = ok();
        assert!(matches!(p.blocks[1].role, BlockRole::ServiceEntry(_)));
        assert!(matches!(
            p.blocks.last().expect("non-empty").role,
            BlockRole::ServiceReturn(_)
        ));
    }
}

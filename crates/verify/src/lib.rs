//! Static program analysis for Osprey, run *before* simulation.
//!
//! Osprey's acceleration scheme rests on an invariant the paper states
//! but the simulator cannot cheaply re-check at runtime: an *OS service
//! interval* is a well-bracketed region — every switch to kernel mode is
//! matched by a return to user mode, and emulation mode replays exactly
//! the functional path detailed mode would have taken. A malformed
//! program silently produces garbage signatures and predictions. This
//! crate verifies the invariants statically:
//!
//! * [`program`] — the [`ProgramSpec`] graph IR the checks operate on,
//!   plus [`program_for_workload`], which expands a workload through a
//!   kernel into the exact block sequence the simulator would execute.
//! * [`cfg`] — [`BlockCfg`], a control-flow graph over a block's
//!   deterministic generated instruction stream.
//! * [`checks`] — the passes: privilege bracketing (OSPV001–005),
//!   spec well-formedness (OSPV010–014), and reachability / interval
//!   bounds (OSPV020–023). See the [`checks`] module table for codes.
//! * [`fixtures`] — one intentionally-broken program per diagnostic.
//!
//! Findings are [`osprey_report::Diagnostic`]s: a stable code, severity,
//! location, and message, renderable as a table or CSV.
//!
//! # Examples
//!
//! A well-formed program verifies cleanly; a broken one is flagged with
//! a stable code:
//!
//! ```
//! use osprey_verify::{fixtures, verify};
//!
//! assert!(verify(&fixtures::ok()).is_empty());
//!
//! let broken = fixtures::by_name("zero-budget").expect("fixture exists");
//! let diags = verify(&(broken.build)());
//! assert_eq!(diags[0].code, "OSPV011");
//! ```

pub mod cfg;
pub mod checks;
pub mod fixtures;
pub mod program;

pub use cfg::BlockCfg;
pub use checks::{verify, verify_with, VerifyConfig};
pub use program::{program_for_workload, BlockRole, ProgramBlock, ProgramSpec};

use osprey_os::Kernel;
use osprey_report::Diagnostic;
use osprey_workloads::Benchmark;

/// Expands and verifies one built-in benchmark at the given seed and
/// scale, with the default [`VerifyConfig`].
///
/// The expansion replays the simulator's own interleaving, so a clean
/// result here means the simulator will accept the same configuration.
pub fn verify_benchmark(benchmark: Benchmark, seed: u64, scale: f64) -> Vec<Diagnostic> {
    let mut workload = benchmark.instantiate_scaled(seed, scale);
    let mut kernel = Kernel::new(seed);
    let program = program_for_workload(benchmark.name(), workload.as_mut(), &mut kernel, seed);
    verify(&program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_fixture_is_clean() {
        assert_eq!(verify(&fixtures::ok()), Vec::new());
    }

    #[test]
    fn every_fixture_reports_exactly_its_code() {
        for f in fixtures::ALL {
            let diags = verify(&(f.build)());
            assert!(
                !diags.is_empty(),
                "{}: expected {} but got no diagnostics",
                f.name,
                f.expected_code
            );
            assert!(
                diags.iter().all(|d| d.code == f.expected_code),
                "{}: expected only {}, got {:?}",
                f.name,
                f.expected_code,
                diags
            );
        }
    }

    #[test]
    fn empty_program_is_clean() {
        assert!(verify(&ProgramSpec::new("empty")).is_empty());
    }

    #[test]
    fn small_benchmark_verifies_cleanly() {
        assert_eq!(verify_benchmark(Benchmark::Du, 1, 0.02), Vec::new());
    }
}

//! Criterion micro-benchmarks for Osprey's hot paths: cache accesses,
//! out-of-order core stepping, block generation, PLT lookups, and a
//! small end-to-end accelerated run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use osprey_core::accel::{AccelConfig, AcceleratedSim};
use osprey_core::Plt;
use osprey_cpu::{Core, CpuConfig, OooCore};
use osprey_isa::{BlockSpec, Privilege};
use osprey_mem::{Hierarchy, HierarchyConfig};
use osprey_sim::{FullSystemSim, SimConfig};
use osprey_workloads::Benchmark;

fn bench_cache_access(c: &mut Criterion) {
    c.bench_function("hierarchy_data_access_hit", |b| {
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        mem.data_access(0x1000, false, Privilege::User);
        b.iter(|| black_box(mem.data_access(black_box(0x1000), false, Privilege::User)));
    });
    c.bench_function("hierarchy_data_access_stream", |b| {
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64);
            black_box(mem.data_access(black_box(addr), false, Privilege::Kernel))
        });
    });
}

fn bench_ooo_step(c: &mut Criterion) {
    c.bench_function("ooo_step_10k_instructions", |b| {
        let spec = BlockSpec::new(0x40_0000, 10_000);
        b.iter(|| {
            let mut core = OooCore::new(CpuConfig::pentium4());
            let mut mem = Hierarchy::new(HierarchyConfig::default());
            for instr in spec.generate(1) {
                core.step(&instr, &mut mem, Privilege::User);
            }
            black_box(core.cycles())
        });
    });
}

fn bench_block_generation(c: &mut Criterion) {
    c.bench_function("blockgen_10k_instructions", |b| {
        let spec = BlockSpec::new(0x40_0000, 10_000);
        b.iter(|| black_box(spec.generate(black_box(7)).count()));
    });
}

fn bench_plt_lookup(c: &mut Criterion) {
    c.bench_function("plt_lookup_among_16_clusters", |b| {
        let mut plt = Plt::new(0.05);
        for i in 1..=16u64 {
            plt.learn(i * 3_000, i * 6_000, &Default::default());
        }
        b.iter(|| black_box(plt.lookup(black_box(24_100))));
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("detailed_iperf_tiny", |b| {
        b.iter(|| {
            let cfg = SimConfig::new(Benchmark::Iperf).with_scale(0.01);
            black_box(FullSystemSim::new(cfg).run_to_completion().total_cycles)
        });
    });
    g.bench_function("accelerated_iperf_tiny", |b| {
        b.iter(|| {
            let cfg = SimConfig::new(Benchmark::Iperf).with_scale(0.01);
            black_box(
                AcceleratedSim::new(cfg, AccelConfig::default())
                    .run()
                    .report
                    .total_cycles,
            )
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache_access,
    bench_ooo_step,
    bench_block_generation,
    bench_plt_lookup,
    bench_end_to_end
);
criterion_main!(benches);

//! Dependency-free micro-benchmarks for Osprey's hot paths: cache
//! accesses, out-of-order core stepping, block generation, PLT lookups,
//! and a small end-to-end accelerated run.
//!
//! The harness is a minimal `std::time::Instant` timer (warm-up pass,
//! then a measured pass long enough to amortize clock overhead). Run
//! with `cargo bench -q`; each line reports mean wall time per
//! iteration. Pass a substring argument to run a subset, e.g.
//! `cargo bench -q -- plt`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use osprey_core::accel::{AccelConfig, AcceleratedSim};
use osprey_core::Plt;
use osprey_cpu::{Core, CpuConfig, OooCore, Unfused};
use osprey_exec::{run_jobs, Job};
use osprey_isa::{BlockSpec, Privilege};
use osprey_mem::{Hierarchy, HierarchyConfig};
use osprey_sim::{FullSystemSim, SimConfig};
use osprey_workloads::Benchmark;

/// Minimum measured wall time per benchmark before reporting.
const TARGET: Duration = Duration::from_millis(200);

/// Times `f` repeatedly until [`TARGET`] elapses and prints the mean
/// iteration time. Skipped unless `name` contains the CLI filter.
fn bench(filter: &str, name: &str, mut f: impl FnMut()) {
    if !name.contains(filter) {
        return;
    }
    // Warm-up: populate caches and let the first-run costs drain.
    for _ in 0..3 {
        f();
    }
    let mut iters = 0u64;
    let start = Instant::now();
    while start.elapsed() < TARGET {
        for _ in 0..8 {
            f();
        }
        iters += 8;
    }
    let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    let (value, unit) = if per_iter >= 1e6 {
        (per_iter / 1e6, "ms")
    } else if per_iter >= 1e3 {
        (per_iter / 1e3, "µs")
    } else {
        (per_iter, "ns")
    };
    println!("{name:<34} {value:>10.3} {unit}/iter  ({iters} iters)");
}

fn bench_cache_access(filter: &str) {
    let mut mem = Hierarchy::new(HierarchyConfig::default());
    mem.data_access(0x1000, false, Privilege::User);
    bench(filter, "hierarchy_data_access_hit", || {
        black_box(mem.data_access(black_box(0x1000), false, Privilege::User));
    });

    let mut mem = Hierarchy::new(HierarchyConfig::default());
    let mut addr = 0u64;
    bench(filter, "hierarchy_data_access_stream", || {
        addr = addr.wrapping_add(64);
        black_box(mem.data_access(black_box(addr), false, Privilege::Kernel));
    });
}

fn bench_ooo_step(filter: &str) {
    let spec = BlockSpec::new(0x40_0000, 10_000);
    bench(filter, "ooo_step_10k_instructions", || {
        let mut core = OooCore::new(CpuConfig::pentium4());
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        for instr in spec.generate(1) {
            core.step(&instr, &mut mem, Privilege::User);
        }
        black_box(core.cycles());
    });
    // The fused generate-and-step hot path (DESIGN.md §10).
    bench(filter, "ooo_step_block_10k_instructions", || {
        let mut core = OooCore::new(CpuConfig::pentium4());
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        core.step_block(&spec, 1, &mut mem, Privilege::User);
        black_box(core.cycles());
    });
    // The pre-fusion reference: trait-default generate + step loop.
    bench(filter, "ooo_step_block_unfused_10k", || {
        let mut core = Unfused(OooCore::new(CpuConfig::pentium4()));
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        core.step_block(&spec, 1, &mut mem, Privilege::User);
        black_box(core.cycles());
    });
}

fn bench_block_generation(filter: &str) {
    let spec = BlockSpec::new(0x40_0000, 10_000);
    bench(filter, "blockgen_10k_instructions", || {
        black_box(spec.generate(black_box(7)).count());
    });
    bench(filter, "rungen_10k_instructions", || {
        black_box(spec.runs(black_box(7)).map(|r| r.len()).sum::<u64>());
    });
}

fn bench_plt_lookup(filter: &str) {
    let mut plt = Plt::new(0.05);
    for i in 1..=16u64 {
        plt.learn(i * 3_000, i * 6_000, &Default::default());
    }
    bench(filter, "plt_lookup_among_16_clusters", || {
        black_box(plt.lookup(black_box(24_100)));
    });
}

fn bench_end_to_end(filter: &str) {
    bench(filter, "detailed_iperf_tiny", || {
        let cfg = SimConfig::new(Benchmark::Iperf).with_scale(0.01);
        black_box(FullSystemSim::new(cfg).run_to_completion().total_cycles);
    });
    bench(filter, "accelerated_iperf_tiny", || {
        let cfg = SimConfig::new(Benchmark::Iperf).with_scale(0.01);
        black_box(
            AcceleratedSim::new(cfg, AccelConfig::default())
                .run()
                .report
                .total_cycles,
        );
    });
}

fn bench_exec_pool(filter: &str) {
    // Pool overhead: dispatch + collect for trivial jobs. Reported per
    // 64-job sweep; micro-timing of the jobs themselves stays serial so
    // contention never distorts the other benchmarks here.
    bench(filter, "exec_pool_64_trivial_jobs", || {
        let jobs: Vec<Job<u64>> = (0..64)
            .map(|i| Job::new("j", move || black_box(i as u64)))
            .collect();
        black_box(run_jobs(jobs, 4).results.len());
    });
    bench(filter, "exec_pool_serial_64_trivial_jobs", || {
        let jobs: Vec<Job<u64>> = (0..64)
            .map(|i| Job::new("j", move || black_box(i as u64)))
            .collect();
        black_box(run_jobs(jobs, 1).results.len());
    });
}

fn main() {
    // `cargo bench` passes `--bench`; treat the first non-flag argument
    // as a name filter, matching criterion's CLI convention.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();
    bench_cache_access(&filter);
    bench_ooo_step(&filter);
    bench_block_generation(&filter);
    bench_plt_lookup(&filter);
    bench_exec_pool(&filter);
    bench_end_to_end(&filter);
}

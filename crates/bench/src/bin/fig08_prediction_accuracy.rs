//! Fig. 8 — Execution time and IPC predicted by the accelerated
//! simulation vs full-system and application-only simulation, normalized
//! to full-system.
//!
//! Paper reference: average absolute error 3.2%, worst case 4.2% (du);
//! application-only errors reach 39.8%.
//!
//! Record-once/replay-many: each benchmark's detailed run is recorded
//! into `results/traces/` exactly once; the predictor is then evaluated
//! offline from the trace ([`osprey_trace::ReplaySim`]), never paying
//! detailed-simulation cost again. The wall-time ratio goes to
//! `results/fig08_prediction_accuracy_replay.json`.

use std::time::Duration;

use osprey_bench::{
    app_only, fmt2, record_trace, replay_strategy, scale_from_args, statistical, sweep_rows,
    write_replay_summary, L2_DEFAULT,
};
use osprey_report::Table;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    println!("Fig. 8: normalized execution time and IPC (Statistical, window 100)\n");
    let mut t = Table::new([
        "benchmark",
        "time App+OS",
        "time Pred",
        "time AppOnly",
        "IPC App+OS",
        "IPC Pred",
        "IPC AppOnly",
        "|err| Pred",
    ]);
    let mut errs = Vec::new();
    let rows = sweep_rows(
        "fig08_prediction_accuracy",
        &Benchmark::OS_INTENSIVE,
        move |b| {
            let (trace, full, record_wall) = record_trace("fig08", b, L2_DEFAULT, scale);
            let app = app_only(b, L2_DEFAULT, scale);
            let (pred, replay_wall) = replay_strategy(&trace, statistical());
            (full, pred, app, record_wall, replay_wall)
        },
    );
    let mut jobs = Vec::new();
    let (mut record_wall, mut replay_wall) = (Duration::ZERO, Duration::ZERO);
    for (b, (full, accel, app, rec, rep)) in Benchmark::OS_INTENSIVE.into_iter().zip(rows) {
        jobs.push((b.name().to_string(), rep));
        record_wall += rec;
        replay_wall += rep;
        let err = osprey_stats::summary::abs_relative_error(
            accel.report.total_cycles as f64,
            full.total_cycles as f64,
        );
        errs.push(err);
        t.row([
            b.name().to_string(),
            "1.00".to_string(),
            fmt2(accel.report.total_cycles as f64 / full.total_cycles as f64),
            fmt2(app.total_cycles as f64 / full.total_cycles as f64),
            "1.00".to_string(),
            fmt2(accel.report.ipc() / full.ipc()),
            fmt2(app.ipc() / full.ipc()),
            format!("{:.1}%", err * 100.0),
        ]);
    }
    println!("{t}");
    let avg = errs.iter().sum::<f64>() / errs.len() as f64;
    let worst = errs.iter().cloned().fold(0.0, f64::max);
    println!(
        "average |error| {:.1}%, worst {:.1}% (paper: 3.2% / 4.2%)",
        avg * 100.0,
        worst * 100.0
    );
    // The wall-time ratio is stderr + JSON only, keeping stdout byte-
    // identical whatever the machine or worker count.
    write_replay_summary("fig08_prediction_accuracy", jobs, record_wall, replay_wall);
    println!(
        "predictor evaluated offline from results/traces/ (wall-time ratio in \
         results/fig08_prediction_accuracy_replay.json)"
    );
    println!("Expected shape (paper): Pred column tracks 1.00 closely; AppOnly");
    println!("drastically underestimates execution time for every benchmark.");
}

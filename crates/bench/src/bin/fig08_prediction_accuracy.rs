//! Fig. 8 — Execution time and IPC predicted by the accelerated
//! simulation vs full-system and application-only simulation, normalized
//! to full-system.
//!
//! Paper reference: average absolute error 3.2%, worst case 4.2% (du);
//! application-only errors reach 39.8%.

use osprey_bench::{
    accelerated, app_only, detailed, fmt2, scale_from_args, statistical, sweep_rows, L2_DEFAULT,
};
use osprey_report::Table;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    println!("Fig. 8: normalized execution time and IPC (Statistical, window 100)\n");
    let mut t = Table::new([
        "benchmark",
        "time App+OS",
        "time Pred",
        "time AppOnly",
        "IPC App+OS",
        "IPC Pred",
        "IPC AppOnly",
        "|err| Pred",
    ]);
    let mut errs = Vec::new();
    let rows = sweep_rows(
        "fig08_prediction_accuracy",
        &Benchmark::OS_INTENSIVE,
        move |b| {
            (
                detailed(b, L2_DEFAULT, scale),
                accelerated(b, L2_DEFAULT, scale, statistical()),
                app_only(b, L2_DEFAULT, scale),
            )
        },
    );
    for (b, (full, accel, app)) in Benchmark::OS_INTENSIVE.into_iter().zip(rows) {
        let err = osprey_stats::summary::abs_relative_error(
            accel.report.total_cycles as f64,
            full.total_cycles as f64,
        );
        errs.push(err);
        t.row([
            b.name().to_string(),
            "1.00".to_string(),
            fmt2(accel.report.total_cycles as f64 / full.total_cycles as f64),
            fmt2(app.total_cycles as f64 / full.total_cycles as f64),
            "1.00".to_string(),
            fmt2(accel.report.ipc() / full.ipc()),
            fmt2(app.ipc() / full.ipc()),
            format!("{:.1}%", err * 100.0),
        ]);
    }
    println!("{t}");
    let avg = errs.iter().sum::<f64>() / errs.len() as f64;
    let worst = errs.iter().cloned().fold(0.0, f64::max);
    println!(
        "average |error| {:.1}%, worst {:.1}% (paper: 3.2% / 4.2%)",
        avg * 100.0,
        worst * 100.0
    );
    println!("Expected shape (paper): Pred column tracks 1.00 closely; AppOnly");
    println!("drastically underestimates execution time for every benchmark.");
}

//! Table 2 — Simulation speedup per benchmark: the paper's Eq. 10
//! estimate (using the measured mode slowdowns) plus the speedup Osprey
//! can measure directly, since unlike Simics it *can* switch between
//! detailed simulation and fast-forwarding dynamically.
//!
//! Paper reference: estimated 2.8x (ab-rand) to 15.6x (iperf), geometric
//! mean 4.9x, against a 133x detailed/emulation cost ratio. Osprey's
//! compiled cores have a much smaller mode-cost ratio, so its Eq. 10
//! estimates are lower; the paper-ratio column applies Eq. 10 with the
//! paper's 1/133 for comparison.

use osprey_bench::{accelerated, detailed, scale_from_args, statistical, sweep_rows, L2_DEFAULT};
use osprey_core::{estimated_speedup, measure_mode_slowdowns};
use osprey_report::Table;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    println!("Table 2: simulation speedups (Statistical strategy, scale {scale})\n");
    let modes = measure_mode_slowdowns(Benchmark::AbRand, 1, (scale * 0.25).min(0.25));
    let ratio = modes.profile_over_full();
    let mut t = Table::new([
        "benchmark",
        "coverage",
        "instr cov",
        "Eq.10 est (x)",
        "Eq.10 @1/133 (x)",
        "measured wall (x)",
    ]);
    let mut est = Vec::new();
    let mut paper_est = Vec::new();
    let mut wall = Vec::new();
    let rows = sweep_rows("table2_speedups", &Benchmark::OS_INTENSIVE, move |b| {
        (
            detailed(b, L2_DEFAULT, scale),
            accelerated(b, L2_DEFAULT, scale, statistical()),
        )
    });
    for (b, (full, out)) in Benchmark::OS_INTENSIVE.into_iter().zip(rows) {
        let n = out.report.total_instructions;
        // X counts only the OS instructions fast-forwarded in emulation;
        // user code and learning periods stay in detailed mode.
        let x = out.stats.predicted_os_instructions;
        let s_est = estimated_speedup(n, x, ratio);
        let s_paper = estimated_speedup(n, x, 1.0 / 133.0);
        let s_wall = full.wall.as_secs_f64() / out.report.wall.as_secs_f64().max(1e-9);
        est.push(s_est);
        paper_est.push(s_paper);
        wall.push(s_wall);
        t.row([
            b.name().to_string(),
            format!("{:.0}%", out.coverage() * 100.0),
            format!("{:.0}%", x as f64 / n as f64 * 100.0),
            format!("{s_est:.1}"),
            format!("{s_paper:.1}"),
            format!("{s_wall:.1}"),
        ]);
    }
    t.row([
        "gmean".to_string(),
        "".to_string(),
        "".to_string(),
        format!("{:.1}", osprey_stats::geometric_mean(&est)),
        format!("{:.1}", osprey_stats::geometric_mean(&paper_est)),
        format!("{:.1}", osprey_stats::geometric_mean(&wall)),
    ]);
    println!("{t}");
    println!(
        "measured T_profile/T_full = 1/{:.1}; the paper's Simics ratio was 1/133",
        modes.ooo_cache
    );
    println!("Expected shape (paper): iperf highest, ab-rand/find-od lowest,");
    println!("substantial speedups throughout (paper gmean 4.9x at 1/133).");
}

//! Ablation — minimum probability of occurrence p_min (the paper uses
//! 3%, which sizes the initial learning window to ~100 at 95% DoC).
//!
//! Smaller p_min means longer learning windows (lower coverage, better
//! capture of rare behavior points); larger p_min the reverse.

use osprey_bench::{accelerated_with, detailed, pct, scale_from_args, sweep_rows, L2_DEFAULT};
use osprey_core::accel::AccelConfig;
use osprey_core::RelearnStrategy;
use osprey_report::Table;
use osprey_stats::learning_window;
use osprey_workloads::Benchmark;

const P_MINS: [f64; 5] = [0.01, 0.02, 0.03, 0.05, 0.10];

fn main() {
    let scale = scale_from_args();
    println!("Ablation: p_min and the derived learning window (scale {scale})\n");
    const BENCHES: [Benchmark; 2] = [Benchmark::AbRand, Benchmark::Iperf];
    let rows = sweep_rows("ablation_pmin", &BENCHES, move |b| {
        let full = detailed(b, L2_DEFAULT, scale);
        let outs: Vec<_> = P_MINS
            .iter()
            .map(|&p_min| {
                let window = learning_window(p_min, 0.95).unwrap();
                let cfg = AccelConfig {
                    learning_window: window,
                    strategy: RelearnStrategy::Statistical {
                        p_min,
                        alpha: 0.05,
                        min_epos: 4,
                    },
                    ..AccelConfig::default()
                };
                (window, accelerated_with(b, L2_DEFAULT, scale, cfg))
            })
            .collect();
        (full, outs)
    });
    for (b, (full, outs)) in BENCHES.into_iter().zip(rows) {
        let mut t = Table::new(["p_min", "window", "coverage", "|error|"]);
        for (p_min, (window, out)) in P_MINS.into_iter().zip(outs) {
            t.row([
                format!("{:.0}%", p_min * 100.0),
                window.to_string(),
                pct(out.coverage()),
                pct(osprey_stats::summary::abs_relative_error(
                    out.report.total_cycles as f64,
                    full.total_cycles as f64,
                )),
            ]);
        }
        println!("{b}:\n{t}");
    }
}

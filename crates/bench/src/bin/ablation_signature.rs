//! Ablation — instruction-count signatures vs mix-extended signatures
//! (the paper's §3 future work: "other metrics such as the mix of
//! instructions ... may also serve as good bases for constructing
//! signatures").
//!
//! Clusters every OS service's simulated intervals offline under both
//! schemes and compares cluster count, cycle CV, and the cycle-prediction
//! error of a leave-in lookup.

use osprey_bench::{detailed, scale_from_args, sweep_rows, L2_DEFAULT};
use osprey_core::signature::{MixPlt, MixSignature};
use osprey_core::Plt;
use osprey_report::Table;
use osprey_workloads::Benchmark;
use std::collections::BTreeMap;

fn main() {
    let scale = scale_from_args();
    println!("Ablation: count-only vs mix-extended behavior signatures (scale {scale})\n");
    let mut t = Table::new([
        "benchmark",
        "clusters (count)",
        "clusters (mix)",
        "cycle CV (count)",
        "cycle CV (mix)",
    ]);
    let reports = sweep_rows("ablation_signature", &Benchmark::OS_INTENSIVE, move |b| {
        detailed(b, L2_DEFAULT, scale)
    });
    for (b, report) in Benchmark::OS_INTENSIVE.into_iter().zip(reports) {
        let mut per_service: BTreeMap<_, Vec<&osprey_sim::IntervalRecord>> = BTreeMap::new();
        for r in &report.intervals {
            per_service.entry(r.service).or_default().push(r);
        }
        let (mut n_count, mut n_mix) = (0usize, 0usize);
        let (mut cv_count, mut cv_mix) = (0.0f64, 0.0f64);
        let mut services = 0.0;
        for records in per_service.values() {
            if records.len() < 2 {
                continue;
            }
            services += 1.0;
            let mut count_plt = Plt::new(0.05);
            let mut mix_plt = MixPlt::new(0.05);
            for r in records {
                count_plt.learn(r.instructions.max(1), r.cycles, &r.caches);
                mix_plt.learn(MixSignature::from_record(r), r.cycles);
            }
            n_count += count_plt.len();
            n_mix += mix_plt.len();
            cv_count += count_plt.mean_cycles_cv();
            cv_mix += mix_plt.mean_cycles_cv();
        }
        t.row([
            b.name().to_string(),
            n_count.to_string(),
            n_mix.to_string(),
            format!("{:.3}", cv_count / services),
            format!("{:.3}", cv_mix / services),
        ]);
    }
    println!("{t}");
    println!("Consistent with the paper's observation: the extra mix components add");
    println!("clusters but barely improve cycle uniformity — instruction count alone");
    println!("already identifies behavior points, so the paper's simpler signature");
    println!("is justified.");
}

//! Fig. 6 — Coefficient of variation of execution time and IPC, when all
//! instances of an OS service form one big cluster ("Non-Clustered") vs
//! when they are grouped by scaled clusters ("Clustered").
//!
//! Paper reference: execution-time CV drops ~4.7x on average (0.72 ->
//! 0.15); IPC CV from 0.13 to 0.08.

use osprey_bench::{detailed, scale_from_args, sweep_rows, L2_DEFAULT};
use osprey_report::Table;
use osprey_stats::Streaming;
use osprey_workloads::Benchmark;
use std::collections::BTreeMap;

fn main() {
    let scale = scale_from_args();
    println!("Fig. 6: CV of cycles and IPC, non-clustered vs scaled clusters (scale {scale})\n");
    let mut t = Table::new([
        "benchmark",
        "cycles CV raw",
        "cycles CV clustered",
        "IPC CV raw",
        "IPC CV clustered",
    ]);
    let mut sums = [0.0f64; 4];
    let reports = sweep_rows("fig06_cluster_cv", &Benchmark::OS_INTENSIVE, move |b| {
        detailed(b, L2_DEFAULT, scale)
    });
    for (b, report) in Benchmark::OS_INTENSIVE.into_iter().zip(reports) {
        // Group intervals per service.
        let mut per_service: BTreeMap<_, Vec<&osprey_sim::IntervalRecord>> = BTreeMap::new();
        for r in &report.intervals {
            per_service.entry(r.service).or_default().push(r);
        }
        let (mut raw_cyc, mut clu_cyc, mut raw_ipc, mut clu_ipc) = (0.0, 0.0, 0.0, 0.0);
        let mut services = 0.0;
        for records in per_service.values() {
            if records.len() < 2 {
                continue;
            }
            services += 1.0;
            // Non-clustered: one big cluster per service.
            let cyc = Streaming::from_iter(records.iter().map(|r| r.cycles as f64));
            let ipc = Streaming::from_iter(records.iter().map(|r| r.ipc()));
            raw_cyc += cyc.cv();
            raw_ipc += ipc.cv();
            // Clustered: group by the scaled-cluster signature rule and
            // weight each cluster's CV by its member count.
            let mut plt = osprey_core::Plt::new(0.05);
            for r in records {
                plt.learn(r.instructions.max(1), r.cycles, &r.caches);
            }
            clu_cyc += plt.mean_cycles_cv();
            // IPC CV within clusters: recompute by re-matching records.
            let mut groups: BTreeMap<usize, Streaming> = BTreeMap::new();
            for r in records {
                let sig = r.instructions.max(1);
                let idx = plt
                    .clusters()
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.matches(sig))
                    .min_by(|(_, a), (_, b)| a.distance(sig).partial_cmp(&b.distance(sig)).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                groups.entry(idx).or_default().push(r.ipc());
            }
            let total: u64 = groups.values().map(|s| s.count()).sum();
            clu_ipc += groups
                .values()
                .map(|s| s.cv() * s.count() as f64)
                .sum::<f64>()
                / total.max(1) as f64;
        }
        let row = [
            raw_cyc / services,
            clu_cyc / services,
            raw_ipc / services,
            clu_ipc / services,
        ];
        sums[0] += row[0];
        sums[1] += row[1];
        sums[2] += row[2];
        sums[3] += row[3];
        t.row([
            b.name().to_string(),
            format!("{:.3}", row[0]),
            format!("{:.3}", row[1]),
            format!("{:.3}", row[2]),
            format!("{:.3}", row[3]),
        ]);
    }
    let n = Benchmark::OS_INTENSIVE.len() as f64;
    t.row([
        "average".to_string(),
        format!("{:.3}", sums[0] / n),
        format!("{:.3}", sums[1] / n),
        format!("{:.3}", sums[2] / n),
        format!("{:.3}", sums[3] / n),
    ]);
    println!("{t}");
    println!("Expected shape (paper): clustering cuts the cycles CV severalfold");
    println!("(0.72 -> 0.15 on average) and modestly reduces the already-low IPC CV.");
}

//! Fig. 4 — Execution time of `sys_read` at every invocation, for ab-rand
//! and ab-seq.
//!
//! Paper reference: highly variable (≈2,000–50,000 cycles) with a small
//! number of repeated behavior points; ab-seq shows phase changes.

use osprey_bench::{detailed, scale_from_args, sweep_rows, L2_DEFAULT};
use osprey_isa::ServiceId;
use osprey_report::scatter;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    const BENCHES: [Benchmark; 2] = [Benchmark::AbRand, Benchmark::AbSeq];
    let reports = sweep_rows("fig04_sysread_timeline", &BENCHES, move |b| {
        detailed(b, L2_DEFAULT, scale)
    });
    for (b, report) in BENCHES.into_iter().zip(reports) {
        let series = report.service_timeline(ServiceId::SysRead);
        println!(
            "Fig. 4 ({b}): sys_read cycles over {} invocations",
            series.len()
        );
        let pts: Vec<(f64, f64)> = series
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64, c as f64))
            .collect();
        println!("{}", scatter(&pts, 100, 18));
        // Emit the raw series as CSV for external plotting.
        let rows: Vec<Vec<String>> =
            std::iter::once(vec!["invocation".to_string(), "cycles".to_string()])
                .chain(
                    series
                        .iter()
                        .enumerate()
                        .map(|(i, c)| vec![i.to_string(), c.to_string()]),
                )
                .collect();
        let path = format!("fig04_{}.csv", b.name());
        std::fs::write(&path, osprey_report::to_csv(&rows)).expect("write csv");
        println!("(raw series written to {path})\n");
    }
    println!("Expected shape (paper): multiple distinct cycle levels revisited");
    println!("irregularly; ab-seq levels shift as the requested file changes.");
}

//! Fig. 9 — L1I / L1D / L2 miss rates: full-system simulation vs the
//! accelerated simulation's (measured + predicted) rates.
//!
//! Paper reference: absolute differences of 1% or less (1.4% worst, L2
//! of find-od).

use osprey_bench::{accelerated, detailed, scale_from_args, statistical, sweep_rows, L2_DEFAULT};
use osprey_report::Table;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    println!("Fig. 9: cache miss rates, full-system vs predicted (scale {scale})\n");
    let mut t = Table::new([
        "benchmark",
        "L1I full",
        "L1I pred",
        "L1D full",
        "L1D pred",
        "L2 full",
        "L2 pred",
        "max |diff|",
    ]);
    let rows = sweep_rows(
        "fig09_missrate_accuracy",
        &Benchmark::OS_INTENSIVE,
        move |b| {
            (
                detailed(b, L2_DEFAULT, scale),
                accelerated(b, L2_DEFAULT, scale, statistical()),
            )
        },
    );
    for (b, (full, accel)) in Benchmark::OS_INTENSIVE.into_iter().zip(rows) {
        let rows = [
            (full.l1i_miss_rate(), accel.report.l1i_miss_rate()),
            (full.l1d_miss_rate(), accel.report.l1d_miss_rate()),
            (full.l2_miss_rate(), accel.report.l2_miss_rate()),
        ];
        let maxdiff = rows.iter().map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        t.row([
            b.name().to_string(),
            format!("{:.2}%", rows[0].0 * 100.0),
            format!("{:.2}%", rows[0].1 * 100.0),
            format!("{:.2}%", rows[1].0 * 100.0),
            format!("{:.2}%", rows[1].1 * 100.0),
            format!("{:.2}%", rows[2].0 * 100.0),
            format!("{:.2}%", rows[2].1 * 100.0),
            format!("{:.2}pp", maxdiff * 100.0),
        ]);
    }
    println!("{t}");
    println!("Expected shape (paper): predicted rates within ~1 percentage point of");
    println!("full simulation, L2 slightly less accurate than L1.");
}

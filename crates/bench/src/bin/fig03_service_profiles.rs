//! Fig. 3 — Average and range (mean ± std dev) of per-interval cycles and
//! IPC for every OS service invoked more than once, for ab-rand and
//! ab-seq.
//!
//! Paper reference: services run a few thousand to a few tens of
//! thousands of cycles, IPC between 0.09 and 0.47, with large ranges.

use osprey_bench::{detailed, scale_from_args, sweep_rows, L2_DEFAULT};
use osprey_report::Table;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    const BENCHES: [Benchmark; 2] = [Benchmark::AbRand, Benchmark::AbSeq];
    let reports = sweep_rows("fig03_service_profiles", &BENCHES, move |b| {
        detailed(b, L2_DEFAULT, scale)
    });
    for (b, report) in BENCHES.into_iter().zip(reports) {
        println!("Fig. 3 ({b}): per-service cycles and IPC (mean +/- std dev)\n");
        let mut t = Table::new(["service", "n", "cycles", "+/-", "IPC", "+/-"]);
        for s in report.service_summaries() {
            if s.count < 2 {
                continue;
            }
            t.row([
                s.service.name().to_string(),
                s.count.to_string(),
                format!("{:.0}", s.cycles.mean()),
                format!("{:.0}", s.cycles.population_std_dev()),
                format!("{:.3}", s.ipc.mean()),
                format!("{:.3}", s.ipc.population_std_dev()),
            ]);
        }
        println!("{t}");
    }
    println!("Expected shape (paper): thousands-to-tens-of-thousands of cycles per");
    println!("service, low IPC (~0.1-0.5), wide ranges, and per-benchmark differences.");
}

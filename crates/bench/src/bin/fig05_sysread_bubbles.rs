//! Fig. 5 — Bubble histogram of `sys_read` behavior points: instruction
//! bins (1000) x cycle bins (4000); bubble area ~ occurrences.
//!
//! Paper reference: few large bubbles — occurrences concentrate into a
//! handful of (instructions, cycles) clusters, and for a given
//! instruction bin the cycles fall in a narrow range.

use osprey_bench::{detailed, scale_from_args, sweep_rows, L2_DEFAULT};
use osprey_isa::ServiceId;
use osprey_report::Table;
use osprey_stats::BubbleHistogram;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    const BENCHES: [Benchmark; 2] = [Benchmark::AbRand, Benchmark::AbSeq];
    let reports = sweep_rows("fig05_sysread_bubbles", &BENCHES, move |b| {
        detailed(b, L2_DEFAULT, scale)
    });
    for (b, report) in BENCHES.into_iter().zip(reports) {
        let mut hist = BubbleHistogram::new(1000.0, 4000.0);
        for r in &report.intervals {
            if r.service == ServiceId::SysRead {
                hist.add(r.instructions as f64, r.cycles as f64);
            }
        }
        println!("Fig. 5 ({b}): sys_read bubbles (instr bin x cycle bin -> count)\n");
        let mut t = Table::new(["instr bin center", "cycle bin center", "count"]);
        let mut bubbles = hist.bubbles();
        bubbles.sort_by_key(|bb| std::cmp::Reverse(bb.count));
        for bb in &bubbles {
            let (x, y) = hist.cell_center(bb.x_bin, bb.y_bin);
            t.row([format!("{x:.0}"), format!("{y:.0}"), bb.count.to_string()]);
        }
        println!("{t}");
        println!(
            "occupied cells: {}, top-5 concentration: {:.1}%\n",
            bubbles.len(),
            hist.concentration(5) * 100.0
        );
    }
    println!("Expected shape (paper): most occurrences in a few cells (high top-5");
    println!("concentration); per instruction bin, cycles span few cycle bins.");
}

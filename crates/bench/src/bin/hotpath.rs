//! `hotpath` — the standing hot-path performance gate (DESIGN.md §10).
//!
//! Measures detailed-mode (ooo-cache) and emulation-mode instruction
//! throughput for every benchmark's real block stream — the exact
//! `(BlockSpec, seed, privilege)` sequence `FullSystemSim` executes —
//! through the fused `Core::step_block` hot path and through the
//! unfused per-instruction reference ([`Unfused`]), and records the
//! per-benchmark throughputs plus geomean speedups in
//! `results/BENCH_hotpath.json`.
//!
//! Every invocation also re-proves the optimization invisible: fused
//! and unfused runs must agree on cycles, retired counters, and every
//! cache statistic for every stream, and one full-system run per mode
//! must produce an identical `RunReport` under
//! [`SimConfig::with_reference_core`].
//!
//! Usage:
//!
//! ```text
//! hotpath [scale]      measure and rewrite results/BENCH_hotpath.json
//! hotpath --check      measure and exit non-zero if the committed
//!                      baseline is malformed or the measured geomean
//!                      speedup regressed by more than 15%
//! ```
//!
//! `OSPREY_SCALE` scales the per-benchmark instruction budget;
//! `OSPREY_HOTPATH_REBASE=1` with `--check` rewrites the baseline
//! instead of failing. Stream construction fans out through the
//! experiment engine (`$OSPREY_JOBS` workers); the timed runs are
//! always serial so jobs never distort each other's clocks.

use std::time::Instant;

use osprey_bench::{fmt2, sweep_rows, SEED};
use osprey_cpu::{Core, CpuConfig, EmulationCore, OooCore, Unfused};
use osprey_isa::{BlockSpec, Privilege};
use osprey_mem::{Hierarchy, HierarchyConfig};
use osprey_os::Kernel;
use osprey_sim::{FullSystemSim, RunReport, SimConfig};
use osprey_workloads::{Benchmark, WorkItem};

/// Baseline instruction budget per benchmark stream (scaled by
/// `OSPREY_SCALE` / argv).
const BUDGET: u64 = 400_000;

/// Timed repetitions per (benchmark, mode, path); the minimum wall time
/// is kept, which is robust against host load spikes.
const REPS: u32 = 3;

/// Relative geomean-speedup loss that fails `--check`.
const TOLERANCE: f64 = 0.15;

/// Where the committed baseline lives.
const BASELINE: &str = "results/BENCH_hotpath.json";

/// One benchmark's block stream: what the machine would feed the core.
struct Stream {
    name: &'static str,
    blocks: Vec<(BlockSpec, u64, Privilege)>,
    instructions: u64,
}

/// Expands `benchmark` into the `(spec, seed, privilege)` stream the
/// simulator executes — user compute blocks seeded exactly like
/// `FullSystemSim`, kernel service blocks via `Kernel::handle` — capped
/// at `budget` instructions.
fn stream_for(benchmark: Benchmark, budget: u64) -> Stream {
    let mut workload = benchmark.instantiate_scaled(SEED, 0.3);
    let mut kernel = Kernel::new(SEED);
    let mut blocks = Vec::new();
    let mut user_blocks = 0u64;
    let mut now = 0u64;
    let mut instructions = 0u64;
    while instructions < budget {
        let Some(item) = workload.next_item() else {
            break;
        };
        match item {
            WorkItem::Compute(spec) => {
                let s = SEED ^ user_blocks.wrapping_mul(0x517c_c1b7_2722_0a95);
                instructions += spec.instr_count;
                blocks.push((spec, s, Privilege::User));
                user_blocks += 1;
            }
            WorkItem::Call(req) => {
                let inv = kernel.handle(&req, now);
                instructions += inv.instr_count();
                for (block, s) in inv.block_seeds() {
                    blocks.push((*block, s, Privilege::Kernel));
                }
            }
        }
        now += 1_000;
    }
    assert!(
        !blocks.is_empty(),
        "{} produced no blocks",
        benchmark.name()
    );
    Stream {
        name: benchmark.name(),
        blocks,
        instructions,
    }
}

/// Runs the whole stream through a fresh core + hierarchy and returns
/// the end state for equivalence checking.
fn run_stream<C: Core>(mut core: C, stream: &Stream) -> (C, Hierarchy) {
    let mut mem = Hierarchy::new(HierarchyConfig::pentium4(osprey_bench::L2_DEFAULT));
    for (spec, seed, owner) in &stream.blocks {
        core.step_block(spec, *seed, &mut mem, *owner);
    }
    (core, mem)
}

/// Best-of-[`REPS`] wall seconds for one (stream, core) combination.
fn time_stream<C: Core>(make: impl Fn() -> C, stream: &Stream) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let started = Instant::now();
        let (core, _) = run_stream(make(), stream);
        let secs = started.elapsed().as_secs_f64();
        assert!(core.counters().instructions > 0);
        best = best.min(secs);
    }
    best
}

/// Throughput pair for one execution mode over one stream.
struct ModeRow {
    fused_mips: f64,
    unfused_mips: f64,
    speedup: f64,
}

/// Measures fused vs unfused over `stream`, first asserting the two
/// paths are observationally identical on it.
fn measure_mode<C: Core>(make: impl Fn() -> C + Copy, stream: &Stream) -> ModeRow {
    let (fused, mem_fused) = run_stream(make(), stream);
    let (unfused, mem_unfused) = run_stream(Unfused(make()), stream);
    assert_eq!(
        fused.cycles(),
        unfused.cycles(),
        "{}: fused/unfused cycles diverge",
        stream.name
    );
    assert_eq!(
        fused.counters(),
        unfused.counters(),
        "{}: fused/unfused counters diverge",
        stream.name
    );
    assert_eq!(
        mem_fused.snapshot(),
        mem_unfused.snapshot(),
        "{}: fused/unfused cache stats diverge",
        stream.name
    );
    let fused_secs = time_stream(make, stream);
    let unfused_secs = time_stream(move || Unfused(make()), stream);
    let mips = |secs: f64| stream.instructions as f64 / secs / 1e6;
    ModeRow {
        fused_mips: mips(fused_secs),
        unfused_mips: mips(unfused_secs),
        speedup: unfused_secs / fused_secs,
    }
}

/// One benchmark's measured row.
struct Row {
    name: &'static str,
    instructions: u64,
    detailed: ModeRow,
    emulation: ModeRow,
}

/// The deterministic slice of a [`RunReport`] (everything but the wall
/// clock), for fused-vs-reference identity assertions.
fn report_key(r: &RunReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.total_instructions,
        r.user_instructions,
        r.os_instructions,
        r.total_cycles,
        r.caches,
        r.measured_caches,
        r.intervals.clone(),
    )
}

/// Full-system identity: a detailed run on the fused core and on the
/// unfused reference core must produce the same `RunReport`.
fn assert_full_system_identity() {
    let cfg = SimConfig::new(Benchmark::Du).with_seed(3).with_scale(0.05);
    let fused = FullSystemSim::new(cfg.clone()).run();
    let reference = FullSystemSim::new(cfg.with_reference_core()).run();
    assert_eq!(
        report_key(&fused),
        report_key(&reference),
        "full-system RunReport diverges between fused and reference cores"
    );
}

/// Geometric mean of the rows' speedups under `pick`.
fn geomean(rows: &[Row], pick: impl Fn(&Row) -> f64) -> f64 {
    let n = rows.len() as f64;
    (rows.iter().map(|r| pick(r).ln()).sum::<f64>() / n).exp()
}

/// Renders the results document (schema `osprey-hotpath-v1`).
fn to_json(rows: &[Row], budget: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"osprey-hotpath-v1\",\n");
    out.push_str(&format!("  \"budget_instructions\": {budget},\n"));
    out.push_str(&format!("  \"reps\": {REPS},\n"));
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"instructions\": {}, \
             \"detailed_fused_mips\": {}, \"detailed_unfused_mips\": {}, \
             \"detailed_speedup\": {}, \
             \"emulation_fused_mips\": {}, \"emulation_unfused_mips\": {}, \
             \"emulation_speedup\": {} }}{sep}\n",
            r.name,
            r.instructions,
            fmt2(r.detailed.fused_mips),
            fmt2(r.detailed.unfused_mips),
            fmt2(r.detailed.speedup),
            fmt2(r.emulation.fused_mips),
            fmt2(r.emulation.unfused_mips),
            fmt2(r.emulation.speedup),
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"geomean_detailed_speedup\": {},\n",
        fmt2(geomean(rows, |r| r.detailed.speedup))
    ));
    out.push_str(&format!(
        "  \"geomean_emulation_speedup\": {}\n",
        fmt2(geomean(rows, |r| r.emulation.speedup))
    ));
    out.push_str("}\n");
    out
}

/// Extracts the first number following `"key":` in a JSON document
/// produced by [`to_json`] (flat keys, no nesting tricks).
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Validates the committed baseline's schema, returning its geomean
/// detailed speedup.
fn validate_baseline(doc: &str) -> Result<f64, String> {
    if !doc.contains("\"schema\": \"osprey-hotpath-v1\"") {
        return Err("missing or wrong \"schema\" (want osprey-hotpath-v1)".into());
    }
    let benchmarks = doc.matches("\"name\":").count();
    if benchmarks != Benchmark::ALL.len() {
        return Err(format!(
            "expected {} benchmark rows, found {benchmarks}",
            Benchmark::ALL.len()
        ));
    }
    for key in [
        "budget_instructions",
        "detailed_fused_mips",
        "detailed_unfused_mips",
        "detailed_speedup",
        "emulation_fused_mips",
        "emulation_unfused_mips",
        "emulation_speedup",
        "geomean_emulation_speedup",
    ] {
        if !doc.contains(&format!("\"{key}\":")) {
            return Err(format!("missing \"{key}\""));
        }
    }
    json_number(doc, "geomean_detailed_speedup")
        .ok_or_else(|| "missing \"geomean_detailed_speedup\"".into())
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let scale = if check {
        0.25
    } else {
        osprey_bench::scale_from_args()
    };
    let budget = ((BUDGET as f64 * scale) as u64).max(20_000);

    assert_full_system_identity();

    // Stream construction (workload instantiation + kernel expansion) is
    // the parallel-safe part; fan it out across $OSPREY_JOBS workers.
    let streams = sweep_rows("hotpath", &Benchmark::ALL, move |b| stream_for(b, budget));

    // Timed runs stay serial: parallel timing jobs would distort each
    // other's wall clocks.
    let rows: Vec<Row> = streams
        .iter()
        .map(|s| Row {
            name: s.name,
            instructions: s.instructions,
            detailed: measure_mode(|| OooCore::new(CpuConfig::pentium4()), s),
            emulation: measure_mode(EmulationCore::new, s),
        })
        .collect();

    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>8}   {:>10} {:>10} {:>8}",
        "benchmark", "kinstr", "det-fused", "det-ref", "speedup", "emu-fused", "emu-ref", "speedup"
    );
    for r in &rows {
        println!(
            "{:<10} {:>6} {:>9}M {:>9}M {:>7}x   {:>9}M {:>9}M {:>7}x",
            r.name,
            r.instructions / 1000,
            fmt2(r.detailed.fused_mips),
            fmt2(r.detailed.unfused_mips),
            fmt2(r.detailed.speedup),
            fmt2(r.emulation.fused_mips),
            fmt2(r.emulation.unfused_mips),
            fmt2(r.emulation.speedup),
        );
    }
    let det = geomean(&rows, |r| r.detailed.speedup);
    let emu = geomean(&rows, |r| r.emulation.speedup);
    println!(
        "geomean    detailed {}x   emulation {}x",
        fmt2(det),
        fmt2(emu)
    );

    let doc = to_json(&rows, budget);
    let rebase = std::env::var("OSPREY_HOTPATH_REBASE").is_ok_and(|v| v == "1");
    if !check || rebase {
        std::fs::create_dir_all("results").expect("create results/");
        std::fs::write(BASELINE, &doc).expect("write baseline");
        eprintln!("[hotpath] wrote {BASELINE}");
        return;
    }

    // --check: schema-validate the committed baseline, then gate on the
    // measured fused/unfused speedup (a machine-relative ratio, so the
    // gate is portable across hosts, unlike raw instructions/sec).
    let committed = std::fs::read_to_string(BASELINE)
        .unwrap_or_else(|e| panic!("{BASELINE} unreadable ({e}); run `hotpath` to create it"));
    let baseline = match validate_baseline(&committed) {
        Ok(v) => v,
        Err(why) => {
            eprintln!("[hotpath] FAIL: {BASELINE} schema invalid: {why}");
            std::process::exit(1);
        }
    };
    let floor = baseline * (1.0 - TOLERANCE);
    if det < floor {
        eprintln!(
            "[hotpath] FAIL: geomean detailed speedup {} is more than {}% below \
             the committed baseline {} (floor {})",
            fmt2(det),
            (TOLERANCE * 100.0) as u32,
            fmt2(baseline),
            fmt2(floor)
        );
        std::process::exit(1);
    }
    eprintln!(
        "[hotpath] OK: geomean detailed speedup {}x (baseline {}x, floor {}x)",
        fmt2(det),
        fmt2(baseline),
        fmt2(floor)
    );
}

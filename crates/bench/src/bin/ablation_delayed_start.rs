//! Ablation — delayed start of learning (the paper skips the first 5
//! invocations; §6.1 notes that delaying find-od's start to 25 improves
//! its L2 miss-rate accuracy).

use osprey_bench::{accelerated_with, detailed, pct, scale_from_args, statistical, L2_DEFAULT};
use osprey_core::accel::AccelConfig;
use osprey_report::Table;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    println!("Ablation: delayed learning start (scale {scale})\n");
    for b in [Benchmark::FindOd, Benchmark::AbSeq] {
        let full = detailed(b, L2_DEFAULT, scale);
        let mut t = Table::new(["delay", "coverage", "|time err|", "|L2 missrate diff| (pp)"]);
        for delay in [0u64, 5, 25] {
            let cfg = AccelConfig {
                warmup: delay,
                relearn_warmup: delay,
                ..AccelConfig::with_strategy(statistical())
            };
            let out = accelerated_with(b, L2_DEFAULT, scale, cfg);
            t.row([
                delay.to_string(),
                pct(out.coverage()),
                pct(osprey_stats::summary::abs_relative_error(
                    out.report.total_cycles as f64,
                    full.total_cycles as f64,
                )),
                format!(
                    "{:.2}",
                    (out.report.l2_miss_rate() - full.l2_miss_rate()).abs() * 100.0
                ),
            ]);
        }
        println!("{b}:\n{t}");
    }
}

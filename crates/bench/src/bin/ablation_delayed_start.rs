//! Ablation — delayed start of learning (the paper skips the first 5
//! invocations; §6.1 notes that delaying find-od's start to 25 improves
//! its L2 miss-rate accuracy).

use osprey_bench::{
    accelerated_with, detailed, pct, scale_from_args, statistical, sweep_rows, L2_DEFAULT,
};
use osprey_core::accel::AccelConfig;
use osprey_report::Table;
use osprey_workloads::Benchmark;

const DELAYS: [u64; 3] = [0, 5, 25];

fn main() {
    let scale = scale_from_args();
    println!("Ablation: delayed learning start (scale {scale})\n");
    const BENCHES: [Benchmark; 2] = [Benchmark::FindOd, Benchmark::AbSeq];
    let rows = sweep_rows("ablation_delayed_start", &BENCHES, move |b| {
        let full = detailed(b, L2_DEFAULT, scale);
        let outs: Vec<_> = DELAYS
            .iter()
            .map(|&delay| {
                let cfg = AccelConfig {
                    warmup: delay,
                    relearn_warmup: delay,
                    ..AccelConfig::with_strategy(statistical())
                };
                accelerated_with(b, L2_DEFAULT, scale, cfg)
            })
            .collect();
        (full, outs)
    });
    for (b, (full, outs)) in BENCHES.into_iter().zip(rows) {
        let mut t = Table::new(["delay", "coverage", "|time err|", "|L2 missrate diff| (pp)"]);
        for (delay, out) in DELAYS.into_iter().zip(outs) {
            t.row([
                delay.to_string(),
                pct(out.coverage()),
                pct(osprey_stats::summary::abs_relative_error(
                    out.report.total_cycles as f64,
                    full.total_cycles as f64,
                )),
                format!(
                    "{:.2}",
                    (out.report.l2_miss_rate() - full.l2_miss_rate()).abs() * 100.0
                ),
            ]);
        }
        println!("{b}:\n{t}");
    }
}

//! Fig. 2 — Speedup ratio of a 1 MiB L2 over a 512 KiB L2, measured by
//! application-only vs full-system simulation.
//!
//! Paper reference: the two simulations agree for SPEC2000 but diverge
//! for OS-intensive applications (iperf reaches 2.03x under full-system
//! simulation while application-only shows almost nothing).

use osprey_bench::{app_only, detailed, fmt2, scale_from_args, sweep_rows};
use osprey_report::Table;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    println!("Fig. 2: speedup of 1 MiB L2 over 512 KiB L2 (scale {scale})\n");
    let mut t = Table::new(["benchmark", "App Only (x)", "App+OS (x)"]);
    let rows = sweep_rows("fig02_l2_speedup_ratio", &Benchmark::ALL, move |b| {
        (
            app_only(b, 512 * 1024, scale),
            app_only(b, 1024 * 1024, scale),
            detailed(b, 512 * 1024, scale),
            detailed(b, 1024 * 1024, scale),
        )
    });
    for (b, (app_small, app_big, full_small, full_big)) in Benchmark::ALL.into_iter().zip(rows) {
        t.row([
            b.name().to_string(),
            fmt2(app_small.total_cycles as f64 / app_big.total_cycles.max(1) as f64),
            fmt2(full_small.total_cycles as f64 / full_big.total_cycles.max(1) as f64),
        ]);
    }
    println!("{t}");
    println!("Expected shape (paper): App Only and App+OS agree for SPEC-like rows;");
    println!("App+OS shows clearly larger speedups for the OS-intensive rows.");
}

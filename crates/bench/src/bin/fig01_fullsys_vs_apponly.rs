//! Fig. 1 — Full-system vs application-only simulation: L2 misses,
//! execution time, and IPC of App+OS normalized to App-Only.
//!
//! Paper reference: L2 misses up to 405x, execution time up to 126x for
//! OS-intensive applications; SPEC2000 near 1.0x on every metric.

use osprey_bench::{app_only, detailed, fmt2, scale_from_args, sweep_rows, L2_DEFAULT};
use osprey_report::Table;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    println!("Fig. 1: full-system (App+OS) normalized to application-only (scale {scale})\n");
    let mut t = Table::new([
        "benchmark",
        "L2 misses (x)",
        "exec time (x)",
        "IPC (x)",
        "OS instr frac",
    ]);
    let rows = sweep_rows("fig01_fullsys_vs_apponly", &Benchmark::ALL, move |b| {
        (
            detailed(b, L2_DEFAULT, scale),
            app_only(b, L2_DEFAULT, scale),
        )
    });
    for (b, (full, app)) in Benchmark::ALL.into_iter().zip(rows) {
        t.row([
            b.name().to_string(),
            fmt2(full.l2_misses() as f64 / app.l2_misses().max(1) as f64),
            fmt2(full.total_cycles as f64 / app.total_cycles.max(1) as f64),
            fmt2(full.ipc() / app.ipc()),
            fmt2(full.os_fraction()),
        ]);
    }
    println!("{t}");
    println!("Expected shape (paper): OS-intensive rows far above 1.0x (up to hundreds);");
    println!("gzip/vpr/art/swim rows near 1.0x on all metrics.");
}

//! Fig. 12 — Absolute execution-time prediction error with 1, 2, and
//! 4 MiB L2 caches (8-way).
//!
//! Paper reference: errors stay in the few-percent range across sizes,
//! slightly declining for larger caches.

use osprey_bench::{accelerated, detailed, pct, scale_from_args, statistical, sweep_rows};
use osprey_report::Table;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    println!("Fig. 12: prediction error across L2 sizes (Statistical, scale {scale})\n");
    let sizes = [1024 * 1024u64, 2 * 1024 * 1024, 4 * 1024 * 1024];
    let mut t = Table::new(["benchmark", "1MB", "2MB", "4MB"]);
    let mut sums = [0.0f64; 3];
    let rows = sweep_rows("fig12_l2_sensitivity", &Benchmark::OS_INTENSIVE, move |b| {
        sizes.map(|l2| {
            let full = detailed(b, l2, scale);
            let out = accelerated(b, l2, scale, statistical());
            osprey_stats::summary::abs_relative_error(
                out.report.total_cycles as f64,
                full.total_cycles as f64,
            )
        })
    });
    for (b, errors) in Benchmark::OS_INTENSIVE.into_iter().zip(rows) {
        let mut row = vec![b.name().to_string()];
        for (i, e) in errors.into_iter().enumerate() {
            sums[i] += e;
            row.push(pct(e));
        }
        t.row(row);
    }
    let n = Benchmark::OS_INTENSIVE.len() as f64;
    t.row([
        "average".to_string(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
    ]);
    println!("{t}");
    println!("Expected shape (paper): accuracy holds across L2 sizes, with the");
    println!("average error flat or slightly declining for larger caches.");
}

//! Ablation — scaled-cluster range fraction (the paper fixes ±5%).
//!
//! Sweeps the range fraction and reports coverage and execution-time
//! error: too-small ranges fragment behavior points (longer learning,
//! more outliers, lower coverage); too-large ranges merge distinct
//! points (worse accuracy).

use osprey_bench::{
    accelerated_with, detailed, pct, scale_from_args, statistical, sweep_rows, L2_DEFAULT,
};
use osprey_core::accel::AccelConfig;
use osprey_report::Table;
use osprey_workloads::Benchmark;

const RANGES: [f64; 5] = [0.01, 0.02, 0.05, 0.10, 0.25];

fn main() {
    let scale = scale_from_args();
    println!("Ablation: cluster range fraction (Statistical strategy, scale {scale})\n");
    const BENCHES: [Benchmark; 2] = [Benchmark::AbRand, Benchmark::AbSeq];
    let rows = sweep_rows("ablation_cluster_range", &BENCHES, move |b| {
        let full = detailed(b, L2_DEFAULT, scale);
        let outs: Vec<_> = RANGES
            .iter()
            .map(|&range| {
                let cfg = AccelConfig {
                    cluster_range: range,
                    ..AccelConfig::with_strategy(statistical())
                };
                accelerated_with(b, L2_DEFAULT, scale, cfg)
            })
            .collect();
        (full, outs)
    });
    for (b, (full, outs)) in BENCHES.into_iter().zip(rows) {
        let mut t = Table::new(["range", "coverage", "|error|", "sys_read clusters"]);
        for (range, out) in RANGES.into_iter().zip(outs) {
            let read_clusters = out
                .clusters_per_service
                .iter()
                .find(|(s, _)| *s == osprey_isa::ServiceId::SysRead)
                .map(|(_, n)| *n)
                .unwrap_or(0);
            t.row([
                format!("{:.0}%", range * 100.0),
                pct(out.coverage()),
                pct(osprey_stats::summary::abs_relative_error(
                    out.report.total_cycles as f64,
                    full.total_cycles as f64,
                )),
                read_clusters.to_string(),
            ]);
        }
        println!("{b}:\n{t}");
    }
}

//! Fig. 11 — Coverage and accuracy of the four re-learning strategies.
//!
//! Paper reference: Best-Match 93% coverage / 9.6% avg error (29% worst);
//! Eager 74% / 1.5%; Statistical 89% / 3.2%; Delayed 88% / 2.7%.

use osprey_bench::{accelerated, detailed, pct, scale_from_args, sweep_rows, L2_DEFAULT};
use osprey_core::RelearnStrategy;
use osprey_report::Table;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    println!("Fig. 11: re-learning strategies, coverage (a) and |error| (b) (scale {scale})\n");
    let mut cov = Table::new(["benchmark", "Best-Match", "Statistical", "Delayed", "Eager"]);
    let mut err = Table::new(["benchmark", "Best-Match", "Statistical", "Delayed", "Eager"]);
    let mut cov_sum = [0.0f64; 4];
    let mut err_sum = [0.0f64; 4];
    let rows = sweep_rows("fig11_strategies", &Benchmark::OS_INTENSIVE, move |b| {
        let full = detailed(b, L2_DEFAULT, scale);
        let outs: Vec<_> = RelearnStrategy::ALL
            .iter()
            .map(|&s| accelerated(b, L2_DEFAULT, scale, s))
            .collect();
        (full, outs)
    });
    for (b, (full, outs)) in Benchmark::OS_INTENSIVE.into_iter().zip(rows) {
        let mut cov_row = vec![b.name().to_string()];
        let mut err_row = vec![b.name().to_string()];
        for (i, out) in outs.into_iter().enumerate() {
            let e = osprey_stats::summary::abs_relative_error(
                out.report.total_cycles as f64,
                full.total_cycles as f64,
            );
            cov_sum[i] += out.coverage();
            err_sum[i] += e;
            cov_row.push(pct(out.coverage()));
            err_row.push(pct(e));
        }
        cov.row(cov_row);
        err.row(err_row);
    }
    let n = Benchmark::OS_INTENSIVE.len() as f64;
    cov.row([
        "average".to_string(),
        pct(cov_sum[0] / n),
        pct(cov_sum[1] / n),
        pct(cov_sum[2] / n),
        pct(cov_sum[3] / n),
    ]);
    err.row([
        "average".to_string(),
        pct(err_sum[0] / n),
        pct(err_sum[1] / n),
        pct(err_sum[2] / n),
        pct(err_sum[3] / n),
    ]);
    println!("(a) coverage\n{cov}");
    println!("(b) absolute prediction error\n{err}");
    println!("Expected shape (paper): coverage Best-Match >= Statistical ~ Delayed >");
    println!("Eager; error Best-Match worst (dominated by ab-seq), Eager best,");
    println!("Statistical/Delayed close to Eager at near-Best-Match coverage.");
}

//! Fig. 11 — Coverage and accuracy of the four re-learning strategies.
//!
//! Paper reference: Best-Match 93% coverage / 9.6% avg error (29% worst);
//! Eager 74% / 1.5%; Statistical 89% / 3.2%; Delayed 88% / 2.7%.
//!
//! Record-once/replay-many: each benchmark's detailed run is recorded
//! into `results/traces/` exactly once; all four strategies are then
//! evaluated offline from the same trace ([`osprey_trace::ReplaySim`])
//! instead of re-simulating the machine per strategy. The wall-time
//! ratio goes to `results/fig11_strategies_replay.json`.

use std::time::Duration;

use osprey_bench::{
    pct, record_trace, replay_strategy, scale_from_args, sweep_rows, write_replay_summary,
    L2_DEFAULT,
};
use osprey_core::RelearnStrategy;
use osprey_report::Table;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    println!("Fig. 11: re-learning strategies, coverage (a) and |error| (b) (scale {scale})\n");
    let mut cov = Table::new(["benchmark", "Best-Match", "Statistical", "Delayed", "Eager"]);
    let mut err = Table::new(["benchmark", "Best-Match", "Statistical", "Delayed", "Eager"]);
    let mut cov_sum = [0.0f64; 4];
    let mut err_sum = [0.0f64; 4];
    let rows = sweep_rows("fig11_strategies", &Benchmark::OS_INTENSIVE, move |b| {
        let (trace, full, record_wall) = record_trace("fig11", b, L2_DEFAULT, scale);
        let outs: Vec<_> = RelearnStrategy::ALL
            .iter()
            .map(|&s| replay_strategy(&trace, s))
            .collect();
        (full, outs, record_wall)
    });
    let mut jobs = Vec::new();
    let (mut record_wall, mut replay_wall) = (Duration::ZERO, Duration::ZERO);
    for (b, (full, outs, rec)) in Benchmark::OS_INTENSIVE.into_iter().zip(rows) {
        record_wall += rec;
        let mut cov_row = vec![b.name().to_string()];
        let mut err_row = vec![b.name().to_string()];
        for ((i, strategy), (out, wall)) in RelearnStrategy::ALL.iter().enumerate().zip(outs) {
            jobs.push((format!("{}/{}", b.name(), strategy.name()), wall));
            replay_wall += wall;
            let e = osprey_stats::summary::abs_relative_error(
                out.report.total_cycles as f64,
                full.total_cycles as f64,
            );
            cov_sum[i] += out.coverage();
            err_sum[i] += e;
            cov_row.push(pct(out.coverage()));
            err_row.push(pct(e));
        }
        cov.row(cov_row);
        err.row(err_row);
    }
    let n = Benchmark::OS_INTENSIVE.len() as f64;
    cov.row([
        "average".to_string(),
        pct(cov_sum[0] / n),
        pct(cov_sum[1] / n),
        pct(cov_sum[2] / n),
        pct(cov_sum[3] / n),
    ]);
    err.row([
        "average".to_string(),
        pct(err_sum[0] / n),
        pct(err_sum[1] / n),
        pct(err_sum[2] / n),
        pct(err_sum[3] / n),
    ]);
    println!("(a) coverage\n{cov}");
    println!("(b) absolute prediction error\n{err}");
    // One trace per benchmark feeds all four strategy evaluations; the
    // wall-time ratio is stderr + JSON only (stdout stays deterministic).
    write_replay_summary("fig11_strategies", jobs, record_wall, replay_wall);
    println!(
        "strategies evaluated offline from results/traces/ (wall-time ratio in \
         results/fig11_strategies_replay.json)"
    );
    println!("Expected shape (paper): coverage Best-Match >= Statistical ~ Delayed >");
    println!("Eager; error Best-Match worst (dominated by ab-seq), Eager best,");
    println!("Statistical/Delayed close to Eager at near-Best-Match coverage.");
}

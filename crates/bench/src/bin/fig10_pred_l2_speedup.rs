//! Fig. 10 — Speedup of 1 MiB over 512 KiB L2 as seen by application-only,
//! full-system, and accelerated full-system simulation.
//!
//! Paper reference: the accelerated simulation captures the same cache-
//! size speedups as full simulation; application-only does not.

use osprey_bench::{
    accelerated, app_only, detailed, fmt2, scale_from_args, statistical, sweep_rows,
};
use osprey_report::Table;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    println!("Fig. 10: 1 MiB vs 512 KiB L2 speedup, three simulation methods (scale {scale})\n");
    let mut t = Table::new(["benchmark", "App Only", "App+OS", "App+OS Pred"]);
    let mut gm: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let rows = sweep_rows(
        "fig10_pred_l2_speedup",
        &Benchmark::OS_INTENSIVE,
        move |b| {
            [
                app_only(b, 512 * 1024, scale).total_cycles as f64
                    / app_only(b, 1024 * 1024, scale).total_cycles.max(1) as f64,
                detailed(b, 512 * 1024, scale).total_cycles as f64
                    / detailed(b, 1024 * 1024, scale).total_cycles.max(1) as f64,
                accelerated(b, 512 * 1024, scale, statistical())
                    .report
                    .total_cycles as f64
                    / accelerated(b, 1024 * 1024, scale, statistical())
                        .report
                        .total_cycles
                        .max(1) as f64,
            ]
        },
    );
    for (b, ratios) in Benchmark::OS_INTENSIVE.into_iter().zip(rows) {
        for (i, r) in ratios.iter().enumerate() {
            gm[i].push(*r);
        }
        t.row([
            b.name().to_string(),
            fmt2(ratios[0]),
            fmt2(ratios[1]),
            fmt2(ratios[2]),
        ]);
    }
    t.row([
        "average".to_string(),
        fmt2(osprey_stats::geometric_mean(&gm[0])),
        fmt2(osprey_stats::geometric_mean(&gm[1])),
        fmt2(osprey_stats::geometric_mean(&gm[2])),
    ]);
    println!("{t}");
    println!("Expected shape (paper): App+OS Pred tracks App+OS; App Only misses");
    println!("most of the benefit of the larger cache.");
}

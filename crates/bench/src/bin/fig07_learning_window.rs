//! Fig. 7 — Initial learning window length required to capture all
//! clusters with occurrence probability >= p_min, at 95% and 99%
//! degrees of confidence.
//!
//! Paper reference: at p_min = 3%, ~100 trials at 95% DoC and a little
//! over 150 at 99% DoC.

use osprey_bench::run_sweep;
use osprey_exec::Job;
use osprey_report::Table;
use osprey_stats::binomial::window_curve;

fn main() {
    println!("Fig. 7: learning window vs minimum probability of occurrence\n");
    let mut curves = run_sweep(
        "fig07_learning_window",
        vec![
            Job::new("doc-95", || window_curve(0.20, 20, 0.95)),
            Job::new("doc-99", || window_curve(0.20, 20, 0.99)),
        ],
    );
    let c99 = curves.pop().expect("two curves");
    let c95 = curves.pop().expect("two curves");
    let mut t = Table::new(["p_min", "N (95% DoC)", "N (99% DoC)"]);
    for (a, b) in c95.iter().zip(&c99) {
        t.row([
            format!("{:.2}", a.p_min),
            a.window.to_string(),
            b.window.to_string(),
        ]);
    }
    println!("{t}");
    let n95 = osprey_stats::learning_window(0.03, 0.95).unwrap();
    let n99 = osprey_stats::learning_window(0.03, 0.99).unwrap();
    println!("Operating point p_min = 3%: N = {n95} (95%), N = {n99} (99%)");
    println!("Expected (paper): ~100 at 95% DoC, a little over 150 at 99% DoC.");
}

//! Table 1 — Wall-clock slowdown of the simulation modes relative to the
//! fastest timing mode (in-order processor without caches).
//!
//! Paper reference (Simics): inorder-cache 3x, ooo-nocache 64x,
//! ooo-cache 133x. Simics interprets x86, so its detailed modes pay a
//! two-order-of-magnitude premium; Osprey's cores are compiled Rust over
//! a synthetic ISA, so its mode gap is far smaller and the Eq. 10
//! estimates built on it are conservative (see Table 2, which also
//! reports measured wall-clock speedups).

use osprey_bench::{run_sweep, scale_from_args};
use osprey_core::measure_mode_slowdowns;
use osprey_exec::Job;
use osprey_report::Table;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args().min(0.25);
    println!("Table 1: measured per-instruction slowdown of simulation modes\n");
    // One job: mode slowdowns are wall-clock measurements, so they must
    // run alone rather than share cores with sibling jobs.
    let s = run_sweep(
        "table1_mode_slowdowns",
        vec![Job::new("mode-slowdowns", move || {
            measure_mode_slowdowns(Benchmark::AbRand, 1, scale)
        })],
    )
    .pop()
    .expect("one job");
    let mut t = Table::new(["mode", "slowdown (x)"]);
    t.row([
        "emulation (fast-forward)",
        format!("{:.2}", s.emulation).as_str(),
    ]);
    t.row(["inorder-nocache", "1.00"]);
    t.row(["inorder-cache", format!("{:.2}", s.inorder_cache).as_str()]);
    t.row(["ooo-nocache", format!("{:.2}", s.ooo_nocache).as_str()]);
    t.row(["ooo-cache", format!("{:.2}", s.ooo_cache).as_str()]);
    println!("{t}");
    println!(
        "base: {:.1} ns/simulated instruction; T_profile/T_full = 1/{:.1}",
        s.base_secs_per_instr * 1e9,
        s.ooo_cache
    );
    println!("Paper (Simics): 1x / 3x / 64x / 133x. The ordering — detailed");
    println!("ooo-cache most expensive — is the property Eq. 10 relies on.");
}

//! Ablation — the §4.5 cache-pollution model on vs off.
//!
//! Without pollution, predicted OS intervals leave the application's
//! cache contents untouched, so the application (and any still-simulated
//! services) run against an unrealistically quiet memory system.

use osprey_bench::{
    accelerated_with, detailed, pct, scale_from_args, statistical, sweep_rows, L2_DEFAULT,
};
use osprey_core::accel::AccelConfig;
use osprey_report::Table;
use osprey_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    println!("Ablation: cache pollution model (Statistical strategy, scale {scale})\n");
    let mut t = Table::new(["benchmark", "|err| with pollution", "|err| without"]);
    let rows = sweep_rows("ablation_pollution", &Benchmark::OS_INTENSIVE, move |b| {
        let full = detailed(b, L2_DEFAULT, scale);
        [true, false].map(|pollution| {
            let cfg = AccelConfig {
                pollution,
                ..AccelConfig::with_strategy(statistical())
            };
            let out = accelerated_with(b, L2_DEFAULT, scale, cfg);
            osprey_stats::summary::abs_relative_error(
                out.report.total_cycles as f64,
                full.total_cycles as f64,
            )
        })
    });
    for (b, errs) in Benchmark::OS_INTENSIVE.into_iter().zip(rows) {
        t.row([b.name().to_string(), pct(errs[0]), pct(errs[1])]);
    }
    println!("{t}");
    println!("Expected: disabling pollution increases error, most visibly for the");
    println!("benchmarks whose applications and services share cache capacity.");
}

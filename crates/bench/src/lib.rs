//! Shared harness for the figure/table regenerators.
//!
//! Every binary in `src/bin/` reproduces one table or figure of the
//! paper's evaluation (see DESIGN.md §3 for the index). They share the
//! run helpers here so that all experiments use the same machine
//! configuration, seeds, and workload scales.
//!
//! Scale: binaries accept an optional first CLI argument (or the
//! `OSPREY_SCALE` environment variable) setting the workload scale;
//! `1.0` (the default) is the paper-like default length of every
//! workload.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use osprey_core::accel::{AccelConfig, AccelOutcome, AcceleratedSim};
use osprey_core::RelearnStrategy;
use osprey_exec::{default_workers, run_jobs, Job, ReplaySummary};
use osprey_sim::{FullSystemSim, OsMode, RunReport, SimConfig};
use osprey_trace::{ReplayOutcome, ReplaySim, Trace, TraceReader};
use osprey_workloads::Benchmark;

/// Master seed shared by every experiment run.
pub const SEED: u64 = 1;

/// The paper's default L2 capacity.
pub const L2_DEFAULT: u64 = 1024 * 1024;

/// Reads the workload scale from argv[1] or `OSPREY_SCALE` (default 1.0).
///
/// # Panics
///
/// Panics if the provided value is not a positive number.
pub fn scale_from_args() -> f64 {
    let raw = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("OSPREY_SCALE").ok());
    match raw {
        None => 1.0,
        Some(s) => {
            let v: f64 = s.parse().expect("scale must be a number");
            assert!(v > 0.0, "scale must be positive");
            v
        }
    }
}

/// A full-system detailed (ooo-cache) run.
pub fn detailed(benchmark: Benchmark, l2_bytes: u64, scale: f64) -> RunReport {
    FullSystemSim::new(
        SimConfig::new(benchmark)
            .with_seed(SEED)
            .with_scale(scale)
            .with_l2_bytes(l2_bytes),
    )
    .run()
}

/// An application-only run (system calls and interrupts skipped).
pub fn app_only(benchmark: Benchmark, l2_bytes: u64, scale: f64) -> RunReport {
    FullSystemSim::new(
        SimConfig::new(benchmark)
            .with_seed(SEED)
            .with_scale(scale)
            .with_l2_bytes(l2_bytes)
            .with_os_mode(OsMode::AppOnly),
    )
    .run()
}

/// An accelerated run with the given re-learning strategy.
pub fn accelerated(
    benchmark: Benchmark,
    l2_bytes: u64,
    scale: f64,
    strategy: RelearnStrategy,
) -> AccelOutcome {
    accelerated_with(
        benchmark,
        l2_bytes,
        scale,
        AccelConfig::with_strategy(strategy),
    )
}

/// An accelerated run with a fully custom acceleration configuration.
pub fn accelerated_with(
    benchmark: Benchmark,
    l2_bytes: u64,
    scale: f64,
    cfg: AccelConfig,
) -> AccelOutcome {
    AcceleratedSim::new(
        SimConfig::new(benchmark)
            .with_seed(SEED)
            .with_scale(scale)
            .with_l2_bytes(l2_bytes),
        cfg,
    )
    .run()
}

/// Runs a set of named jobs through the experiment engine
/// ([`osprey_exec::run_jobs`]) and returns their values in submission
/// order.
///
/// Worker count comes from [`osprey_exec::default_workers`]
/// (`$OSPREY_JOBS` or the machine's parallelism). The engine's timing
/// summary is written to `results/<label>_sweep.json` and echoed to
/// *stderr*, keeping stdout — the experiment's actual tables — byte
/// identical whatever the worker count.
pub fn run_sweep<T: Send + 'static>(label: &str, jobs: Vec<Job<T>>) -> Vec<T> {
    let run = run_jobs(jobs, default_workers());
    let summary = run.summary(label);
    match summary.write_to_results() {
        Ok(path) => eprintln!(
            "[osprey-exec] {label}: {} jobs on {} workers, {:.2}x speedup -> {}",
            summary.jobs.len(),
            run.workers,
            run.speedup(),
            path.display()
        ),
        Err(e) => eprintln!("[osprey-exec] warning: {label}_sweep.json not written: {e}"),
    }
    run.into_values()
}

/// Fans `f` out across the engine, one job per benchmark, and returns
/// the per-benchmark values in the order of `benchmarks` — the
/// figure-regenerator idiom (each table row becomes one parallel job).
pub fn sweep_rows<T, F>(label: &str, benchmarks: &[Benchmark], f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Benchmark) -> T + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let jobs = benchmarks
        .iter()
        .map(|&b| {
            let f = Arc::clone(&f);
            Job::new(b.name(), move || f(b))
        })
        .collect();
    run_sweep(label, jobs)
}

/// Records one detailed run into `results/traces/<label>_<bench>.ospt`
/// and returns the decoded trace, the live detailed report, and the
/// recording wall time — the "record once" half of the record-once/
/// replay-many experiment idiom.
///
/// The trace file is best-effort: failing to write it only warns on
/// stderr, since the in-memory trace is what the experiment replays.
///
/// # Panics
///
/// Panics if the just-recorded byte stream fails to decode (a trace
/// format bug, not an experiment condition).
pub fn record_trace(
    label: &str,
    benchmark: Benchmark,
    l2_bytes: u64,
    scale: f64,
) -> (Trace, RunReport, Duration) {
    let cfg = SimConfig::new(benchmark)
        .with_seed(SEED)
        .with_scale(scale)
        .with_l2_bytes(l2_bytes);
    let started = Instant::now();
    let (bytes, live) = osprey_trace::record_bytes(&cfg, osprey_sim::DEFAULT_SNAPSHOT_EVERY);
    let wall = started.elapsed();
    let dir = PathBuf::from("results/traces");
    let path = dir.join(format!("{label}_{}.ospt", benchmark.name()));
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &bytes)) {
        eprintln!(
            "[osprey-trace] warning: {} not written: {e}",
            path.display()
        );
    }
    let trace = TraceReader::from_bytes(&bytes).expect("just-recorded trace decodes");
    (trace, live, wall)
}

/// Replays one predictor configuration over a recorded trace — the
/// "replay many" half — returning the outcome and its wall time.
///
/// # Panics
///
/// Panics if the trace is not a completed detailed recording (which
/// [`record_trace`] always produces).
pub fn replay_strategy(trace: &Trace, strategy: RelearnStrategy) -> (ReplayOutcome, Duration) {
    let started = Instant::now();
    let outcome = ReplaySim::new(trace, AccelConfig::with_strategy(strategy))
        .expect("recorded traces are detailed and complete")
        .run();
    (outcome, started.elapsed())
}

/// Writes the record-vs-replay wall-time ratio to
/// `results/<label>_replay.json` and echoes it to stderr, mirroring
/// [`run_sweep`]'s handling of `*_sweep.json`. Returns the speedup.
pub fn write_replay_summary(
    label: &str,
    jobs: Vec<(String, Duration)>,
    record_wall: Duration,
    replay_wall: Duration,
) -> f64 {
    let summary = ReplaySummary {
        bench: label.to_string(),
        jobs,
        record_wall,
        replay_wall,
    };
    match summary.write_to_results() {
        Ok(path) => eprintln!(
            "[osprey-trace] {label}: replay {:.1}x faster than re-simulation \
             (record {:.0} ms, replay {:.0} ms) -> {}",
            summary.speedup(),
            record_wall.as_secs_f64() * 1e3,
            replay_wall.as_secs_f64() * 1e3,
            path.display()
        ),
        Err(e) => eprintln!("[osprey-trace] warning: {label}_replay.json not written: {e}"),
    }
    summary.speedup()
}

/// The paper's Statistical strategy at its published operating point.
pub fn statistical() -> RelearnStrategy {
    RelearnStrategy::Statistical {
        p_min: 0.03,
        alpha: 0.05,
        min_epos: 4,
    }
}

/// Formats a ratio as `x.xx`.
pub fn fmt2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Absolute relative error as a percentage string.
pub fn err_pct(measured: f64, reference: f64) -> String {
    pct(osprey_stats::summary::abs_relative_error(
        measured, reference,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_consistent_runs() {
        let det = detailed(Benchmark::Iperf, L2_DEFAULT, 0.02);
        let app = app_only(Benchmark::Iperf, L2_DEFAULT, 0.02);
        assert!(det.total_cycles > app.total_cycles);
        let acc = accelerated(Benchmark::Iperf, L2_DEFAULT, 0.02, statistical());
        assert_eq!(acc.report.total_instructions, det.total_instructions);
    }

    #[test]
    fn record_once_replay_many_reproduces_the_live_run() {
        let (trace, live, record_wall) =
            record_trace("benchlib_test", Benchmark::Du, L2_DEFAULT, 0.02);
        assert_eq!(trace.intervals().count(), live.intervals.len());
        // Replaying every strategy reuses the single recording.
        let mut jobs = Vec::new();
        let mut replay_wall = Duration::ZERO;
        for s in RelearnStrategy::ALL {
            let (outcome, wall) = replay_strategy(&trace, s);
            assert_eq!(outcome.report.total_instructions, live.total_instructions);
            jobs.push((format!("du/{}", s.name()), wall));
            replay_wall += wall;
        }
        let speedup = write_replay_summary("benchlib_test", jobs, record_wall, replay_wall);
        assert!(speedup > 0.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt2(1.234), "1.23");
        assert_eq!(pct(0.891), "89.1%");
        assert_eq!(err_pct(103.2, 100.0), "3.2%");
    }
}

//! The Osprey experiment engine: a dependency-free work-stealing thread
//! pool for running whole *experiments* (many independent simulations)
//! in parallel.
//!
//! Every figure and table in the paper is a sweep: the same simulator
//! run once per benchmark, mode, or parameter point. Those runs are
//! embarrassingly parallel — each owns its machine, workload, and RNG —
//! so the engine simply hands named [`Job`]s to a pool of
//! `std::thread` workers that pull the next unstarted job as they
//! free up, then returns results **in submission order** regardless of
//! completion order. Because every job is deterministic given its
//! [`osprey_sim::SimConfig`] and jobs share no state, the simulated
//! output of a parallel sweep is byte-identical to a serial one; only
//! the wall-clock columns differ.
//!
//! # Examples
//!
//! ```
//! use osprey_exec::{run_jobs, Job};
//!
//! let jobs: Vec<Job<u64>> = (0..8)
//!     .map(|i| Job::new(format!("square-{i}"), move || i * i))
//!     .collect();
//! let run = run_jobs(jobs, 4);
//! // Results come back in submission order, not completion order.
//! let values: Vec<u64> = run.results.iter().map(|r| r.value).collect();
//! assert_eq!(values, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! assert!(run.speedup() > 0.0);
//! ```

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use osprey_sim::{FullSystemSim, RunReport, SimConfig};

pub mod sweep;

pub use sweep::{ReplaySummary, SweepSummary};

/// A named unit of work for the pool: a closure producing a result of
/// type `T`.
///
/// Jobs must be self-contained (`Send`, no shared mutable state) — the
/// determinism guarantee of [`run_jobs`] relies on it.
pub struct Job<T> {
    name: String,
    work: Box<dyn FnOnce() -> T + Send>,
}

impl<T: Send> Job<T> {
    /// Wraps a closure as a named job.
    pub fn new(name: impl Into<String>, work: impl FnOnce() -> T + Send + 'static) -> Self {
        Self {
            name: name.into(),
            work: Box::new(work),
        }
    }

    /// The job's display name (benchmark, mode, or parameter point).
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Job<RunReport> {
    /// A job that runs `cfg` through the detailed full-system simulator
    /// to completion — the common case for figure/table sweeps.
    pub fn sim(name: impl Into<String>, cfg: SimConfig) -> Self {
        Self::new(name, move || FullSystemSim::new(cfg).run())
    }
}

impl<T> std::fmt::Debug for Job<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("name", &self.name).finish()
    }
}

/// One finished job: its name, result value, and wall-clock time.
#[derive(Debug, Clone)]
pub struct JobResult<T> {
    /// The name the job was submitted with.
    pub name: String,
    /// Wall-clock time the job's closure took on its worker.
    pub wall: Duration,
    /// The closure's return value.
    pub value: T,
}

/// Outcome of a [`run_jobs`] sweep: per-job results in submission
/// order plus pool-level timing.
#[derive(Debug)]
pub struct SweepRun<T> {
    /// Worker threads the pool actually used.
    pub workers: usize,
    /// Finished jobs, **in submission order** (not completion order).
    pub results: Vec<JobResult<T>>,
    /// Wall-clock time of the whole sweep, submission to last result.
    pub parallel_wall: Duration,
}

impl<T> SweepRun<T> {
    /// Estimated serial wall time: the sum of every job's own wall
    /// time. This is what a one-worker pool would have taken (modulo
    /// scheduling noise), and the numerator of [`SweepRun::speedup`].
    pub fn serial_estimate(&self) -> Duration {
        self.results.iter().map(|r| r.wall).sum()
    }

    /// Parallel speedup: serial estimate over actual parallel wall.
    pub fn speedup(&self) -> f64 {
        let serial = self.serial_estimate().as_secs_f64();
        let parallel = self.parallel_wall.as_secs_f64();
        if parallel > 0.0 {
            serial / parallel
        } else {
            1.0
        }
    }

    /// The result values alone, in submission order.
    pub fn into_values(self) -> Vec<T> {
        self.results.into_iter().map(|r| r.value).collect()
    }

    /// Timing summary for `results/*_sweep.json` (see [`sweep`]).
    pub fn summary(&self, bench: impl Into<String>) -> SweepSummary {
        SweepSummary {
            bench: bench.into(),
            workers: self.workers,
            jobs: self
                .results
                .iter()
                .map(|r| (r.name.clone(), r.wall))
                .collect(),
            serial_estimate: self.serial_estimate(),
            parallel_wall: self.parallel_wall,
        }
    }
}

/// Picks the pool's worker count: `$OSPREY_JOBS` if set to a positive
/// integer, else the machine's available parallelism, else 1.
///
/// CLI `--jobs N` flags override this by passing `Some(N)` to callers'
/// plumbing and ultimately an explicit count to [`run_jobs`].
pub fn default_workers() -> usize {
    std::env::var("OSPREY_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs `jobs` on a pool of `workers` threads and returns their results
/// in submission order.
///
/// Scheduling is work-stealing in the pull sense: idle workers take the
/// next unstarted job from a shared queue, so a long job never blocks
/// the others. `workers` is clamped to `1..=jobs.len()`; with one
/// worker the jobs run inline on the calling thread in submission
/// order, giving a true serial baseline. Results are reordered into
/// submission order before returning, so for deterministic jobs the
/// returned values are identical whatever the worker count.
pub fn run_jobs<T: Send>(jobs: Vec<Job<T>>, workers: usize) -> SweepRun<T> {
    let total = jobs.len();
    let workers = workers.clamp(1, total.max(1));
    let started = Instant::now();

    if workers <= 1 {
        let results = jobs
            .into_iter()
            .map(|job| {
                let t0 = Instant::now();
                let value = (job.work)();
                JobResult {
                    name: job.name,
                    wall: t0.elapsed(),
                    value,
                }
            })
            .collect();
        return SweepRun {
            workers: 1,
            results,
            parallel_wall: started.elapsed(),
        };
    }

    let queue: Mutex<VecDeque<(usize, Job<T>)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, JobResult<T>)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            s.spawn(move || loop {
                // Hold the lock only to pop; the job runs lock-free.
                let next = queue.lock().expect("job queue poisoned").pop_front();
                let Some((index, job)) = next else { break };
                let t0 = Instant::now();
                let value = (job.work)();
                let result = JobResult {
                    name: job.name,
                    wall: t0.elapsed(),
                    value,
                };
                // The receiver outlives the scope; a send can only fail
                // if the parent panicked, in which case unwinding is
                // already in progress.
                let _ = tx.send((index, result));
            });
        }
        drop(tx);
    });

    let mut slots: Vec<Option<JobResult<T>>> = (0..total).map(|_| None).collect();
    for (index, result) in rx {
        slots[index] = Some(result);
    }
    let results = slots
        .into_iter()
        .map(|slot| slot.expect("every job reports exactly once"))
        .collect();
    SweepRun {
        workers,
        results,
        parallel_wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Give later-submitted jobs less work so they finish first.
        let jobs: Vec<Job<usize>> = (0..16)
            .map(|i| {
                Job::new(format!("job-{i}"), move || {
                    let spins = (16 - i) * 10_000;
                    let mut acc = 0usize;
                    for k in 0..spins {
                        acc = acc.wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    i
                })
            })
            .collect();
        let run = run_jobs(jobs, 4);
        assert_eq!(run.workers, 4);
        let values: Vec<usize> = run.results.iter().map(|r| r.value).collect();
        assert_eq!(values, (0..16).collect::<Vec<_>>());
        for (i, r) in run.results.iter().enumerate() {
            assert_eq!(r.name, format!("job-{i}"));
        }
    }

    #[test]
    fn one_worker_runs_inline_and_matches_parallel_values() {
        let make = || -> Vec<Job<u64>> {
            (0..9)
                .map(|i| Job::new(format!("j{i}"), move || i * i + 1))
                .collect()
        };
        let serial = run_jobs(make(), 1);
        let parallel = run_jobs(make(), 3);
        assert_eq!(serial.workers, 1);
        assert_eq!(
            serial.results.iter().map(|r| r.value).collect::<Vec<_>>(),
            parallel.results.iter().map(|r| r.value).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn worker_count_is_clamped_to_job_count() {
        let jobs = vec![Job::new("only", || 7u8)];
        let run = run_jobs(jobs, 64);
        assert_eq!(run.workers, 1);
        assert_eq!(run.results[0].value, 7);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let run = run_jobs(Vec::<Job<()>>::new(), 4);
        assert!(run.results.is_empty());
        assert_eq!(run.workers, 1);
    }

    #[test]
    fn summary_totals_are_consistent() {
        let jobs: Vec<Job<u8>> = (0..4)
            .map(|i| Job::new(format!("n{i}"), move || i))
            .collect();
        let run = run_jobs(jobs, 2);
        let summary = run.summary("test");
        assert_eq!(summary.jobs.len(), 4);
        assert_eq!(summary.serial_estimate, run.serial_estimate());
        assert!(run.speedup() > 0.0);
    }
}

//! Sweep timing records: the `results/*_sweep.json` files.
//!
//! Every experiment driven through the engine drops a small JSON
//! document recording how the sweep was scheduled and how long it
//! took, so wall-clock scaling is tracked alongside the simulated
//! results. The schema (see DESIGN.md):
//!
//! ```json
//! {
//!   "bench": "table2",
//!   "workers": 4,
//!   "jobs": [ { "name": "ab-rand", "wall_ms": 812.4 }, ... ],
//!   "serial_estimate_ms": 3100.0,
//!   "parallel_wall_ms": 921.5,
//!   "speedup": 3.36
//! }
//! ```
//!
//! The workspace builds offline with zero dependencies, so the JSON is
//! emitted by hand here rather than through a serialization crate.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Timing summary of one sweep, ready to serialize.
///
/// Built by [`crate::SweepRun::summary`]; only wall-clock quantities
/// live here — simulated results are deterministic and belong to the
/// experiment's own output files.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Experiment name (figure/table identifier or CLI sweep label).
    pub bench: String,
    /// Worker threads the pool used.
    pub workers: usize,
    /// `(job name, wall time)` per job, in submission order.
    pub jobs: Vec<(String, Duration)>,
    /// Sum of per-job wall times (what one worker would have taken).
    pub serial_estimate: Duration,
    /// Actual wall time of the parallel sweep.
    pub parallel_wall: Duration,
}

/// Escapes a string for embedding in a JSON document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a duration as fractional milliseconds with fixed precision,
/// so the files are stable to diff.
fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

impl SweepSummary {
    /// Speedup of the parallel sweep over the serial estimate.
    pub fn speedup(&self) -> f64 {
        let parallel = self.parallel_wall.as_secs_f64();
        if parallel > 0.0 {
            self.serial_estimate.as_secs_f64() / parallel
        } else {
            1.0
        }
    }

    /// Renders the summary as a pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.bench)));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str("  \"jobs\": [\n");
        for (i, (name, wall)) in self.jobs.iter().enumerate() {
            let sep = if i + 1 == self.jobs.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"wall_ms\": {} }}{sep}\n",
                escape(name),
                ms(*wall)
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"serial_estimate_ms\": {},\n",
            ms(self.serial_estimate)
        ));
        out.push_str(&format!(
            "  \"parallel_wall_ms\": {},\n",
            ms(self.parallel_wall)
        ));
        out.push_str(&format!("  \"speedup\": {:.3}\n", self.speedup()));
        out.push_str("}\n");
        out
    }

    /// Writes the summary to `<dir>/<bench>_sweep.json`, creating the
    /// directory if needed, and returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating the directory or writing
    /// the file.
    pub fn write_to_dir(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}_sweep.json", self.bench));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// Writes the summary to the conventional `results/` directory
    /// (relative to the current working directory) and returns the
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from [`SweepSummary::write_to_dir`].
    pub fn write_to_results(&self) -> std::io::Result<PathBuf> {
        self.write_to_dir("results")
    }
}

/// Wall-clock record of a record-once/replay-many experiment: how long
/// the detailed recording runs took versus re-evaluating predictor
/// configurations from the traces.
///
/// Serialized to `results/<bench>_replay.json`:
///
/// ```json
/// {
///   "bench": "fig11_strategies",
///   "jobs": [ { "name": "du/best-match", "wall_ms": 12.1 }, ... ],
///   "record_wall_ms": 4100.0,
///   "replay_wall_ms": 85.2,
///   "speedup": 48.122
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ReplaySummary {
    /// Experiment name (figure identifier).
    pub bench: String,
    /// `(job name, wall time)` per replay job, in submission order.
    pub jobs: Vec<(String, Duration)>,
    /// Total wall time spent recording (detailed simulation).
    pub record_wall: Duration,
    /// Total wall time spent replaying from the traces.
    pub replay_wall: Duration,
}

impl ReplaySummary {
    /// How many times faster replaying was than re-simulating.
    pub fn speedup(&self) -> f64 {
        let replay = self.replay_wall.as_secs_f64();
        if replay > 0.0 {
            self.record_wall.as_secs_f64() / replay
        } else {
            1.0
        }
    }

    /// Renders the summary as a pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.bench)));
        out.push_str("  \"jobs\": [\n");
        for (i, (name, wall)) in self.jobs.iter().enumerate() {
            let sep = if i + 1 == self.jobs.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"wall_ms\": {} }}{sep}\n",
                escape(name),
                ms(*wall)
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"record_wall_ms\": {},\n",
            ms(self.record_wall)
        ));
        out.push_str(&format!(
            "  \"replay_wall_ms\": {},\n",
            ms(self.replay_wall)
        ));
        out.push_str(&format!("  \"speedup\": {:.3}\n", self.speedup()));
        out.push_str("}\n");
        out
    }

    /// Writes the summary to `<dir>/<bench>_replay.json`, creating the
    /// directory if needed, and returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating the directory or writing
    /// the file.
    pub fn write_to_dir(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}_replay.json", self.bench));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// Writes the summary to the conventional `results/` directory and
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from [`ReplaySummary::write_to_dir`].
    pub fn write_to_results(&self) -> std::io::Result<PathBuf> {
        self.write_to_dir("results")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepSummary {
        SweepSummary {
            bench: "table2".into(),
            workers: 4,
            jobs: vec![
                ("ab-rand".into(), Duration::from_millis(812)),
                ("du".into(), Duration::from_millis(303)),
            ],
            serial_estimate: Duration::from_millis(1115),
            parallel_wall: Duration::from_millis(820),
        }
    }

    #[test]
    fn json_contains_every_schema_field() {
        let json = sample().to_json();
        for key in [
            "\"bench\"",
            "\"workers\"",
            "\"jobs\"",
            "\"name\"",
            "\"wall_ms\"",
            "\"serial_estimate_ms\"",
            "\"parallel_wall_ms\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(json.contains("\"bench\": \"table2\""));
        assert!(json.contains("\"workers\": 4"));
    }

    #[test]
    fn json_is_structurally_balanced() {
        let json = sample().to_json();
        let braces = json.matches('{').count() as i64 - json.matches('}').count() as i64;
        let brackets = json.matches('[').count() as i64 - json.matches(']').count() as i64;
        assert_eq!(braces, 0);
        assert_eq!(brackets, 0);
        // Exactly one trailing-comma-free job list: no ",\n  ]" patterns.
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn names_are_escaped() {
        let mut s = sample();
        s.jobs[0].0 = "we\"ird\\name".into();
        let json = s.to_json();
        assert!(json.contains("we\\\"ird\\\\name"));
    }

    fn replay_sample() -> ReplaySummary {
        ReplaySummary {
            bench: "fig11_strategies".into(),
            jobs: vec![
                ("du/best-match".into(), Duration::from_millis(12)),
                ("du/eager".into(), Duration::from_millis(9)),
            ],
            record_wall: Duration::from_millis(4100),
            replay_wall: Duration::from_millis(85),
        }
    }

    #[test]
    fn replay_json_contains_every_schema_field_and_speedup() {
        let s = replay_sample();
        let json = s.to_json();
        for key in [
            "\"bench\"",
            "\"jobs\"",
            "\"record_wall_ms\"",
            "\"replay_wall_ms\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!((s.speedup() - 4100.0 / 85.0).abs() < 1e-9);
        let braces = json.matches('{').count() as i64 - json.matches('}').count() as i64;
        assert_eq!(braces, 0);
    }

    #[test]
    fn replay_write_to_dir_creates_the_file() {
        let dir = std::env::temp_dir().join(format!("osprey_replay_{}", std::process::id()));
        let path = replay_sample().write_to_dir(&dir).expect("write");
        assert_eq!(path.file_name().unwrap(), "fig11_strategies_replay.json");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_to_dir_creates_the_file() {
        let dir = std::env::temp_dir().join(format!("osprey_sweep_{}", std::process::id()));
        let path = sample().write_to_dir(&dir).expect("write");
        assert_eq!(path.file_name().unwrap(), "table2_sweep.json");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(body, sample().to_json());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Parallel-vs-serial determinism (the engine's core guarantee).
//!
//! The same job set run on 1 worker and on N workers must produce
//! identical simulated results — same instruction totals, cycles,
//! cache counters, and interval counts — for every shipped benchmark.
//! Only wall-clock fields may differ.

use osprey_exec::{run_jobs, Job};
use osprey_sim::{RunReport, SimConfig};
use osprey_workloads::Benchmark;

/// A tiny sweep over the full suite: one detailed run per benchmark.
fn suite_jobs() -> Vec<Job<RunReport>> {
    Benchmark::ALL
        .iter()
        .map(|&b| {
            let cfg = SimConfig::new(b).with_scale(0.05).with_seed(11);
            Job::sim(b.name(), cfg)
        })
        .collect()
}

/// The simulated (non-wall-clock) content of a report, made comparable.
fn digest(r: &RunReport) -> (String, String, u64, u64, u64, u64, String, usize) {
    (
        r.benchmark.clone(),
        r.mode.clone(),
        r.total_instructions,
        r.user_instructions,
        r.os_instructions,
        r.total_cycles,
        format!("{:?}", r.caches),
        r.intervals.len(),
    )
}

#[test]
fn one_worker_and_many_workers_agree_on_every_benchmark() {
    let serial = run_jobs(suite_jobs(), 1);
    let parallel = run_jobs(suite_jobs(), 4);
    assert_eq!(serial.results.len(), Benchmark::ALL.len());
    assert_eq!(parallel.results.len(), Benchmark::ALL.len());
    for (s, p) in serial.results.iter().zip(parallel.results.iter()) {
        assert_eq!(s.name, p.name, "job order must be submission order");
        assert_eq!(digest(&s.value), digest(&p.value), "{}", s.name);
        // Per-interval content, not just counts: identical service
        // sequence with identical instruction counts and cycles.
        for (a, b) in s.value.intervals.iter().zip(p.value.intervals.iter()) {
            assert_eq!(a.service, b.service, "{}", s.name);
            assert_eq!(a.instructions, b.instructions, "{}", s.name);
            assert_eq!(a.cycles, b.cycles, "{}", s.name);
        }
    }
}

#[test]
fn sweep_summary_reports_every_job() {
    let run = run_jobs(suite_jobs(), 3);
    let summary = run.summary("determinism");
    assert_eq!(summary.jobs.len(), Benchmark::ALL.len());
    let names: Vec<&str> = summary.jobs.iter().map(|(n, _)| n.as_str()).collect();
    let expected: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
    assert_eq!(names, expected, "summary preserves submission order");
}

//! OS-service characterization of a web-server workload — the paper's
//! §3 study, as a library user would run it.
//!
//! Profiles every OS service the Apache/ab-rand workload invokes, then
//! zooms into `sys_read`: its per-invocation cycle variability and the
//! concentration of its (instructions × cycles) behavior points.
//!
//! ```sh
//! cargo run --release --example webserver_profile
//! ```

use osprey::isa::ServiceId;
use osprey::report::{scatter, Table};
use osprey::sim::{FullSystemSim, SimConfig};
use osprey::stats::BubbleHistogram;
use osprey::workloads::Benchmark;

fn main() {
    let cfg = SimConfig::new(Benchmark::AbRand).with_scale(0.25);
    println!("simulating ab-rand in full detail ...\n");
    let report = FullSystemSim::new(cfg).run_to_completion();

    println!(
        "{} OS service intervals, {:.0}% of instructions in the kernel\n",
        report.intervals.len(),
        report.os_fraction() * 100.0
    );

    let mut t = Table::new(["service", "count", "mean cycles", "stddev", "mean IPC"]);
    for s in report.service_summaries() {
        t.row([
            s.service.name().to_string(),
            s.count.to_string(),
            format!("{:.0}", s.cycles.mean()),
            format!("{:.0}", s.cycles.population_std_dev()),
            format!("{:.3}", s.ipc.mean()),
        ]);
    }
    println!("{t}");

    // sys_read close-up (the paper's Fig. 4 and Fig. 5).
    let series = report.service_timeline(ServiceId::SysRead);
    println!("sys_read cycles across {} invocations:", series.len());
    let pts: Vec<(f64, f64)> = series
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as f64, c as f64))
        .collect();
    println!("{}", scatter(&pts, 90, 14));

    let mut bubbles = BubbleHistogram::new(1000.0, 4000.0);
    for r in &report.intervals {
        if r.service == ServiceId::SysRead {
            bubbles.add(r.instructions as f64, r.cycles as f64);
        }
    }
    println!(
        "sys_read behavior points: {} occupied (instr x cycle) cells; the 5",
        bubbles.bubbles().len()
    );
    println!(
        "most common hold {:.0}% of all invocations — few, repeated behavior",
        bubbles.concentration(5) * 100.0
    );
    println!("points, identifiable by instruction count alone.");
}

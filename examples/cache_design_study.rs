//! Cache design study: the use case that motivates the paper.
//!
//! An architect wants to know whether growing the L2 from 512 KiB to
//! 1 MiB is worth it for OS-intensive workloads. Application-only
//! simulation gets the answer wrong; full-system simulation is slow;
//! accelerated full-system simulation gets the right answer fast
//! (the paper's Fig. 2 and Fig. 10).
//!
//! ```sh
//! cargo run --release --example cache_design_study
//! ```

use osprey::core::accel::{AccelConfig, AcceleratedSim};
use osprey::report::Table;
use osprey::sim::{FullSystemSim, OsMode, SimConfig};
use osprey::workloads::Benchmark;

fn cycles(benchmark: Benchmark, l2: u64, mode: OsMode, accelerated: bool) -> (u64, f64) {
    let cfg = SimConfig::new(benchmark)
        .with_scale(0.25)
        .with_l2_bytes(l2)
        .with_os_mode(mode);
    if accelerated {
        let out = AcceleratedSim::new(cfg, AccelConfig::default()).run();
        (out.report.total_cycles, out.report.wall.as_secs_f64())
    } else {
        let report = FullSystemSim::new(cfg).run_to_completion();
        (report.total_cycles, report.wall.as_secs_f64())
    }
}

fn main() {
    println!("Does a 1 MiB L2 beat a 512 KiB L2? Three ways to ask:\n");
    let mut t = Table::new([
        "benchmark",
        "App-Only says",
        "Full-system says",
        "Accelerated says",
        "accel time saved",
    ]);
    for b in [Benchmark::Iperf, Benchmark::AbRand] {
        let (app_small, _) = cycles(b, 512 * 1024, OsMode::AppOnly, false);
        let (app_big, _) = cycles(b, 1024 * 1024, OsMode::AppOnly, false);
        let (full_small, t_small) = cycles(b, 512 * 1024, OsMode::Full, false);
        let (full_big, t_big) = cycles(b, 1024 * 1024, OsMode::Full, false);
        let (acc_small, a_small) = cycles(b, 512 * 1024, OsMode::Full, true);
        let (acc_big, a_big) = cycles(b, 1024 * 1024, OsMode::Full, true);
        t.row([
            b.name().to_string(),
            format!("{:.2}x", app_small as f64 / app_big as f64),
            format!("{:.2}x", full_small as f64 / full_big as f64),
            format!("{:.2}x", acc_small as f64 / acc_big as f64),
            format!(
                "{:.0}%",
                (1.0 - (a_small + a_big) / (t_small + t_big)) * 100.0
            ),
        ]);
    }
    println!("{t}");
    println!("The accelerated simulation reproduces the full-system conclusion —");
    println!("the larger cache helps substantially — which application-only");
    println!("simulation misses, at a fraction of the simulation time.");
}

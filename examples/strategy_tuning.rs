//! Choosing a re-learning strategy — the paper's §4.4/§6.2 trade-off, on
//! the workload built to stress it (ab-seq).
//!
//! ab-seq's request pattern changes phase: new file sizes (new `sys_read`
//! behavior points) appear only after the initial learning window closed.
//! Best-Match never re-learns and mispredicts them forever; Eager
//! re-learns on every stray outlier and wastes coverage; Delayed and
//! Statistical balance the two.
//!
//! ```sh
//! cargo run --release --example strategy_tuning
//! ```

use osprey::core::accel::{AccelConfig, AcceleratedSim};
use osprey::core::RelearnStrategy;
use osprey::report::Table;
use osprey::sim::{FullSystemSim, SimConfig};
use osprey::workloads::Benchmark;

fn main() {
    let cfg = SimConfig::new(Benchmark::AbSeq).with_scale(0.3);
    println!("reference: detailed simulation of ab-seq ...");
    let detailed = FullSystemSim::new(cfg.clone()).run_to_completion();

    let mut t = Table::new(["strategy", "coverage", "|time error|", "re-learn events"]);
    for strategy in RelearnStrategy::ALL {
        let out = AcceleratedSim::new(cfg.clone(), AccelConfig::with_strategy(strategy)).run();
        let err = (out.report.total_cycles as f64 - detailed.total_cycles as f64).abs()
            / detailed.total_cycles as f64;
        t.row([
            strategy.name().to_string(),
            format!("{:.1}%", out.coverage() * 100.0),
            format!("{:.1}%", err * 100.0),
            out.stats.relearn_events().to_string(),
        ]);
    }
    println!("\n{t}");
    println!("Best-Match: highest coverage, blind to the new behavior points.");
    println!("Eager: re-learns at every outlier — accurate but lowest coverage.");
    println!("Statistical/Delayed: near-Eager accuracy at near-Best-Match coverage,");
    println!("which is why the paper adopts the Statistical strategy.");
}

//! Quickstart: accelerate a full-system simulation and compare it with
//! the detailed reference run.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use osprey::core::accel::{AccelConfig, AcceleratedSim};
use osprey::sim::{FullSystemSim, SimConfig};
use osprey::workloads::Benchmark;

fn main() {
    // A small iperf run on the paper's machine (ooo core, 1 MiB L2).
    let cfg = SimConfig::new(Benchmark::Iperf)
        .with_scale(0.25)
        .with_seed(7);

    // Reference: everything fully simulated.
    println!("running detailed full-system simulation ...");
    let detailed = FullSystemSim::new(cfg.clone()).run_to_completion();

    // Accelerated: learn each OS service's behavior points online, then
    // replace detailed simulation with emulation + prediction.
    println!("running accelerated simulation ...");
    let accel = AcceleratedSim::new(cfg, AccelConfig::default()).run();

    let err = (accel.report.total_cycles as f64 - detailed.total_cycles as f64).abs()
        / detailed.total_cycles as f64;

    println!();
    println!(
        "detailed:    {:>12} cycles in {:?}",
        detailed.total_cycles, detailed.wall
    );
    println!(
        "accelerated: {:>12} cycles in {:?}",
        accel.report.total_cycles, accel.report.wall
    );
    println!("prediction coverage: {:.1}%", accel.coverage() * 100.0);
    println!("execution-time error: {:.2}%", err * 100.0);
    println!(
        "wall-clock speedup: {:.1}x",
        detailed.wall.as_secs_f64() / accel.report.wall.as_secs_f64()
    );
    println!();
    println!("clusters learned per OS service:");
    for (service, clusters) in &accel.clusters_per_service {
        println!("  {:18} {clusters}", service.name());
    }
}
